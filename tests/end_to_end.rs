//! Workspace-level end-to-end tests: the full pipeline — Wisc source →
//! compiler → WEF image → EEL analysis/editing → edited image → emulator
//! — exercised across crates through the `eel` facade.

use eel::cc::{compile_str, Options, Personality};
use eel::core::{Executable, Snippet};
use eel::emu::{run_image, Machine};

#[test]
fn facade_reexports_compose() {
    // Touch every crate through the facade in one pipeline.
    let image = compile_str("fn main() { return 6 * 7; }", &Options::default()).unwrap();
    assert_eq!(run_image(&image).unwrap().exit_code, 42);

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let edited = exec.write_edited().unwrap();
    assert_eq!(run_image(&edited).unwrap().exit_code, 42);

    // spawn agrees with the handwritten decoder on this binary.
    let machine = eel::spawn::sparc_machine().unwrap();
    for (_, word) in edited.text_words() {
        let hw = eel::isa::decode(word).category();
        let sp = match machine.decode(word) {
            None => eel::isa::Category::Invalid,
            Some(d) => eel::spawn::sparc_shim::category(&machine, &d),
        };
        assert_eq!(hw, sp);
    }
}

#[test]
fn double_editing_round_trip() {
    // Edit the program, then open the EDITED program and edit it again —
    // EEL output is EEL input (the paper's tools chained in practice).
    let src = r#"
        fn work(x) { return x * 3 + 1; }
        fn main() {
            var i; var t = 0;
            for (i = 0; i < 12; i = i + 1) { t = t + work(i); }
            return t & 255;
        }"#;
    let image = compile_str(src, &Options::default()).unwrap();
    let baseline = run_image(&image).unwrap();

    // First edit: entry counters.
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let c1 = exec.reserve_data(4);
    let work_id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "work")
        .unwrap();
    let mut cfg = exec.build_cfg(work_id).unwrap();
    let entry = cfg.entry_block();
    cfg.add_code_at_block_start(entry, Snippet::counter_increment(c1))
        .unwrap();
    exec.install_edits(cfg).unwrap();
    let once = exec.write_edited().unwrap();

    // Second edit: pass the edited image through EEL again.
    let mut exec2 = Executable::from_image(once).unwrap();
    exec2.read_contents().unwrap();
    let c2 = exec2.reserve_data(4);
    let main_id = exec2
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec2.routine(id).name() == "main")
        .unwrap();
    let mut cfg2 = exec2.build_cfg(main_id).unwrap();
    let entry2 = cfg2.entry_block();
    cfg2.add_code_at_block_start(entry2, Snippet::counter_increment(c2))
        .unwrap();
    exec2.install_edits(cfg2).unwrap();
    let twice = exec2.write_edited().unwrap();

    let mut machine = Machine::load(&twice).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, baseline.exit_code);
    assert_eq!(machine.read_word(c2), 1, "main entered once");
    // The first-round counter is still live in the twice-edited binary
    // (it sits in the data segment, which keeps its addresses).
    assert_eq!(machine.read_word(c1), 12, "work entered 12 times");
}

#[test]
fn assembler_authored_program_through_the_whole_stack() {
    // Hand-written assembly with a dispatch table: assemble, analyze,
    // instrument every table edge, and verify counts.
    let image = eel::asm::assemble(
        r#"
        .global main
    main:
        sub %sp, 32, %sp
        st %o7, [%sp + 4]
        clr %l5              ! selector accumulates results
        mov 0, %l6           ! loop counter
    loop:
        cmp %l6, 9
        bgu done
        nop
        ! dispatch on %l6 % 3
        wr %g0, %g0, %y
        udiv %l6, 3, %l0
        smul %l0, 3, %l0
        sub %l6, %l0, %l0    ! %l0 = l6 % 3
        cmp %l0, 3
        bgeu default
        nop
        sll %l0, 2, %l0
        set table, %l1
        ld [%l1 + %l0], %l1
        jmp %l1
        nop
    table:
        .word case0, case1, case2
    case0:
        ba next
        add %l5, 1, %l5
    case1:
        ba next
        add %l5, 10, %l5
    case2:
        ba next
        add %l5, 100, %l5
    default:
        add %l5, 1000, %l5
    next:
        ba loop
        add %l6, 1, %l6
    done:
        mov %l5, %o0
        ld [%sp + 4], %o7
        mov 1, %g1
        ta 0
        add %sp, 32, %sp
    "#,
    )
    .unwrap();
    let baseline = run_image(&image).unwrap();
    assert_eq!(baseline.exit_code, 4 + 30 + 300, "4 zeros, 3 ones, 3 twos");

    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let counters = exec.reserve_data(4 * 8);
    let id = exec.all_routine_ids()[0];
    let mut cfg = exec.build_cfg(id).unwrap();
    let table_edges: Vec<_> = (0..cfg.edge_count())
        .map(eel::core::EdgeId::from_index)
        .filter(|&e| cfg.edge(e).kind == eel::core::EdgeKind::Table && cfg.edge(e).editable)
        .collect();
    assert_eq!(table_edges.len(), 3, "three distinct case targets");
    for (i, e) in table_edges.iter().enumerate() {
        cfg.add_code_along(*e, Snippet::counter_increment(counters + 4 * i as u32))
            .unwrap();
    }
    exec.install_edits(cfg).unwrap();
    let edited = exec.write_edited().unwrap();

    let mut machine = Machine::load(&edited).unwrap();
    let outcome = machine.run().unwrap();
    assert_eq!(outcome.exit_code, baseline.exit_code);
    let mut counts: Vec<u32> = (0..3)
        .map(|i| machine.read_word(counters + 4 * i))
        .collect();
    counts.sort_unstable();
    assert_eq!(counts, vec![3, 3, 4], "per-case dispatch counts");
}

#[test]
fn suite_behaves_identically_after_editing_under_both_personalities() {
    for w in eel::progen::suite().into_iter().take(3) {
        for personality in [Personality::Gcc, Personality::SunPro] {
            let image = eel::progen::compile(&w, personality).unwrap();
            let before = run_image(&image).unwrap();
            let mut exec = Executable::from_image(image).unwrap();
            exec.read_contents().unwrap();
            let edited = exec.write_edited().unwrap();
            let after = run_image(&edited).unwrap();
            assert_eq!(
                before.exit_code, after.exit_code,
                "{} {personality:?}",
                w.name
            );
            assert_eq!(before.output, after.output, "{} {personality:?}", w.name);
        }
    }
}

#[test]
fn edited_programs_keep_symbol_tables() {
    // §3.1: EEL maintains symbol-table information for the edited program
    // so standard tools keep working.
    let src = "fn helper(x) { return x + 1; } fn main() { return helper(41); }";
    let image = compile_str(src, &Options::default()).unwrap();
    let mut exec = Executable::from_image(image).unwrap();
    exec.read_contents().unwrap();
    let edited = exec.write_edited().unwrap();
    for name in ["main", "helper", "__start", "__print_int"] {
        let sym = edited
            .find_symbol(name)
            .unwrap_or_else(|| panic!("{name} survives editing"));
        assert!(edited.in_text(sym.value), "{name} points into text");
        assert_eq!(
            Some(sym.value),
            exec.edited_addr(sym.value).or(Some(sym.value))
        );
    }
}
