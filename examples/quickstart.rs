//! Quickstart: compile a program, open it with EEL, inspect its routines
//! and CFGs, add one edit, write the edited executable, and run both.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eel::core::{Executable, Snippet};
use eel::emu::{run_image, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program to edit (any WEF image works; we compile one here).
    let source = r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { print(fib(15)); return fib(10); }
    "#;
    let image = eel::cc::compile_str(source, &eel::cc::Options::default())?;
    let baseline = run_image(&image)?;
    println!(
        "original: exit={} cycles={}",
        baseline.exit_code, baseline.cycles
    );

    // 2. Open and analyze (§3.1's symbol-table refinement).
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    println!("\nroutines:");
    for id in exec.all_routine_ids() {
        let r = exec.routine(id).clone();
        let cfg = exec.build_cfg(id)?;
        let stats = cfg.stats();
        println!(
            "  {:<14} {:#07x}..{:#07x}  blocks={:3} (delay={:2} surrogate={:2})  edges={:3}",
            r.name(),
            r.start(),
            r.end(),
            stats.total_blocks(),
            stats.delay_slot_blocks,
            stats.call_surrogate_blocks,
            stats.edges,
        );
    }

    // 3. Edit: count how many times fib is entered.
    let counter = exec.reserve_data(4);
    let fib = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == "fib")
        .expect("fib exists");
    let mut cfg = exec.build_cfg(fib)?;
    let entry = cfg.entry_block();
    cfg.add_code_at_block_start(entry, Snippet::counter_increment(counter))?;
    exec.install_edits(cfg)?;

    // 4. Write and run the edited executable.
    let edited = exec.write_edited()?;
    let mut machine = Machine::load(&edited)?;
    let outcome = machine.run()?;
    println!(
        "\nedited:   exit={} cycles={} (+{:.1}%)",
        outcome.exit_code,
        outcome.cycles,
        100.0 * (outcome.cycles as f64 / baseline.cycles as f64 - 1.0)
    );
    println!("fib was entered {} times", machine.read_word(counter));
    assert_eq!(outcome.exit_code, baseline.exit_code);
    // fib(15) makes 2·F(16)−1 = 1973 calls; fib(10) makes 2·F(11)−1 = 177.
    assert_eq!(machine.read_word(counter), 1973 + 177);
    Ok(())
}
