//! Figure 3: CFG normalization of delay slots. An `add` in the delay
//! slot of an *annulled* conditional branch executes only when the branch
//! is taken, so EEL places it in its own block along the taken edge only;
//! for a non-annulled branch it is duplicated along both edges.
//!
//! ```text
//! cargo run --example cfg_normalize
//! ```

use eel::core::{BlockKind, Executable};

fn show(title: &str, asm: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {title} ==");
    for line in asm.lines().filter(|l| !l.trim().is_empty()) {
        println!("    | {}", line.trim());
    }
    let image = eel::asm::assemble(asm)?;
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let id = exec.all_routine_ids()[0];
    let cfg = exec.build_cfg(id)?;
    println!("  normalized CFG:");
    for (bid, block) in cfg.blocks() {
        let kind = format!("{:?}", block.kind);
        let insns: Vec<String> = block.insns.iter().map(|ia| ia.insn.to_string()).collect();
        let succs: Vec<String> = block
            .succ()
            .iter()
            .map(|&e| format!("→b{}", cfg.edge(e).to.index()))
            .collect();
        println!(
            "    b{:<2} {:<13} [{}]  {}",
            bid.index(),
            kind,
            insns.join("; "),
            succs.join(" ")
        );
    }
    // Count where the delay instruction landed.
    let delay_blocks = cfg
        .blocks()
        .filter(|(_, b)| b.kind == BlockKind::DelaySlot)
        .count();
    println!("  delay-slot blocks: {delay_blocks}\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The figure's case: `bne,a L1` with `add %l1, %l2, %l1` in the slot.
    // Annulled ⇒ the add appears along the TAKEN edge only (1 copy).
    show(
        "annulled branch (Figure 3)",
        r#"
        main:
            cmp %l0, 0
            bne,a L1
            add %l1, %l2, %l1
            mov 9, %o0
        L1:
            mov 1, %g1
            ta 0
            nop
        "#,
    )?;

    // Non-annulled ⇒ the add executes on BOTH paths: two copies, one per
    // edge.
    show(
        "non-annulled branch (duplicated along both edges)",
        r#"
        main:
            cmp %l0, 0
            bne L1
            add %l1, %l2, %l1
            mov 9, %o0
        L1:
            mov 1, %g1
            ta 0
            nop
        "#,
    )?;

    // `ba,a` never executes its slot: no delay block at all.
    show(
        "ba,a (slot never executes)",
        r#"
        main:
            ba,a L1
            add %l1, %l2, %l1
        L1:
            mov 1, %g1
            ta 0
            nop
        "#,
    )?;
    Ok(())
}
