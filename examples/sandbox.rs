//! Fine-grain access control (Blizzard-S, paper §1/§5): the editing-based
//! protection mechanism behind software distributed shared memory. Every
//! store is preceded by a state-table test; first touches "fault" into a
//! validation handler.
//!
//! ```text
//! cargo run --example sandbox
//! ```

use eel::tools::blizzard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = eel::progen::sc_like(3);
    let image = eel::progen::compile(&workload, eel::cc::Personality::Gcc)?;
    let baseline = eel::emu::run_image(&image)?;

    let controlled = blizzard::instrument(image)?;
    println!("instrumented {} store sites", controlled.sites);
    let stats = controlled.run()?;
    assert_eq!(stats.exit_code, baseline.exit_code, "behavior preserved");
    assert_eq!(stats.checks as u64, baseline.stores, "every store checked");

    println!("stores checked:  {}", stats.checks);
    println!(
        "access faults:   {} ({:.2}% of stores — first touches per line)",
        stats.faults,
        100.0 * stats.faults as f64 / stats.checks as f64
    );
    println!(
        "slowdown:        {:.2}x",
        stats.cycles as f64 / baseline.cycles as f64
    );
    Ok(())
}
