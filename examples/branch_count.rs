//! The paper's Figures 1 and 2: the branch-counting tool, written with
//! the same structure as the published EEL code — iterate the routines,
//! drain `hidden_routines()`, add a counter snippet along every out-edge
//! of multi-way blocks, patch each snippet's `sethi`/`%lo` fields with
//! the counter address (the `SET_SETHI_HI`/`SET_SETHI_LOW` macros), and
//! write the edited executable.
//!
//! ```text
//! cargo run --example branch_count
//! ```

use eel::core::{BlockKind, Cfg, Executable, RoutineId, Snippet};
use eel::emu::Machine;

/// Figure 2's `incr_count`: the Figure 5 snippet body with the counter
/// address patched into instructions 1 (sethi), 2 (ld), and 4 (st).
fn incr_count(counter_addr: u32) -> Snippet {
    let mut snippet = Snippet::from_asm(
        r#"
        sethi 0x1, %g6            ! upper bits of &counter
        ld [%lo(0x1) + %g6], %g7  ! load counter
        add %g7, 1, %g7           ! increment
        st %g7, [%lo(0x1) + %g6]  ! store counter
    "#,
    )
    .expect("snippet assembles")
    .with_scavenged(&[eel::isa::Reg(6), eel::isa::Reg(7)]);
    snippet.set_sethi_hi(0, counter_addr);
    snippet.set_sethi_low(1, counter_addr);
    snippet.set_sethi_low(3, counter_addr);
    snippet
}

/// Figure 1's `instrument(routine*)`.
fn instrument(
    exec: &mut Executable,
    id: RoutineId,
    counters_base: u32,
    num: &mut u32,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg: Cfg = exec.build_cfg(id)?;
    let mut edits = Vec::new();
    for (_, b) in cfg.blocks() {
        if b.kind == BlockKind::Normal && b.succ().len() > 1 {
            for &e in b.succ() {
                if cfg.edge(e).editable {
                    edits.push(e);
                }
            }
        }
    }
    for e in edits {
        cfg.add_code_along(e, incr_count(counters_base + 4 * *num))?;
        *num += 1;
    }
    exec.install_edits(cfg)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = eel::progen::spim_like(300);
    let image = eel::progen::compile(&workload, eel::cc::Personality::Gcc)?;
    let baseline = eel::emu::run_image(&image)?;

    // Figure 1's main(): routines, then the hidden-routine drain loop.
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let counters_base = exec.reserve_data(4 * 4096);
    let mut num = 0u32;
    for id in exec.routine_ids() {
        instrument(&mut exec, id, counters_base, &mut num)?;
    }
    while let Some(id) = exec.pop_hidden() {
        instrument(&mut exec, id, counters_base, &mut num)?;
    }
    let edited = exec.write_edited()?;

    let mut machine = Machine::load(&edited)?;
    let outcome = machine.run()?;
    assert_eq!(outcome.exit_code, baseline.exit_code, "behavior preserved");

    let counts: Vec<u32> = (0..num)
        .map(|i| machine.read_word(counters_base + 4 * i))
        .collect();
    let taken: u64 = counts.iter().map(|&c| c as u64).sum();
    let hot = counts.iter().max().copied().unwrap_or(0);
    println!("instrumented {num} branch edges");
    println!("dynamic multi-way transfers counted: {taken}");
    println!("hottest edge executed {hot} times");
    println!(
        "profiling overhead: {:.2}x",
        outcome.cycles as f64 / baseline.cycles as f64
    );
    Ok(())
}
