//! Executable editing as an *optimizer* (paper §1: link-time/executable
//! optimization can see the whole program where per-file compilers
//! cannot). This example strips routines that the whole-program call
//! graph proves unreachable.
//!
//! ```text
//! cargo run --example optimize
//! ```

use eel::tools::shrink::strip_dead_routines;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program dragging in an unused "library".
    let source = r#"
        fn lib_sin(x) { return x - x * x * x / 6; }
        fn lib_cos(x) { return 1 - x * x / 2; }
        fn lib_abs(x) { if (x < 0) { return 0 - x; } return x; }
        fn used_sq(x) { return x * x; }
        fn main() {
            var t = used_sq(6) + used_sq(3);
            print(t);
            return t;
        }
    "#;
    let image = eel::cc::compile_str(source, &eel::cc::Options::default())?;
    let before = eel::emu::run_image(&image)?;

    let shrunk = strip_dead_routines(image)?;
    println!("removed routines: {:?}", shrunk.removed);
    println!(
        "text size: {} -> {} bytes ({:.0}% smaller)",
        shrunk.text_before,
        shrunk.text_after,
        100.0 * (1.0 - shrunk.text_after as f64 / shrunk.text_before as f64)
    );
    let after = eel::emu::run_image(&shrunk.image)?;
    assert_eq!(before.exit_code, after.exit_code);
    assert_eq!(before.output, after.output);
    println!(
        "behavior identical: exit={}, output={:?}",
        after.exit_code,
        after.output_str()
    );
    Ok(())
}
