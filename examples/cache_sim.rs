//! Active Memory (paper §1, §5): cache simulation by editing — insert an
//! inline cache-tag test before every load and store, run the edited
//! program, and compare against a trace-driven reference simulation.
//!
//! ```text
//! cargo run --example cache_sim
//! ```

use eel::emu::Machine;
use eel::tools::active_memory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = eel::progen::compress_like(500);
    let image = eel::progen::compile(&workload, eel::cc::Personality::Gcc)?;

    // Ground truth: reference cache over the emulator's memory trace.
    let mut machine = Machine::load(&image)?.with_mem_trace();
    let baseline = machine.run()?;
    let mut reference = active_memory::ReferenceCache::new();
    for r in machine.take_mem_trace() {
        reference.access(r.addr);
    }

    // The tool: inline tests inserted by editing.
    let sim = active_memory::instrument(image)?;
    println!(
        "instrumented {} reference sites ({} needed the condition-code-saving slow path)",
        sim.sites, sim.cc_saved_sites
    );
    let stats = sim.run()?;
    assert_eq!(stats.exit_code, baseline.exit_code, "behavior preserved");
    assert_eq!(
        stats.hits, reference.hits,
        "hits match the reference simulation"
    );
    assert_eq!(stats.misses, reference.misses, "misses match");

    let total = stats.hits + stats.misses;
    println!("references simulated: {total}");
    println!(
        "hits: {} ({:.1}%)  misses: {}",
        stats.hits,
        100.0 * stats.hits as f64 / total as f64,
        stats.misses
    );
    println!(
        "slowdown: {:.2}x (the paper reports 2-7x for Active Memory)",
        stats.cycles as f64 / baseline.cycles as f64
    );
    Ok(())
}
