//! A mini objdump built entirely on the spawn-derived machine layer
//! (paper §4): disassembly-by-description. No handwritten decoder is
//! involved — the instruction names, classes, and field values all come
//! from the 100-line `sparc.spawn` description.
//!
//! ```text
//! cargo run --example spawn_objdump
//! ```

use eel::spawn::{sparc_machine, sparc_shim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        fn classify(x) {
            switch (x % 3) {
                case 0: { return 7; }
                case 1: { return 8; }
                default: { return 9; }
            }
        }
        fn main() { return classify(5); }
    "#;
    let image = eel::cc::compile_str(source, &eel::cc::Options::default())?;
    let machine = sparc_machine()?;

    println!(
        "{:>10}  {:>10}  {:<8} {:<14} fields",
        "addr", "word", "name", "class"
    );
    for (addr, word) in image.text_words().take(40) {
        match machine.decode(word) {
            Some(d) => {
                let cat = sparc_shim::category(&machine, &d);
                let fields = format!(
                    "rd={} rs1={} i={} simm13={}",
                    machine.field("rd", word),
                    machine.field("rs1", word),
                    machine.field("i", word),
                    machine.field("simm13", word),
                );
                println!(
                    "{addr:#10x}  {word:#010x}  {:<8} {:<14} {fields}",
                    d.spec.name,
                    format!("{cat:?}"),
                );
            }
            None => println!(
                "{addr:#10x}  {word:#010x}  {:<8} {:<14}",
                ".word", "Invalid"
            ),
        }
    }

    // And the paper's punchline: spawn-generated source vs description.
    let generated = eel::spawn::generate_rust(&machine);
    println!(
        "\ndescription: {} lines → generated decoder: {} lines (handwritten was {}+)",
        eel::spawn::description_lines(eel::spawn::SPARC),
        generated.lines().count(),
        2268
    );
    Ok(())
}
