//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the small API subset it actually uses: `StdRng`
//! seeded from a `u64`, and `Rng::{gen_range, gen_bool, gen}` over integer
//! ranges. The generator is xoshiro256** seeded via SplitMix64 — fast,
//! deterministic, and plenty for program generation and property tests.
//! It makes no attempt at stream compatibility with upstream `rand`.

pub mod rngs {
    /// Deterministic PRNG standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding trait mirroring `rand::SeedableRng` for the methods we use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that can be sampled uniformly from a range, mirroring the part
/// of `rand::distributions::uniform::SampleRange` that `gen_range` needs.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = rng.next_u64() % (span as u64);
                (self.start as $u).wrapping_add(v as $u) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.next_u64() % (span + 1) };
                (start as $u).wrapping_add(v as $u) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// Sampling trait mirroring `rand::Rng` for the methods we use.
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen_u64(&mut self) -> u64;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 bits of the draw give a uniform f64 in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }

    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i32 = a.gen_range(-50..50);
            assert_eq!(x, b.gen_range(-50..50));
            assert!((-50..50).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match rng.gen_range(0u8..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
