//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Throughput`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — backed by a simple harness: auto-calibrated batch
//! size, a warmup pass, then a configurable number of timed samples with
//! the median reported. No plots, no statistics beyond median/min/max.
//!
//! Honors a few env vars: `CRITERION_SAMPLES` (default 20) and
//! `CRITERION_TARGET_MS` (per-sample target, default 50).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    samples: u32,
    target: Duration,
}

impl Settings {
    fn from_env() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        let target_ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        Settings {
            samples,
            target: Duration::from_millis(target_ms),
        }
    }
}

pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    fn new() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            settings: self.settings,
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings;
        run_benchmark("", name, None, settings, f);
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    settings: Settings,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, name, self.throughput, self.settings, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F>(
    group: &str,
    name: &str,
    throughput: Option<Throughput>,
    settings: Settings,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the batch until one batch takes ~target time.
    let mut iters = 1u64;
    loop {
        let t = run_once(&mut f, iters);
        if t >= settings.target || iters >= 1 << 30 {
            break;
        }
        let grow = if t.is_zero() {
            8
        } else {
            (settings.target.as_nanos() / t.as_nanos().max(1)).clamp(2, 8) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut samples: Vec<f64> = (0..settings.samples)
        .map(|_| run_once(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];

    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut line = format!(
        "bench: {label:<40} median {} (min {}, max {})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let rate = n as f64 / (median / 1e9);
            line.push_str(&format!("  {:.2} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let rate = n as f64 / (median / 1e9);
            line.push_str(&format!("  {:.2} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::__new_criterion();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Benches are
/// built with `harness = false`, so this is the real entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes --bench (and possibly filters); ignore them.
            $($group();)+
        }
    };
}

#[doc(hidden)]
pub fn __new_criterion() -> Criterion {
    Criterion::new()
}
