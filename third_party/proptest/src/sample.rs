//! `prop::sample` subset: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of values.
pub struct Select<T: Clone>(Vec<T>);

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty list");
    Select(options)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// An index into a collection whose length is unknown at generation time;
/// resolve with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    pub(crate) fn from_raw(raw: usize) -> Self {
        Index(raw)
    }

    /// Map onto `[0, len)`; `len` must be nonzero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}
