//! `prop::collection` subset: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
