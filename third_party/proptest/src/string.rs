//! Generation of strings matching a small regex subset: sequences of
//! literal characters or `[...]` classes (with `a-z` ranges), each
//! optionally followed by `?`, `*`, `+`, `{n}`, or `{m,n}`. Unbounded
//! quantifiers are capped at 8 repetitions. Unsupported constructs panic
//! so misuse is loud rather than silently wrong.

use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i
                    + 1;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            c if "(){}|^$*+?.\\".contains(c) => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '{' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                        + i
                        + 1;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} bound"),
                            hi.trim().parse().expect("bad {m,n} bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} bound");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = (piece.max - piece.min) as u64;
        let reps = piece.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        for _ in 0..reps {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}
