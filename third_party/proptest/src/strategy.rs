//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A generator of values. Upstream proptest couples generation with a
/// shrink tree; this stand-in only generates.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe generation, for `prop_oneof!` unions and `BoxedStrategy`.
pub trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().dyn_generate(rng)
    }
}

/// Helper used by `prop_oneof!` to erase strategy types.
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies, built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! range_strategy {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy on empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (start as $u).wrapping_add(v as $u) as $t
            }
        }
    )*};
}

range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// Regex-lite string strategy: `&str` patterns made of character classes
/// and bounded quantifiers generate matching strings (see `string.rs`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
