//! `prop::array` subset: `uniform32`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct UniformArray<S, const N: usize>(S);

/// 32 independent draws from the same element strategy.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    UniformArray(element)
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        core::array::from_fn(|_| self.0.generate(rng))
    }
}
