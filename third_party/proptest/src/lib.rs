//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! crate vendors the strategy/runner API subset the workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map`, strategies
//! for integer ranges / tuples / regex-lite string patterns, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::{select, Index}`, `prop_oneof!`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`), and failing cases are
//! reported with their values via `Debug`-free messages but **not shrunk**.
//! `proptest-regressions` files are ignored.

pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy, Union};
pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// Runner configuration; mirrors the `proptest::test_runner::Config`
/// fields this workspace sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Abort the test once this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
    /// Shrink-iteration cap; accepted for compatibility (this stand-in
    /// does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
            max_shrink_iters: 1024,
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::sample::select`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy produced by `any::<T>()` for primitives.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Any<T> {
    fn new() -> Self {
        Any(core::marker::PhantomData)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bias ~1/8 of draws toward boundary values; the rest uniform.
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MAX - 1,
                        _ => <$t>::MAX / 2,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> { Any::new() }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => 0,
                        1 => 1,
                        2 => -1,
                        3 => <$t>::MIN,
                        _ => <$t>::MAX,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> { Any::new() }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any::new()
    }
}

impl Arbitrary for sample::Index {
    type Strategy = Any<sample::Index>;
    fn arbitrary() -> Any<sample::Index> {
        Any::new()
    }
}

impl Strategy for Any<sample::Index> {
    type Value = sample::Index;
    fn generate(&self, rng: &mut TestRng) -> sample::Index {
        sample::Index::from_raw(rng.next_u64() as usize)
    }
}

/// Drives one property test: repeatedly generates cases until `cases`
/// successes, panicking on the first failure. Called by `proptest!`.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempts = 0u64;
    while passed < config.cases {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many global rejects \
                         ({rejects} > {})",
                        config.max_global_rejects
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at attempt {attempts}: {msg}");
            }
        }
    }
}

/// The `proptest!` block macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one!(($cfg), $(#[$meta])* fn $name($($pat in $strat),+) $body);)*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one!(
            ($crate::ProptestConfig::default()),
            $(#[$meta])* fn $name($($pat in $strat),+) $body);)*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (($cfg:expr), $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            #[allow(unused_parens)]
            let strat = ($($strat),*,);
            $crate::run_proptest(&config, stringify!($name), move |rng| {
                let ($($pat),*,) = $crate::Strategy::generate(&strat, rng);
                let run = || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                run()
            });
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($a), stringify!($b), a, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform (or weighted, with `w => strategy` entries) choice between
/// strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}
