//! Deterministic RNG and case-level error plumbing for the runner.

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// xoshiro256** seeded per-test from the test name (FNV-1a), optionally
/// perturbed by the `PROPTEST_SEED` environment variable so CI can explore
/// different schedules.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = seed.trim().parse::<u64>() {
                h ^= n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
