//! Property tests for the assembler: disassembly → assembly round trips,
//! and structural robustness of the parser.

use eel_asm::{assemble, assemble_fragment};
use eel_isa::{AluOp, Cond, Insn, MemWidth, Op, Reg, Src2};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_src2() -> impl Strategy<Value = Src2> {
    prop_oneof![
        arb_reg().prop_map(Src2::Reg),
        (-4096i32..=4095).prop_map(Src2::Imm),
    ]
}

/// Instructions whose disassembly is accepted back by the assembler
/// verbatim (all except PC-relative ones, whose `.+N` form needs a
/// position, handled separately below).
fn arb_positionless_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, imm22)| Op::Sethi { rd, imm22 }),
        (
            prop::sample::select(vec![
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Andn,
                AluOp::Orn,
                AluOp::Xnor,
                AluOp::Umul,
                AluOp::Smul,
                AluOp::Udiv,
                AluOp::Sdiv,
                AluOp::Sll,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Save,
                AluOp::Restore,
            ]),
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|(op, cc, rd, rs1, src2)| {
                let cc = cc && op.supports_cc();
                Op::Alu {
                    op,
                    cc,
                    rd,
                    rs1,
                    src2,
                }
            }),
        (arb_reg(), arb_reg(), arb_src2()).prop_map(|(rd, rs1, src2)| Op::Jmpl { rd, rs1, src2 }),
        (
            prop::sample::select(vec![
                (MemWidth::Byte, false),
                (MemWidth::Byte, true),
                (MemWidth::Half, false),
                (MemWidth::Half, true),
                (MemWidth::Word, false),
                (MemWidth::Double, false),
            ]),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|((width, signed), rd, rs1, src2)| {
                let rd = if width == MemWidth::Double {
                    Reg(rd.0 & !1)
                } else {
                    rd
                };
                Op::Load {
                    width,
                    signed,
                    rd,
                    rs1,
                    src2,
                    fp: false,
                }
            }),
        (
            prop::sample::select(vec![
                MemWidth::Byte,
                MemWidth::Half,
                MemWidth::Word,
                MemWidth::Double
            ]),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|(width, rd, rs1, src2)| {
                let rd = if width == MemWidth::Double {
                    Reg(rd.0 & !1)
                } else {
                    rd
                };
                Op::Store {
                    width,
                    rd,
                    rs1,
                    src2,
                    fp: false,
                }
            }),
        (0u32..16, arb_reg(), arb_src2()).prop_map(|(c, rs1, src2)| Op::Trap {
            cond: Cond::from_bits(c),
            rs1,
            src2
        }),
    ]
    .prop_map(|op| Insn::from_word(eel_isa::encode(&op)))
}

proptest! {
    /// Disassemble → reassemble = identity for position-independent
    /// instructions.
    #[test]
    fn disasm_reasm_round_trip(insns in prop::collection::vec(arb_positionless_insn(), 1..24)) {
        let text: String = insns.iter().map(|i| format!("    {i}\n")).collect();
        let src = format!("main:\n{text}");
        let image = assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let words: Vec<u32> = image.text_words().map(|(_, w)| w).collect();
        let expect: Vec<u32> = insns.iter().map(|i| i.word).collect();
        prop_assert_eq!(words, expect, "source:\n{}", src);
    }

    /// PC-relative instructions round trip through their `.+N` rendering
    /// when reassembled at the same position.
    #[test]
    fn branch_disasm_round_trip(
        cond in (0u32..16).prop_map(Cond::from_bits),
        annul in any::<bool>(),
        disp in -4096i32..4096,
    ) {
        let b = Insn::from_word(eel_isa::encode(&Op::Branch { cond, annul, disp22: disp, fp: false }));
        let src = format!("main:\n    {b}\n    nop\n");
        let image = assemble(&src).unwrap();
        let word = image.word_at(image.text_addr).unwrap();
        prop_assert_eq!(word, b.word, "{}", b);
    }

    /// The parser never panics on arbitrary line soup.
    #[test]
    fn parser_never_panics(lines in prop::collection::vec("[ -~]{0,40}", 0..20)) {
        let src = lines.join("\n");
        let _ = assemble(&src); // may Err, must not panic
        let _ = assemble_fragment(&src, 0);
    }
}
