//! Assembler expressions: integers, symbols, `.`, `%hi()`/`%lo()`,
//! additive arithmetic.

use std::collections::HashMap;
use std::fmt;

/// A symbolic expression appearing in an operand or data directive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// An integer literal.
    Num(i64),
    /// A symbol reference, resolved against the label table.
    Sym(String),
    /// The current location counter (`.`).
    Here,
    /// `%hi(e)` — upper 22 bits, as `sethi` wants them.
    Hi(Box<Expr>),
    /// `%lo(e)` — low 10 bits.
    Lo(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Here => write!(f, "."),
            Expr::Hi(e) => write!(f, "%hi({e})"),
            Expr::Lo(e) => write!(f, "%lo({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Neg(e) => write!(f, "-{e}"),
        }
    }
}

impl Expr {
    /// Evaluates against a label table and the current location counter.
    ///
    /// # Errors
    ///
    /// Returns the name of the first undefined symbol.
    pub fn eval(&self, labels: &HashMap<String, u32>, here: u32) -> Result<i64, String> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Sym(s) => *labels.get(s).ok_or_else(|| s.clone())? as i64,
            Expr::Here => here as i64,
            Expr::Hi(e) => (e.eval(labels, here)? as u32 >> 10) as i64,
            Expr::Lo(e) => (e.eval(labels, here)? as u32 & 0x3ff) as i64,
            Expr::Add(a, b) => a.eval(labels, here)?.wrapping_add(b.eval(labels, here)?),
            Expr::Sub(a, b) => a.eval(labels, here)?.wrapping_sub(b.eval(labels, here)?),
            Expr::Neg(e) => e.eval(labels, here)?.wrapping_neg(),
        })
    }

    /// Parses an expression from a string (whole-string parse).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input.
    pub fn parse(text: &str) -> Result<Expr, String> {
        let mut p = Parser {
            text: text.trim(),
            at: 0,
        };
        let e = p.additive()?;
        p.skip_ws();
        if p.at != p.text.len() {
            return Err(format!(
                "trailing input after expression: {:?}",
                &p.text[p.at..]
            ));
        }
        Ok(e)
    }
}

struct Parser<'a> {
    text: &'a str,
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.at..]
    }

    fn additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.primary()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('+') {
                self.at += 1;
                let rhs = self.primary()?;
                lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.rest().starts_with('-') {
                self.at += 1;
                let rhs = self.primary()?;
                lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, String> {
        self.skip_ws();
        let rest = self.rest();
        if rest.is_empty() {
            return Err("expected expression".into());
        }
        if let Some(tail) = rest.strip_prefix('-') {
            self.at = self.text.len() - tail.len();
            return Ok(Expr::Neg(Box::new(self.primary()?)));
        }
        if let Some(tail) = rest.strip_prefix('(') {
            self.at = self.text.len() - tail.len();
            let inner = self.additive()?;
            self.skip_ws();
            if !self.rest().starts_with(')') {
                return Err("missing ')'".into());
            }
            self.at += 1;
            return Ok(inner);
        }
        for (prefix, wrap) in [("%hi(", true), ("%lo(", false)] {
            if let Some(tail) = rest.strip_prefix(prefix) {
                self.at = self.text.len() - tail.len();
                let inner = self.additive()?;
                self.skip_ws();
                if !self.rest().starts_with(')') {
                    return Err(format!("missing ')' after {prefix}"));
                }
                self.at += 1;
                return Ok(if wrap {
                    Expr::Hi(Box::new(inner))
                } else {
                    Expr::Lo(Box::new(inner))
                });
            }
        }
        if rest.starts_with('.')
            && !rest[1..].starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
        {
            self.at += 1;
            return Ok(Expr::Here);
        }
        // Number: 0x..., decimal.
        if rest.starts_with(|c: char| c.is_ascii_digit()) {
            let end = rest
                .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .unwrap_or(rest.len());
            let token = &rest[..end];
            self.at += end;
            let value = if let Some(hex) = token.strip_prefix("0x").or(token.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16)
            } else if let Some(bin) = token.strip_prefix("0b").or(token.strip_prefix("0B")) {
                i64::from_str_radix(bin, 2)
            } else {
                token.parse()
            };
            return value
                .map(Expr::Num)
                .map_err(|_| format!("bad number {token:?}"));
        }
        // Symbol: [A-Za-z_.$][A-Za-z0-9_.$]*
        if rest.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_' || c == '.' || c == '$') {
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'))
                .unwrap_or(rest.len());
            let token = &rest[..end];
            self.at += end;
            return Ok(Expr::Sym(token.to_string()));
        }
        Err(format!("unexpected input: {rest:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(text: &str) -> i64 {
        let mut labels = HashMap::new();
        labels.insert("foo".to_string(), 0x12345678);
        labels.insert("L1".to_string(), 0x1000);
        Expr::parse(text).unwrap().eval(&labels, 0x2000).unwrap()
    }

    #[test]
    fn literals() {
        assert_eq!(eval("42"), 42);
        assert_eq!(eval("0x10"), 16);
        assert_eq!(eval("0b101"), 5);
        assert_eq!(eval("-7"), -7);
    }

    #[test]
    fn symbols_and_arithmetic() {
        assert_eq!(eval("L1 + 8"), 0x1008);
        assert_eq!(eval("L1 - 4"), 0xffc);
        assert_eq!(eval("L1 + 4 - 8"), 0xffc);
        assert_eq!(eval("(L1)"), 0x1000);
    }

    #[test]
    fn hi_lo() {
        assert_eq!(eval("%hi(foo)"), (0x12345678u32 >> 10) as i64);
        assert_eq!(eval("%lo(foo)"), (0x12345678u32 & 0x3ff) as i64);
        assert_eq!(eval("%hi(0x1000)"), 4);
    }

    #[test]
    fn here() {
        assert_eq!(eval("."), 0x2000);
        assert_eq!(eval(". + 8"), 0x2008);
        assert_eq!(eval(".+8"), 0x2008);
        assert_eq!(eval(".-4"), 0x1ffc);
    }

    #[test]
    fn undefined_symbol_reports_name() {
        let err = Expr::parse("nope")
            .unwrap()
            .eval(&HashMap::new(), 0)
            .unwrap_err();
        assert_eq!(err, "nope");
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("%hi(1").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("@").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in ["1 + 2", "%hi(foo + 4)", "L1 - 8", "-3"] {
            let e = Expr::parse(text).unwrap();
            let e2 = Expr::parse(&e.to_string()).unwrap();
            let labels: HashMap<_, _> = [("foo".to_string(), 64u32), ("L1".to_string(), 128)]
                .into_iter()
                .collect();
            assert_eq!(e.eval(&labels, 0).unwrap(), e2.eval(&labels, 0).unwrap());
        }
    }
}
