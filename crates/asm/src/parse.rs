//! Line-level parsing: source text → statements.
//!
//! Syntax follows SPARC assembler conventions: one statement per line,
//! `label:` prefixes, `!`-to-end-of-line comments (also `//` and `#`),
//! directives beginning with `.`, and bracketed memory operands.

use crate::expr::Expr;
use crate::AsmError;
use eel_exe::SymbolKind;
use eel_isa::Reg;

/// Which output section a statement lands in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// The executable text segment.
    Text,
    /// The initialized data segment.
    Data,
}

/// One piece of a compound address operand.
#[derive(Clone, PartialEq, Debug)]
pub enum Part {
    /// A register.
    Reg(Reg),
    /// A symbolic expression.
    Expr(Expr),
}

/// A parsed instruction operand.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// A bare register.
    Reg(Reg),
    /// An immediate / label expression.
    Expr(Expr),
    /// A bracketed memory address `[base ± off]`.
    Mem {
        /// The base part.
        base: Part,
        /// True when the offset is subtracted.
        neg: bool,
        /// The optional offset part.
        off: Option<Part>,
    },
    /// An unbracketed `reg ± part` pair (jump targets: `jmpl %o1 + 8, ...`).
    Pair(Reg, bool, Part),
}

/// A parsed statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `name:` — define a label at the current location.
    Label(String),
    /// `.global name`.
    Global(String),
    /// `.entry name` — select the image entry point.
    Entry(String),
    /// `.text` / `.data`.
    Section(Section),
    /// `.word e, e, ...` (4 bytes each).
    Word(Vec<Expr>),
    /// `.half e, ...` (2 bytes each).
    Half(Vec<Expr>),
    /// `.byte e, ...`.
    Byte(Vec<Expr>),
    /// `.ascii "..."` / `.asciz "..."` (the latter appends NUL).
    Ascii(Vec<u8>),
    /// `.align n` — pad with zero bytes to an n-byte boundary.
    Align(u32),
    /// `.skip n` — emit n zero bytes.
    Skip(u32),
    /// `.type name, kind` — override the emitted symbol kind (lets tests
    /// fabricate the misleading symbol tables §3.1 describes).
    Type(String, SymbolKind),
    /// A machine instruction.
    Insn {
        /// Lower-cased mnemonic without any `,a` suffix.
        mnemonic: String,
        /// Branch annul flag (`bne,a`).
        annul: bool,
        /// Parsed operands, in source order.
        operands: Vec<Operand>,
    },
}

/// A statement tagged with its 1-based source line for diagnostics.
#[derive(Clone, PartialEq, Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The statement.
    pub stmt: Stmt,
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'!' | b'#' if !in_str => return &line[..i],
            b'/' if !in_str && bytes.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Splits on top-level commas (not inside brackets, parens, or strings).
fn split_operands(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            '\\' if in_str => {
                current.push(c);
                if let Some(n) = chars.next() {
                    current.push(n);
                }
            }
            '[' | '(' if !in_str => {
                depth += 1;
                current.push(c);
            }
            ']' | ')' if !in_str => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 && !in_str => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

fn parse_part(text: &str) -> Result<Part, String> {
    if let Some(r) = Reg::parse(text) {
        Ok(Part::Reg(r))
    } else {
        Ok(Part::Expr(Expr::parse(text)?))
    }
}

/// Splits `text` at the first top-level `+` or `-` (not inside parens and
/// not at position 0), returning `(lhs, is_minus, rhs)`.
fn split_top_level_sign(text: &str) -> Option<(&str, bool, &str)> {
    let mut depth = 0;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '+' | '-' if depth == 0 && i > 0 => {
                return Some((&text[..i], c == '-', &text[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

fn parse_operand(text: &str) -> Result<Operand, String> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated memory operand {text:?}"))?
            .trim();
        if let Some((lhs, neg, rhs)) = split_top_level_sign(inner) {
            return Ok(Operand::Mem {
                base: parse_part(lhs.trim())?,
                neg,
                off: Some(parse_part(rhs.trim())?),
            });
        }
        return Ok(Operand::Mem {
            base: parse_part(inner)?,
            neg: false,
            off: None,
        });
    }
    if let Some(r) = Reg::parse(text) {
        return Ok(Operand::Reg(r));
    }
    // Unbracketed reg ± part (jump-target syntax).
    if text.starts_with('%') && !text.starts_with("%hi") && !text.starts_with("%lo") {
        if let Some((lhs, neg, rhs)) = split_top_level_sign(text) {
            if let Some(r) = Reg::parse(lhs.trim()) {
                return Ok(Operand::Pair(r, neg, parse_part(rhs.trim())?));
            }
        }
        return Err(format!("bad register operand {text:?}"));
    }
    Ok(Operand::Expr(Expr::parse(text)?))
}

fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let inner = s
        .trim()
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got {s:?}"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                Some(other) => return Err(format!("unknown escape \\{other}")),
                None => return Err("dangling backslash".into()),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_directive(name: &str, rest: &str) -> Result<Stmt, String> {
    let operands = || split_operands(rest);
    let exprs =
        || -> Result<Vec<Expr>, String> { operands().iter().map(|s| Expr::parse(s)).collect() };
    match name {
        ".text" => Ok(Stmt::Section(Section::Text)),
        ".data" => Ok(Stmt::Section(Section::Data)),
        ".global" | ".globl" => Ok(Stmt::Global(rest.trim().to_string())),
        ".entry" => Ok(Stmt::Entry(rest.trim().to_string())),
        ".word" => Ok(Stmt::Word(exprs()?)),
        ".half" => Ok(Stmt::Half(exprs()?)),
        ".byte" => Ok(Stmt::Byte(exprs()?)),
        ".ascii" => Ok(Stmt::Ascii(unescape(rest)?)),
        ".asciz" => {
            let mut bytes = unescape(rest)?;
            bytes.push(0);
            Ok(Stmt::Ascii(bytes))
        }
        ".align" => {
            let n = Expr::parse(rest)?
                .eval(&Default::default(), 0)
                .map_err(|s| format!("undefined symbol {s} in .align"))?;
            if n <= 0 || (n & (n - 1)) != 0 {
                return Err(format!(".align needs a positive power of two, got {n}"));
            }
            Ok(Stmt::Align(n as u32))
        }
        ".skip" | ".space" => {
            let n = Expr::parse(rest)?
                .eval(&Default::default(), 0)
                .map_err(|s| format!("undefined symbol {s} in .skip"))?;
            if n < 0 {
                return Err(format!(".skip needs a non-negative size, got {n}"));
            }
            Ok(Stmt::Skip(n as u32))
        }
        ".type" => {
            let ops = operands();
            if ops.len() != 2 {
                return Err(".type takes `name, kind`".into());
            }
            let kind = match ops[1].as_str() {
                "routine" | "function" => SymbolKind::Routine,
                "object" => SymbolKind::Object,
                "label" => SymbolKind::Label,
                "debug" => SymbolKind::Debug,
                "temp" => SymbolKind::Temp,
                other => return Err(format!("unknown symbol kind {other:?}")),
            };
            Ok(Stmt::Type(ops[0].clone(), kind))
        }
        other => Err(format!("unknown directive {other}")),
    }
}

/// Parses a whole source file into statements.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line.
pub fn parse_source(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut line = strip_comment(raw).trim();
        // Peel off any leading `label:` prefixes.
        while let Some(colon) = line.find(':') {
            let (head, tail) = line.split_at(colon);
            let head = head.trim();
            let valid = !head.is_empty()
                && head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$');
            if !valid {
                break;
            }
            out.push(Line {
                number,
                stmt: Stmt::Label(head.to_string()),
            });
            line = tail[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let stmt = if line.starts_with('.') {
            let (name, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            parse_directive(name, rest.trim()).map_err(|message| AsmError {
                line: number,
                message,
            })?
        } else {
            let (mnem, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let mnem = mnem.to_ascii_lowercase();
            let (mnemonic, annul) = match mnem.strip_suffix(",a") {
                Some(base) => (base.to_string(), true),
                None => (mnem, false),
            };
            let operands = split_operands(rest)
                .iter()
                .map(|s| parse_operand(s))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|message| AsmError {
                    line: number,
                    message,
                })?;
            Ok(Stmt::Insn {
                mnemonic,
                annul,
                operands,
            })
            .map_err(|message: String| AsmError {
                line: number,
                message,
            })?
        };
        out.push(Line { number, stmt });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let lines = parse_source(src).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        lines[0].stmt.clone()
    }

    #[test]
    fn labels_and_comments() {
        let lines = parse_source("foo: ! a label\n  bar: add %g1, 1, %g1 // tail\n").unwrap();
        assert_eq!(lines[0].stmt, Stmt::Label("foo".into()));
        assert_eq!(lines[1].stmt, Stmt::Label("bar".into()));
        match &lines[2].stmt {
            Stmt::Insn {
                mnemonic, operands, ..
            } => {
                assert_eq!(mnemonic, "add");
                assert_eq!(operands.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn annul_suffix() {
        match one("bne,a target") {
            Stmt::Insn {
                mnemonic, annul, ..
            } => {
                assert_eq!(mnemonic, "bne");
                assert!(annul);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        match one("ld [%sp + 64], %o0") {
            Stmt::Insn { operands, .. } => {
                assert_eq!(
                    operands[0],
                    Operand::Mem {
                        base: Part::Reg(Reg::SP),
                        neg: false,
                        off: Some(Part::Expr(Expr::Num(64)))
                    }
                );
                assert_eq!(operands[1], Operand::Reg(Reg(8)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_and_lo_memory_operands() {
        match one("st %g7, [%lo(counter) + %g6]") {
            Stmt::Insn { operands, .. } => match &operands[1] {
                Operand::Mem {
                    base: Part::Expr(Expr::Lo(_)),
                    neg: false,
                    off: Some(Part::Reg(r)),
                } => {
                    assert_eq!(*r, Reg(6));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match one("st %o0, [%sp - 4]") {
            Stmt::Insn { operands, .. } => match &operands[1] {
                Operand::Mem { neg, .. } => assert!(neg),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pair_operand_for_jmpl() {
        match one("jmpl %o1 + 8, %g0") {
            Stmt::Insn { operands, .. } => {
                assert_eq!(
                    operands[0],
                    Operand::Pair(Reg(9), false, Part::Expr(Expr::Num(8)))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives() {
        assert_eq!(one(".text"), Stmt::Section(Section::Text));
        assert_eq!(one(".global main"), Stmt::Global("main".into()));
        assert_eq!(
            one(".word 1, 2, 3"),
            Stmt::Word(vec![Expr::Num(1), Expr::Num(2), Expr::Num(3)])
        );
        assert_eq!(one(".ascii \"hi\\n\""), Stmt::Ascii(b"hi\n".to_vec()));
        assert_eq!(one(".asciz \"x\""), Stmt::Ascii(b"x\0".to_vec()));
        assert_eq!(one(".align 8"), Stmt::Align(8));
        assert_eq!(one(".skip 12"), Stmt::Skip(12));
        assert_eq!(
            one(".type t, temp"),
            Stmt::Type("t".into(), SymbolKind::Temp)
        );
    }

    #[test]
    fn directive_errors_carry_line_numbers() {
        let err = parse_source("\n\n.bogus 1\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(parse_source(".align 3").is_err());
        assert!(parse_source(".skip -1").is_err());
        assert!(parse_source(".type x, frob").is_err());
    }

    #[test]
    fn string_with_comment_chars_inside() {
        assert_eq!(one(".ascii \"a!b\""), Stmt::Ascii(b"a!b".to_vec()));
    }

    #[test]
    fn expr_operand_with_plus_is_not_a_pair() {
        match one("call foo + 8") {
            Stmt::Insn { operands, .. } => {
                assert!(matches!(operands[0], Operand::Expr(Expr::Add(_, _))));
            }
            other => panic!("{other:?}"),
        }
    }
}
