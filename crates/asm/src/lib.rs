//! # eel-asm: a two-pass assembler for the EEL target ISA
//!
//! Assembles SPARC-syntax source into WEF executable images
//! ([`eel_exe::Image`]). The assembler serves three roles in the
//! reproduction:
//!
//! 1. authoring test programs and examples by hand,
//! 2. the back end of the `eel-cc` compiler, and
//! 3. authoring *code snippets* (paper §3.5) — [`assemble_fragment`]
//!    assembles a position-relative fragment into raw instructions for
//!    `eel-core`'s snippet machinery (the paper's Figure 5 snippet is
//!    exactly such a fragment).
//!
//! ## Example
//!
//! ```
//! let image = eel_asm::assemble(r#"
//!     .text
//!     .global main
//! main:
//!     mov 3, %o0
//!     retl
//!     nop
//! "#)?;
//! assert_eq!(image.find_symbol("main").unwrap().value, image.entry);
//! # Ok::<(), eel_asm::AsmError>(())
//! ```

mod expr;
mod parse;

pub use expr::Expr;
pub use parse::{Line, Operand, Part, Section, Stmt};

use eel_exe::{Image, Symbol, SymbolKind, DATA_BASE, TEXT_BASE};
use eel_isa::{AluOp, Builder, Cond, Insn, MemWidth, Reg, Src2};
use std::collections::HashMap;
use std::fmt;

/// An assembly error, tagged with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

/// Assembler options: segment load addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Text segment base.
    pub text_base: u32,
    /// Data segment base.
    pub data_base: u32,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
        }
    }
}

/// Assembles a full program with default segment bases.
///
/// # Errors
///
/// Returns the first [`AsmError`] (unknown mnemonic, undefined label,
/// out-of-range immediate or displacement, ...).
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    assemble_with(source, &Options::default())
}

/// Assembles a full program.
///
/// The entry point is chosen by `.entry name`, else a `main` label, else a
/// `start` label, else the first text address.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_with(source: &str, options: &Options) -> Result<Image, AsmError> {
    let _obs = eel_obs::span("asm.assemble");
    let lines = parse::parse_source(source)?;
    let mut asm = Assembler::new(*options);
    asm.run(&lines)
}

/// Assembles a position-relative text fragment into instructions, for use
/// as snippet bodies. Labels are permitted but resolve relative to `base`;
/// data directives are rejected.
///
/// # Errors
///
/// See [`assemble`]; additionally rejects any non-text statement.
pub fn assemble_fragment(source: &str, base: u32) -> Result<Vec<Insn>, AsmError> {
    let _obs = eel_obs::span("asm.fragment");
    let lines = parse::parse_source(source)?;
    for line in &lines {
        match line.stmt {
            Stmt::Insn { .. } | Stmt::Label(_) | Stmt::Section(Section::Text) | Stmt::Word(_) => {}
            _ => {
                return Err(AsmError {
                    line: line.number,
                    message: "only instructions and labels are allowed in a fragment".into(),
                })
            }
        }
    }
    let options = Options {
        text_base: base,
        data_base: base.wrapping_add(0x0100_0000),
    };
    let mut asm = Assembler::new(options);
    asm.fragment = true;
    let image = asm.run(&lines)?;
    Ok(image
        .text_words()
        .map(|(_, w)| eel_isa::decode(w))
        .collect())
}

struct Assembler {
    options: Options,
    fragment: bool,
    labels: HashMap<String, u32>,
    label_sections: HashMap<String, Section>,
    globals: Vec<String>,
    types: HashMap<String, SymbolKind>,
    entry_name: Option<String>,
    text: Vec<u8>,
    data: Vec<u8>,
}

impl Assembler {
    fn new(options: Options) -> Assembler {
        Assembler {
            options,
            fragment: false,
            labels: HashMap::new(),
            label_sections: HashMap::new(),
            globals: Vec::new(),
            types: HashMap::new(),
            entry_name: None,
            text: Vec::new(),
            data: Vec::new(),
        }
    }

    fn run(&mut self, lines: &[Line]) -> Result<Image, AsmError> {
        self.pass1(lines)?;
        self.pass2(lines)?;
        self.finish()
    }

    /// Pass 1: compute label addresses. Every instruction is 4 bytes
    /// except `set`, whose expansion length is shape-determined (so both
    /// passes agree).
    fn pass1(&mut self, lines: &[Line]) -> Result<(), AsmError> {
        let mut section = Section::Text;
        let mut text_lc = self.options.text_base;
        let mut data_lc = self.options.data_base;
        for line in lines {
            let lc = match section {
                Section::Text => &mut text_lc,
                Section::Data => &mut data_lc,
            };
            match &line.stmt {
                Stmt::Label(name) => {
                    if self.labels.insert(name.clone(), *lc).is_some() {
                        return Err(AsmError {
                            line: line.number,
                            message: format!("duplicate label {name:?}"),
                        });
                    }
                    self.label_sections.insert(name.clone(), section);
                }
                Stmt::Section(s) => section = *s,
                Stmt::Global(name) => self.globals.push(name.clone()),
                Stmt::Entry(name) => self.entry_name = Some(name.clone()),
                Stmt::Type(name, kind) => {
                    self.types.insert(name.clone(), *kind);
                }
                Stmt::Word(es) => *lc += 4 * es.len() as u32,
                Stmt::Half(es) => *lc += 2 * es.len() as u32,
                Stmt::Byte(es) => *lc += es.len() as u32,
                Stmt::Ascii(bytes) => *lc += bytes.len() as u32,
                Stmt::Align(n) => *lc = lc.next_multiple_of(*n),
                Stmt::Skip(n) => *lc += n,
                Stmt::Insn {
                    mnemonic, operands, ..
                } => {
                    if section == Section::Data {
                        return Err(AsmError {
                            line: line.number,
                            message: "instruction in .data section".into(),
                        });
                    }
                    *lc += self.insn_size(mnemonic, operands);
                }
            }
        }
        Ok(())
    }

    fn insn_size(&self, mnemonic: &str, operands: &[Operand]) -> u32 {
        if mnemonic == "set" {
            if let Some(Operand::Expr(Expr::Num(n))) = operands.first() {
                let v = *n as u32;
                if Src2::fits_simm13(v as i32) || eel_isa::lo10(v) == 0 {
                    return 4;
                }
            }
            return 8;
        }
        4
    }

    fn pass2(&mut self, lines: &[Line]) -> Result<(), AsmError> {
        let mut section = Section::Text;
        for line in lines {
            match &line.stmt {
                Stmt::Section(s) => section = *s,
                Stmt::Label(_) | Stmt::Global(_) | Stmt::Entry(_) | Stmt::Type(..) => {}
                Stmt::Word(es) => self.emit_data(section, line, es, 4)?,
                Stmt::Half(es) => self.emit_data(section, line, es, 2)?,
                Stmt::Byte(es) => self.emit_data(section, line, es, 1)?,
                Stmt::Ascii(bytes) => self.buf(section).extend_from_slice(bytes),
                Stmt::Align(n) => {
                    let lc = self.lc(section);
                    let pad = lc.next_multiple_of(*n) - lc;
                    self.buf(section)
                        .extend(std::iter::repeat_n(0, pad as usize));
                }
                Stmt::Skip(n) => self
                    .buf(section)
                    .extend(std::iter::repeat_n(0, *n as usize)),
                Stmt::Insn {
                    mnemonic,
                    annul,
                    operands,
                } => {
                    let here = self.lc(Section::Text);
                    let words =
                        self.encode_insn(mnemonic, *annul, operands, here)
                            .map_err(|message| AsmError {
                                line: line.number,
                                message,
                            })?;
                    for w in words {
                        self.text.extend_from_slice(&w.to_be_bytes());
                    }
                }
            }
        }
        Ok(())
    }

    fn lc(&self, section: Section) -> u32 {
        match section {
            Section::Text => self.options.text_base + self.text.len() as u32,
            Section::Data => self.options.data_base + self.data.len() as u32,
        }
    }

    fn buf(&mut self, section: Section) -> &mut Vec<u8> {
        match section {
            Section::Text => &mut self.text,
            Section::Data => &mut self.data,
        }
    }

    fn emit_data(
        &mut self,
        section: Section,
        line: &Line,
        exprs: &[Expr],
        width: usize,
    ) -> Result<(), AsmError> {
        for e in exprs {
            let here = self.lc(section);
            let v = e.eval(&self.labels, here).map_err(|sym| AsmError {
                line: line.number,
                message: format!("undefined symbol {sym:?}"),
            })? as u64;
            let bytes = v.to_be_bytes();
            self.buf(section).extend_from_slice(&bytes[8 - width..]);
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, here: u32) -> Result<i64, String> {
        e.eval(&self.labels, here)
            .map_err(|sym| format!("undefined symbol {sym:?}"))
    }

    fn as_reg(op: &Operand) -> Result<Reg, String> {
        match op {
            Operand::Reg(r) => Ok(*r),
            other => Err(format!("expected register, got {other:?}")),
        }
    }

    fn as_src2(&self, op: &Operand, here: u32) -> Result<Src2, String> {
        match op {
            Operand::Reg(r) => Ok(Src2::Reg(*r)),
            Operand::Expr(e) => {
                let v = self.eval(e, here)?;
                if !Src2::fits_simm13(v as i32) || v > i32::MAX as i64 || v < i32::MIN as i64 {
                    return Err(format!("immediate {v} exceeds simm13"));
                }
                Ok(Src2::Imm(v as i32))
            }
            other => Err(format!("expected register or immediate, got {other:?}")),
        }
    }

    /// Decomposes a memory / jump-target operand into `(rs1, src2)`.
    fn as_addr(&self, op: &Operand, here: u32) -> Result<(Reg, Src2), String> {
        let imm = |v: i64| -> Result<Src2, String> {
            if !Src2::fits_simm13(v as i32) || v > i32::MAX as i64 || v < i32::MIN as i64 {
                return Err(format!("address offset {v} exceeds simm13"));
            }
            Ok(Src2::Imm(v as i32))
        };
        let decompose =
            |base: &Part, neg: bool, off: &Option<Part>| -> Result<(Reg, Src2), String> {
                match (base, off) {
                    (Part::Reg(r), None) => Ok((*r, Src2::Imm(0))),
                    (Part::Reg(r), Some(Part::Reg(r2))) => {
                        if neg {
                            Err("cannot subtract a register in an address".into())
                        } else {
                            Ok((*r, Src2::Reg(*r2)))
                        }
                    }
                    (Part::Reg(r), Some(Part::Expr(e))) => {
                        let v = self.eval(e, here)?;
                        Ok((*r, imm(if neg { -v } else { v })?))
                    }
                    (Part::Expr(e), Some(Part::Reg(r))) => {
                        if neg {
                            Err("cannot subtract a register in an address".into())
                        } else {
                            Ok((*r, imm(self.eval(e, here)?)?))
                        }
                    }
                    (Part::Expr(e), None) => Ok((Reg::G0, imm(self.eval(e, here)?)?)),
                    (Part::Expr(_), Some(Part::Expr(_))) => {
                        Err("address needs at most one expression part".into())
                    }
                }
            };
        match op {
            Operand::Mem { base, neg, off } => decompose(base, *neg, off),
            Operand::Pair(r, neg, part) => decompose(&Part::Reg(*r), *neg, &Some(part.clone())),
            Operand::Reg(r) => Ok((*r, Src2::Imm(0))),
            Operand::Expr(e) => Ok((Reg::G0, imm(self.eval(e, here)?)?)),
        }
    }

    fn branch_disp(&self, op: &Operand, here: u32) -> Result<i32, String> {
        let target = match op {
            Operand::Expr(e) => self.eval(e, here)?,
            other => return Err(format!("expected branch target, got {other:?}")),
        } as i64;
        let delta = target - here as i64;
        if delta % 4 != 0 {
            return Err(format!("branch target {target:#x} is not word-aligned"));
        }
        Ok((delta / 4) as i32)
    }

    fn encode_insn(
        &self,
        mnemonic: &str,
        annul: bool,
        ops: &[Operand],
        here: u32,
    ) -> Result<Vec<u32>, String> {
        let need = |n: usize| -> Result<(), String> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "{mnemonic} takes {n} operand(s), got {}",
                    ops.len()
                ))
            }
        };

        // Conditional branches.
        let branch_conds: &[(&str, Cond)] = &[
            ("ba", Cond::Always),
            ("bn", Cond::Never),
            ("bne", Cond::Ne),
            ("be", Cond::Eq),
            ("bg", Cond::Gt),
            ("ble", Cond::Le),
            ("bge", Cond::Ge),
            ("bl", Cond::Lt),
            ("bgu", Cond::Gtu),
            ("bleu", Cond::Leu),
            ("bcs", Cond::CarrySet),
            ("blu", Cond::CarrySet),
            ("bcc", Cond::CarryClear),
            ("bgeu", Cond::CarryClear),
            ("bneg", Cond::Neg),
            ("bpos", Cond::Pos),
            ("bvs", Cond::OverflowSet),
            ("bvc", Cond::OverflowClear),
        ];
        if let Some((_, cond)) = branch_conds.iter().find(|(m, _)| *m == mnemonic) {
            need(1)?;
            let disp22 = self.branch_disp(&ops[0], here)?;
            if !(-(1 << 21)..(1 << 21)).contains(&disp22) {
                return Err(format!("branch displacement {disp22} exceeds 22 bits"));
            }
            return Ok(vec![Builder::branch(*cond, annul, disp22).word]);
        }
        if annul {
            return Err(format!(
                "`,a` suffix is only valid on branches, not {mnemonic}"
            ));
        }

        // ALU operations (with optional cc suffix).
        let alu_table: &[(&str, AluOp)] = &[
            ("add", AluOp::Add),
            ("sub", AluOp::Sub),
            ("and", AluOp::And),
            ("or", AluOp::Or),
            ("xor", AluOp::Xor),
            ("andn", AluOp::Andn),
            ("orn", AluOp::Orn),
            ("xnor", AluOp::Xnor),
            ("umul", AluOp::Umul),
            ("smul", AluOp::Smul),
            ("udiv", AluOp::Udiv),
            ("sdiv", AluOp::Sdiv),
            ("sll", AluOp::Sll),
            ("srl", AluOp::Srl),
            ("sra", AluOp::Sra),
            ("save", AluOp::Save),
            ("restore", AluOp::Restore),
        ];
        let (base_mnem, cc) = match mnemonic.strip_suffix("cc") {
            Some(base) if alu_table.iter().any(|(m, _)| *m == base) => (base, true),
            _ => (mnemonic, false),
        };
        if let Some((_, op)) = alu_table.iter().find(|(m, _)| *m == base_mnem) {
            if ops.is_empty() && matches!(op, AluOp::Save | AluOp::Restore) {
                return Ok(vec![
                    Builder::alu(*op, false, Reg::G0, Reg::G0, Src2::Imm(0)).word,
                ]);
            }
            need(3)?;
            let rs1 = Self::as_reg(&ops[0])?;
            let src2 = self.as_src2(&ops[1], here)?;
            let rd = Self::as_reg(&ops[2])?;
            if cc && !op.supports_cc() {
                return Err(format!("{base_mnem} has no cc variant"));
            }
            return Ok(vec![Builder::alu(*op, cc, rd, rs1, src2).word]);
        }

        // Loads and stores.
        let load_table: &[(&str, MemWidth, bool)] = &[
            ("ld", MemWidth::Word, false),
            ("ldub", MemWidth::Byte, false),
            ("ldsb", MemWidth::Byte, true),
            ("lduh", MemWidth::Half, false),
            ("ldsh", MemWidth::Half, true),
            ("ldd", MemWidth::Double, false),
        ];
        if let Some((_, width, signed)) = load_table.iter().find(|(m, ..)| *m == mnemonic) {
            need(2)?;
            let (rs1, src2) = self.as_addr(&ops[0], here)?;
            let rd = Self::as_reg(&ops[1])?;
            return Ok(vec![Builder::load(*width, *signed, rd, rs1, src2).word]);
        }
        let store_table: &[(&str, MemWidth)] = &[
            ("st", MemWidth::Word),
            ("stb", MemWidth::Byte),
            ("sth", MemWidth::Half),
            ("std", MemWidth::Double),
        ];
        if let Some((_, width)) = store_table.iter().find(|(m, _)| *m == mnemonic) {
            need(2)?;
            let rd = Self::as_reg(&ops[0])?;
            let (rs1, src2) = self.as_addr(&ops[1], here)?;
            return Ok(vec![Builder::store(*width, rd, rs1, src2).word]);
        }

        // Traps: t<cond>.
        if let Some(suffix) = mnemonic.strip_prefix('t') {
            if let Some(cond) = Cond::ALL.iter().find(|c| c.suffix() == suffix) {
                need(1)?;
                let (rs1, src2) = self.as_addr(&ops[0], here)?;
                return Ok(vec![eel_isa::encode(&eel_isa::Op::Trap {
                    cond: *cond,
                    rs1,
                    src2,
                })]);
            }
        }

        match mnemonic {
            "nop" => {
                need(0)?;
                Ok(vec![Builder::nop().word])
            }
            "wr" => {
                // wr rs1, src2, %y|%psr
                need(3)?;
                let rs1 = Self::as_reg(&ops[0])?;
                let src2 = self.as_src2(&ops[1], here)?;
                let op = match Self::as_reg(&ops[2])? {
                    Reg::Y => AluOp::Wry,
                    Reg::PSR => AluOp::Wrpsr,
                    other => return Err(format!("wr destination must be %y or %psr, got {other}")),
                };
                Ok(vec![Builder::alu(op, false, Reg::G0, rs1, src2).word])
            }
            "rd" => {
                // rd %y|%psr, rd
                need(2)?;
                let op = match Self::as_reg(&ops[0])? {
                    Reg::Y => AluOp::Rdy,
                    Reg::PSR => AluOp::Rdpsr,
                    other => return Err(format!("rd source must be %y or %psr, got {other}")),
                };
                let rd = Self::as_reg(&ops[1])?;
                Ok(vec![
                    Builder::alu(op, false, rd, Reg::G0, Src2::Reg(Reg::G0)).word,
                ])
            }
            "mov" => {
                need(2)?;
                let src2 = self.as_src2(&ops[0], here)?;
                let rd = Self::as_reg(&ops[1])?;
                Ok(vec![Builder::mov(rd, src2).word])
            }
            "clr" => {
                need(1)?;
                Ok(vec![
                    Builder::mov(Self::as_reg(&ops[0])?, Src2::Imm(0)).word,
                ])
            }
            "inc" => {
                need(1)?;
                let r = Self::as_reg(&ops[0])?;
                Ok(vec![Builder::add(r, r, Src2::Imm(1)).word])
            }
            "dec" => {
                need(1)?;
                let r = Self::as_reg(&ops[0])?;
                Ok(vec![Builder::sub(r, r, Src2::Imm(1)).word])
            }
            "cmp" => {
                need(2)?;
                let rs1 = Self::as_reg(&ops[0])?;
                let src2 = self.as_src2(&ops[1], here)?;
                Ok(vec![Builder::cmp(rs1, src2).word])
            }
            "tst" => {
                need(1)?;
                Ok(vec![
                    Builder::cmp(Self::as_reg(&ops[0])?, Src2::Imm(0)).word,
                ])
            }
            "set" => {
                need(2)?;
                let value = match &ops[0] {
                    Operand::Expr(e) => self.eval(e, here)? as u32,
                    other => return Err(format!("set takes an expression, got {other:?}")),
                };
                let rd = Self::as_reg(&ops[1])?;
                // Match pass-1 sizing: literal numbers may shrink, symbolic
                // expressions always take the full sethi/or pair.
                let shape_known = matches!(&ops[0], Operand::Expr(Expr::Num(_)));
                if shape_known {
                    Ok(Builder::set(rd, value).iter().map(|i| i.word).collect())
                } else {
                    Ok(vec![
                        Builder::sethi_hi(rd, value).word,
                        Builder::or_lo(rd, rd, value).word,
                    ])
                }
            }
            "sethi" => {
                need(2)?;
                let field = match &ops[0] {
                    Operand::Expr(e) => self.eval(e, here)? as u32,
                    other => return Err(format!("sethi takes an expression, got {other:?}")),
                };
                if field >= (1 << 22) {
                    return Err(format!("sethi field {field:#x} exceeds 22 bits"));
                }
                let rd = Self::as_reg(&ops[1])?;
                Ok(vec![eel_isa::encode(&eel_isa::Op::Sethi {
                    rd,
                    imm22: field,
                })])
            }
            "call" => {
                need(1)?;
                let disp30 = self.branch_disp(&ops[0], here)?;
                Ok(vec![Builder::call(disp30).word])
            }
            "jmp" => {
                need(1)?;
                let (rs1, src2) = self.as_addr(&ops[0], here)?;
                Ok(vec![Builder::jmpl(Reg::G0, rs1, src2).word])
            }
            "jmpl" => {
                need(2)?;
                let (rs1, src2) = self.as_addr(&ops[0], here)?;
                let rd = Self::as_reg(&ops[1])?;
                Ok(vec![Builder::jmpl(rd, rs1, src2).word])
            }
            "ret" => {
                need(0)?;
                Ok(vec![Builder::jmpl(Reg::G0, Reg::I7, Src2::Imm(8)).word])
            }
            "retl" => {
                need(0)?;
                Ok(vec![Builder::retl().word])
            }
            "unimp" => {
                need(1)?;
                let v = match &ops[0] {
                    Operand::Expr(e) => self.eval(e, here)? as u32,
                    other => return Err(format!("unimp takes an expression, got {other:?}")),
                };
                Ok(vec![eel_isa::encode(&eel_isa::Op::Unimp {
                    const22: v & 0x3fffff,
                })])
            }
            other => Err(format!("unknown mnemonic {other:?}")),
        }
    }

    fn finish(&mut self) -> Result<Image, AsmError> {
        let mut image = Image::new(self.options.text_base, self.options.data_base);
        image.text = std::mem::take(&mut self.text);
        image.data = std::mem::take(&mut self.data);

        // Emit symbols in definition order.
        let mut names: Vec<&String> = self.labels.keys().collect();
        names.sort_by_key(|n| (self.labels[*n], n.as_str()));
        for name in names {
            let value = self.labels[name];
            let section = self.label_sections[name];
            let global = self.globals.contains(name);
            let kind = self.types.get(name).copied().unwrap_or(match section {
                Section::Text if global => SymbolKind::Routine,
                Section::Text => SymbolKind::Label,
                Section::Data => SymbolKind::Object,
            });
            image.symbols.push(Symbol {
                name: name.clone(),
                value,
                size: 0,
                kind,
                global,
            });
        }

        // Entry point.
        let entry = if let Some(name) = &self.entry_name {
            *self.labels.get(name).ok_or_else(|| AsmError {
                line: 0,
                message: format!("entry symbol {name:?} is undefined"),
            })?
        } else if let Some(&a) = self.labels.get("main").or_else(|| self.labels.get("start")) {
            a
        } else {
            self.options.text_base
        };
        image.entry = entry;

        if !self.fragment {
            image.validate().map_err(|e| AsmError {
                line: 0,
                message: e.to_string(),
            })?;
        }
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_isa::{decode, Category, Op};

    #[test]
    fn minimal_program() {
        let image = assemble(
            r#"
            .text
            .global main
        main:
            mov 3, %o0
            retl
            nop
        "#,
        )
        .unwrap();
        assert_eq!(image.text.len(), 12);
        assert_eq!(image.entry, image.text_addr);
        let words: Vec<_> = image.text_words().map(|(_, w)| decode(w)).collect();
        assert_eq!(words[0].to_string(), "mov 3, %o0");
        assert_eq!(words[1].to_string(), "retl");
        assert_eq!(words[2].to_string(), "nop");
    }

    #[test]
    fn branches_resolve_labels_both_directions() {
        let image = assemble(
            r#"
        main:
        loop:
            cmp %l0, 10
            bge done
            nop
            ba loop
            nop
        done:
            retl
            nop
        "#,
        )
        .unwrap();
        let insns: Vec<_> = image.text_words().map(|(_, w)| decode(w)).collect();
        // bge done: from offset 4 to offset 20 = +16 bytes = 4 words.
        match insns[1].op {
            Op::Branch { disp22, .. } => assert_eq!(disp22, 4),
            other => panic!("{other:?}"),
        }
        // ba loop: from offset 12 to offset 0 = -12 = -3 words.
        match insns[3].op {
            Op::Branch { disp22, .. } => assert_eq!(disp22, -3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_and_hi_lo_and_data() {
        let image = assemble(
            r#"
            .text
            .global main
        main:
            sethi %hi(counter), %g6
            ld [%lo(counter) + %g6], %g7
            inc %g7
            st %g7, [%lo(counter) + %g6]
            call helper
            nop
            retl
            nop
        helper:
            retl
            nop
            .data
        counter:
            .word 0
        "#,
        )
        .unwrap();
        let counter = image.find_symbol("counter").unwrap().value;
        let insns: Vec<_> = image.text_words().map(|(_, w)| decode(w)).collect();
        match insns[0].op {
            Op::Sethi { imm22, .. } => assert_eq!(imm22, counter >> 10),
            other => panic!("{other:?}"),
        }
        match insns[1].op {
            Op::Load {
                src2: Src2::Imm(lo),
                ..
            } => assert_eq!(lo as u32, counter & 0x3ff),
            other => panic!("{other:?}"),
        }
        assert_eq!(insns[4].category(), Category::Call);
        let helper = image.find_symbol("helper").unwrap().value;
        assert_eq!(insns[4].direct_target(image.text_addr + 16), Some(helper));
    }

    #[test]
    fn annulled_branch() {
        let image = assemble("main: bne,a main\n nop\n").unwrap();
        let insn = decode(image.word_at(image.text_addr).unwrap());
        match insn.op {
            Op::Branch { annul, cond, .. } => {
                assert!(annul);
                assert_eq!(cond, Cond::Ne);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_sizes_match_between_passes() {
        // A label *after* `set` proves pass-1 sizing equals pass-2 output.
        let image = assemble(
            r#"
        main:
            set 5, %l0          ! 1 word
            set 0x12345678, %l1 ! 2 words
            set after, %l2      ! symbolic: always 2 words
            ba after
            nop
        after:
            retl
            nop
        "#,
        )
        .unwrap();
        let after = image.find_symbol("after").unwrap().value;
        assert_eq!(after - image.text_addr, 4 + 8 + 8 + 8);
        // `ba after` at offset 20 must jump to offset 28.
        let ba = decode(image.word_at(image.text_addr + 20).unwrap());
        assert_eq!(ba.direct_target(image.text_addr + 20), Some(after));
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let image = assemble(
            r#"
        main:
            retl
            nop
            .data
        tbl:
            .word 0x11223344, main
        bytes:
            .byte 1, 2
            .half 0x55aa
            .ascii "ok"
            .align 4
        buf:
            .skip 8
        "#,
        )
        .unwrap();
        assert_eq!(image.word_at(image.data_addr), Some(0x11223344));
        assert_eq!(image.word_at(image.data_addr + 4), Some(image.entry));
        let bytes = image.find_symbol("bytes").unwrap().value;
        assert_eq!(bytes, image.data_addr + 8);
        let buf = image.find_symbol("buf").unwrap().value;
        assert_eq!(buf % 4, 0);
        assert_eq!(image.data.len() as u32, buf - image.data_addr + 8);
    }

    #[test]
    fn entry_directive_overrides_main() {
        let image = assemble(
            r#"
            .entry start2
        main:
            retl
            nop
        start2:
            retl
            nop
        "#,
        )
        .unwrap();
        assert_eq!(image.entry, image.find_symbol("start2").unwrap().value);
    }

    #[test]
    fn symbol_kinds() {
        let image = assemble(
            r#"
            .global main
            .type hidden, debug
        main:
            retl
            nop
        hidden:
            retl
            nop
        inner:
            nop
            .data
        d:  .word 1
        "#,
        )
        .unwrap();
        assert_eq!(image.find_symbol("main").unwrap().kind, SymbolKind::Routine);
        assert!(image.find_symbol("main").unwrap().global);
        assert_eq!(image.find_symbol("hidden").unwrap().kind, SymbolKind::Debug);
        assert_eq!(image.find_symbol("inner").unwrap().kind, SymbolKind::Label);
        assert_eq!(image.find_symbol("d").unwrap().kind, SymbolKind::Object);
    }

    #[test]
    fn errors_are_informative() {
        for (src, needle) in [
            ("main: frobnicate %o0\n", "unknown mnemonic"),
            ("main: ba nowhere\n", "undefined symbol"),
            ("main: mov 99999, %o0\n", "simm13"),
            ("main: add %o0, %o1\n", "takes 3 operand"),
            ("main: main: nop\n", "duplicate label"),
            ("main: nop,a\n", "only valid on branches"),
            ("main: add,a %o0, 1, %o0\n", "only valid on branches"),
            (".entry nope\nmain: nop\n", "undefined"),
        ] {
            let err = assemble(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "source {src:?} produced {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn fragment_assembly() {
        let insns = assemble_fragment(
            r#"
            sethi 0x1, %g6
            ld [%lo(0x1) + %g6], %g7
            add %g7, 1, %g7
            st %g7, [%lo(0x1) + %g6]
        "#,
            0,
        )
        .unwrap();
        assert_eq!(insns.len(), 4);
        assert_eq!(insns[2].to_string(), "add %g7, 1, %g7");
    }

    #[test]
    fn fragment_rejects_data() {
        assert!(assemble_fragment(".data\nx: .word 1\n", 0).is_err());
    }

    #[test]
    fn trap_conditions() {
        let image = assemble("main: ta 0\n te 3\n nop\n").unwrap();
        let insns: Vec<_> = image.text_words().map(|(_, w)| decode(w)).collect();
        assert!(matches!(
            insns[0].op,
            Op::Trap {
                cond: Cond::Always,
                ..
            }
        ));
        assert!(matches!(insns[1].op, Op::Trap { cond: Cond::Eq, .. }));
    }

    #[test]
    fn register_indexed_load() {
        let image = assemble("main: ld [%o0 + %o1], %o2\n retl\n nop\n").unwrap();
        let i = decode(image.word_at(image.text_addr).unwrap());
        assert_eq!(i.to_string(), "ld [%o0 + %o1], %o2");
    }

    #[test]
    fn disassembly_reassembles_identically() {
        // Round-trip: assemble → disassemble → reassemble → same words.
        let src = r#"
        main:
            save %sp, -96, %sp
            mov 10, %l0
            cmp %l0, 0
            bne,a .+8
            nop
            add %l0, %l1, %l2
            smul %l2, 3, %o0
            srl %o0, 2, %o0
            ld [%sp + 64], %o1
            st %o1, [%sp - 8]
            ldsb [%o1], %o2
            jmpl %o2 + 4, %o7
            nop
            ta 0
            retl
            restore %g0, 0, %g0
        "#;
        let image = assemble(src).unwrap();
        let disasm: String = image
            .text_words()
            .map(|(_, w)| format!("{}\n", decode(w)))
            .collect();
        let src2 = format!("main:\n{disasm}");
        let image2 = assemble(&src2).unwrap();
        assert_eq!(image.text, image2.text, "disassembly:\n{disasm}");
    }
}
