//! The speculative sweep and the worklist fixpoint over inference rules.
//!
//! Stage A (linear sweep) decodes every aligned text word once and every
//! aligned data word once, recording *local* facts: valid instruction,
//! direct call/branch targets, plausible prologues, data words holding
//! text addresses. Stage B (recursive sweep + fixpoint) starts from the
//! high-confidence seeds, follows control flow with delay-slot awareness
//! (consulting the caller-supplied dispatch resolver at indirect jumps),
//! and iterates rule application until no rule learns a new routine
//! start. Unreached residue is classified as data at the end.
//!
//! Every rule is deterministic and the worklist is drained in insertion
//! order from sorted seeds, so the inferred routine set is a pure
//! function of the image bytes.

use crate::facts::{FactBase, Facts};
use eel_exe::Image;
use eel_isa::{AluOp, Cond, Insn, MemWidth, Op, Reg, Src2};

/// How strongly the evidence supports an inferred routine start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Circumstantial (a data word pointing at plausible code).
    Low,
    /// Structural pattern (a compiler prologue with no incoming flow).
    Medium,
    /// Ground truth the hardware enforces (the entry point, a direct
    /// call's target).
    High,
}

/// The strongest single piece of evidence behind an inferred start.
///
/// Ordering is by resulting [`Confidence`] (then declaration order), so
/// merging keeps the strongest claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Evidence {
    /// A data-segment word holds this address (a function pointer at
    /// rest) and a prologue starts here.
    DataPointer,
    /// The word matches the compiler's prologue signature.
    Prologue,
    /// Some direct `call` targets this address.
    CallTarget,
    /// The first text address (routines are laid out from the start of
    /// text; something must own those bytes).
    TextStart,
    /// The program's architectural entry point.
    EntryPoint,
}

impl Evidence {
    /// The confidence class this evidence supports.
    pub fn confidence(self) -> Confidence {
        match self {
            Evidence::EntryPoint | Evidence::TextStart | Evidence::CallTarget => Confidence::High,
            Evidence::Prologue => Confidence::Medium,
            Evidence::DataPointer => Confidence::Low,
        }
    }
}

/// One inferred routine start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferredStart {
    /// Text address of the start.
    pub addr: u32,
    /// The strongest evidence that produced it.
    pub evidence: Evidence,
    /// Derived from [`InferredStart::evidence`].
    pub confidence: Confidence,
}

/// Aggregate counters from one inference run (also exported as
/// `strip.*` eel-obs metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Aligned text words swept.
    pub words: u32,
    /// Words that decode as defined instructions.
    pub valid: u32,
    /// Words the recursive sweep reached from some start.
    pub reached: u32,
    /// Words classified as data (dispatch-table slots plus unreachable
    /// gaps).
    pub data_words: u32,
    /// Fixpoint rounds until no rule learned a new start.
    pub iterations: u32,
    /// Total facts in the final fact base.
    pub facts: u64,
}

/// The confidence-ranked result of inference-based discovery: what the
/// symbol table would have said, reconstructed from the bytes.
#[derive(Debug, Clone, Default)]
pub struct InferredDiscovery {
    /// Inferred routine starts, ascending by address.
    pub starts: Vec<InferredStart>,
    /// Classified data ranges `[start, end)` inside text (dispatch
    /// tables and unreachable gaps), ascending, coalesced.
    pub data: Vec<(u32, u32)>,
    /// Run counters.
    pub stats: InferStats,
}

impl InferredDiscovery {
    /// The inferred start addresses, ascending.
    pub fn start_addrs(&self) -> Vec<u32> {
        self.starts.iter().map(|s| s.addr).collect()
    }
}

/// What the caller's dispatch resolver learned about one indirect jump.
///
/// eel-strip deliberately does not depend on eel-core; the §3.3
/// jump-table slicing machinery lives there, so [`infer`] takes it as a
/// callback and feeds resolved targets back into the sweep.
#[derive(Debug, Clone, Default)]
pub struct ResolvedDispatch {
    /// The dispatch table's extent `[start, end)` in the text segment,
    /// when the jump reads one — its slots are classified as data.
    pub table: Option<(u32, u32)>,
    /// Resolved jump targets (empty when the jump is unanalyzable).
    pub targets: Vec<u32>,
}

/// A resolver for indirect jumps: `(text extent, jump address, decoded
/// jump)` to what the jump can reach. [`NO_DISPATCH`] resolves nothing.
pub type DispatchResolver<'a> = dyn FnMut((u32, u32), u32, Insn) -> ResolvedDispatch + 'a;

/// A resolver that treats every indirect jump as unanalyzable.
pub fn no_dispatch(_extent: (u32, u32), _addr: u32, _insn: Insn) -> ResolvedDispatch {
    ResolvedDispatch::default()
}

/// Runs inference-based routine discovery over a (stripped) image.
///
/// The rules, in the order a fixpoint round applies them:
///
/// 1. **entry / text-start**: the architectural entry point and the
///    first text address seed starts (High).
/// 2. **call-target**: every direct `call`'s in-text target is a start
///    (High) — found in the linear sweep and again for any call the
///    recursive sweep reaches.
/// 3. **prologue**: a word matching the compiler's frame-push signature
///    (`sub %sp, imm, %sp` spilling `%o7`, or a classic `save %sp`)
///    seeds a start (Medium).
/// 4. **jump-table**: at each reached indirect jump the caller's
///    resolver (eel-core's §3.3 slicer) is consulted; resolved targets
///    re-enter the sweep and the table's slots are classified data.
/// 5. **data-pointer**: after a sweep converges, a data-segment word
///    holding the address of a still-unreached prologue promotes it to
///    a start (Low) — a function referenced only through memory.
/// 6. **gap-data**: when no rule learns a new start, still-unreached
///    words are classified as data.
pub fn infer(image: &Image, resolve: &mut DispatchResolver<'_>) -> InferredDiscovery {
    let _obs = eel_obs::span("strip.infer");
    let text = (image.text_addr, image.text_end());
    let mut facts = FactBase::new(text.0, image.text.len());
    let mut stats = InferStats {
        words: facts.len() as u32,
        ..InferStats::default()
    };
    eel_obs::counter!("strip.sweep.words").add(facts.len() as u64);

    // ---- Stage A: linear speculative sweep (local facts only). ----
    let mut calls = 0u64;
    let mut branches = 0u64;
    for (addr, word) in image.text_words() {
        let insn = eel_isa::decode(word);
        if matches!(insn.op, Op::Invalid) {
            continue;
        }
        stats.valid += 1;
        facts.add(addr, Facts::VALID);
        match insn.op {
            Op::Call { .. } => {
                if let Some(t) = insn
                    .direct_target(addr)
                    .filter(|t| facts.index(*t).is_some())
                {
                    facts.add(t, Facts::CALL_TGT);
                    calls += 1;
                }
            }
            Op::Branch { cond, .. } if cond != Cond::Never => {
                if let Some(t) = insn
                    .direct_target(addr)
                    .filter(|t| facts.index(*t).is_some())
                {
                    facts.add(t, Facts::BRANCH_TGT);
                    branches += 1;
                }
            }
            _ => {}
        }
        if is_prologue(image, addr) {
            facts.add(addr, Facts::PROLOGUE);
        }
    }
    eel_obs::counter!("strip.sweep.insns_valid").add(u64::from(stats.valid));
    eel_obs::counter!("strip.sweep.calls").add(calls);
    eel_obs::counter!("strip.sweep.branches").add(branches);

    // Data words holding aligned text addresses: function pointers at
    // rest, the weakest (and only memory-borne) start evidence.
    let mut data_ptrs = 0u64;
    for chunk in image.data.chunks_exact(4) {
        let v = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if facts.index(v).is_some() && facts.add(v, Facts::DATA_PTR) {
            data_ptrs += 1;
        }
    }
    eel_obs::counter!("strip.sweep.data_ptrs").add(data_ptrs);

    // ---- Stage B: seeds, then the recursive sweep fixpoint. ----
    let mut starts: std::collections::BTreeMap<u32, Evidence> = std::collections::BTreeMap::new();
    let learn =
        |starts: &mut std::collections::BTreeMap<u32, Evidence>, addr: u32, ev: Evidence| -> bool {
            match starts.entry(addr) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(ev);
                    // Dynamic name: the macro's static cache would pin the
                    // first rule's counter, so go through the registry.
                    eel_obs::counter(match ev {
                        Evidence::EntryPoint => "strip.rule.entry",
                        Evidence::TextStart => "strip.rule.text_start",
                        Evidence::CallTarget => "strip.rule.call_target",
                        Evidence::Prologue => "strip.rule.prologue",
                        Evidence::DataPointer => "strip.rule.data_pointer",
                    })
                    .add(1);
                    true
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if ev > *e.get() {
                        e.insert(ev);
                    }
                    false
                }
            }
        };

    if facts.index(image.entry).is_some() {
        learn(&mut starts, image.entry, Evidence::EntryPoint);
    }
    if !facts.is_empty() {
        learn(&mut starts, text.0, Evidence::TextStart);
    }
    let snapshot: Vec<(u32, Facts)> = facts.iter().collect();
    for &(addr, f) in &snapshot {
        if f.has(Facts::CALL_TGT) {
            learn(&mut starts, addr, Evidence::CallTarget);
        }
        if f.has(Facts::PROLOGUE) {
            learn(&mut starts, addr, Evidence::Prologue);
        }
    }

    let mut swept: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    loop {
        stats.iterations += 1;
        // Recursive sweep from every start not yet swept. The worklist
        // dedups on REACHED, so each word is processed at most once
        // across all rounds.
        let mut worklist: Vec<u32> = starts
            .keys()
            .copied()
            .filter(|a| !swept.contains(a))
            .collect();
        swept.extend(worklist.iter().copied());
        for &a in &worklist {
            facts.add(a, Facts::REACHED);
        }
        while let Some(addr) = worklist.pop() {
            let Some(word) = image.word_at(addr) else {
                continue;
            };
            let insn = eel_isa::decode(word);
            if matches!(insn.op, Op::Invalid | Op::Unimp { .. }) {
                continue; // reachable garbage: the path ends here
            }
            let enqueue = |facts: &mut FactBase, worklist: &mut Vec<u32>, t: u32| {
                if facts.index(t).is_some()
                    && !facts.get(t).has(Facts::DATA)
                    && facts.add(t, Facts::REACHED)
                {
                    worklist.push(t);
                }
            };
            if insn.is_delayed() {
                // The delay slot executes with the transfer; compilers
                // never put another transfer there, so mark it reached
                // without treating it as an independent flow point.
                if facts.index(addr + 4).is_some() {
                    facts.add(addr + 4, Facts::REACHED);
                    facts.add(addr, Facts::FALLS);
                }
            }
            match insn.op {
                Op::Branch { cond, .. } => {
                    if cond != Cond::Never {
                        if let Some(t) = insn.direct_target(addr) {
                            enqueue(&mut facts, &mut worklist, t);
                        }
                    }
                    if cond != Cond::Always {
                        enqueue(&mut facts, &mut worklist, addr + 8);
                    }
                }
                Op::Call { .. } => {
                    if let Some(t) = insn
                        .direct_target(addr)
                        .filter(|t| facts.index(*t).is_some())
                    {
                        facts.add(t, Facts::CALL_TGT);
                        learn(&mut starts, t, Evidence::CallTarget);
                        enqueue(&mut facts, &mut worklist, t);
                    }
                    // Calls are assumed to return past their delay slot.
                    enqueue(&mut facts, &mut worklist, addr + 8);
                }
                Op::Jmpl { rd, rs1, .. } => {
                    if rd == Reg::O7 {
                        // Indirect call: assume it returns.
                        enqueue(&mut facts, &mut worklist, addr + 8);
                    } else if rs1 == Reg::O7 || rs1 == Reg::I7 {
                        // Return: the path ends.
                    } else {
                        // Indirect jump: ask the §3.3 slicer.
                        let r = resolve(text, addr, insn);
                        if !r.targets.is_empty() || r.table.is_some() {
                            eel_obs::counter!("strip.rule.jumptable").add(1);
                        }
                        if let Some((lo, hi)) = r.table {
                            let mut a = lo;
                            while a < hi {
                                facts.add(a, Facts::DATA);
                                a += 4;
                            }
                        }
                        for t in r.targets {
                            enqueue(&mut facts, &mut worklist, t);
                        }
                    }
                }
                Op::Trap { .. } => {
                    // Traps may not return (the exit gateway), but
                    // over-marking reachability only shrinks the gap
                    // classification, never the start set.
                    enqueue(&mut facts, &mut worklist, addr + 4);
                }
                _ => {
                    facts.add(addr, Facts::FALLS);
                    enqueue(&mut facts, &mut worklist, addr + 4);
                }
            }
        }

        // Rule: a data-held pointer to a still-unreached prologue is a
        // routine referenced only through memory. Requiring the prologue
        // keeps coincidental integers out of the start set.
        let mut learned = false;
        let promote: Vec<u32> = facts
            .iter()
            .filter(|(_, f)| {
                f.has(Facts::DATA_PTR)
                    && f.has(Facts::PROLOGUE)
                    && f.has(Facts::VALID)
                    && !f.has(Facts::REACHED)
                    && !f.has(Facts::DATA)
            })
            .map(|(a, _)| a)
            .collect();
        for a in promote {
            learned |= learn(&mut starts, a, Evidence::DataPointer);
        }
        if !learned {
            break;
        }
    }
    eel_obs::counter!("strip.fixpoint.iters").add(u64::from(stats.iterations));

    // Gap classification: whatever no start reaches is data.
    let mut gap_words = 0u64;
    let unreached: Vec<u32> = facts
        .iter()
        .filter(|(_, f)| !f.has(Facts::REACHED) && !f.has(Facts::DATA))
        .map(|(a, _)| a)
        .collect();
    for a in unreached {
        facts.add(a, Facts::DATA);
        gap_words += 1;
    }
    eel_obs::counter!("strip.rule.gap_data").add(gap_words);

    // Materialize: drop any start that ended up classified as data (a
    // pointer into a dispatch table), mark the rest, coalesce the data
    // ranges, and count the final facts.
    let mut out = InferredDiscovery::default();
    for (&addr, &ev) in &starts {
        if facts.get(addr).has(Facts::DATA) {
            continue;
        }
        facts.add(addr, Facts::START);
        out.starts.push(InferredStart {
            addr,
            evidence: ev,
            confidence: ev.confidence(),
        });
    }
    for (addr, f) in facts.iter() {
        if f.has(Facts::REACHED) {
            stats.reached += 1;
        }
        if f.has(Facts::DATA) {
            stats.data_words += 1;
            match out.data.last_mut() {
                Some((_, end)) if *end == addr => *end = addr + 4,
                _ => out.data.push((addr, addr + 4)),
            }
        }
    }
    stats.facts = facts.total_facts();
    eel_obs::counter!("strip.fixpoint.facts").add(stats.facts);
    out.stats = stats;
    out
}

/// Does `addr` begin a plausible compiler prologue?
///
/// Two signatures are recognized (the rule catalog in
/// `docs/STRIPPED.md`):
///
/// * the flat-frame push our compiler emits for every non-leaf
///   function: `sub %sp, FRAME, %sp` immediately followed by a word
///   store of `%o7` at a small positive `%sp` offset;
/// * the classic register-window `save %sp, -FRAME, %sp`.
pub fn is_prologue(image: &Image, addr: u32) -> bool {
    let Some(w0) = image.word_at(addr) else {
        return false;
    };
    match eel_isa::decode(w0).op {
        Op::Alu {
            op: AluOp::Sub,
            cc: false,
            rd: Reg::SP,
            rs1: Reg::SP,
            src2: Src2::Imm(frame),
        } if frame > 0 => {
            let Some(w1) = image.word_at(addr + 4) else {
                return false;
            };
            matches!(
                eel_isa::decode(w1).op,
                Op::Store {
                    width: MemWidth::Word,
                    rd: Reg::O7,
                    rs1: Reg::SP,
                    src2: Src2::Imm(off),
                    fp: false,
                } if (0..64).contains(&off)
            )
        }
        Op::Alu {
            op: AluOp::Save,
            cc: false,
            rd: Reg::SP,
            rs1: Reg::SP,
            src2: Src2::Imm(frame),
        } => frame < 0,
        _ => false,
    }
}
