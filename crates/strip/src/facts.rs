//! The per-word fact base the inference rules read and write.
//!
//! One [`Facts`] entry per aligned text word, stored as a bitset so the
//! fixpoint's reads are array indexing rather than hash lookups, and the
//! total fact count (`strip.fixpoint.facts`) is a popcount.

/// Facts about one aligned word of the text segment. A word accumulates
/// facts monotonically — the sweep and the rules only ever *add* facts,
/// which is what makes the worklist iteration a fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Facts(pub u16);

impl Facts {
    /// The word decodes as a defined instruction.
    pub const VALID: Facts = Facts(1 << 0);
    /// Execution can fall through from this word to the next (it is not
    /// an unconditional transfer, return, or invalid word).
    pub const FALLS: Facts = Facts(1 << 1);
    /// Some direct branch targets this word.
    pub const BRANCH_TGT: Facts = Facts(1 << 2);
    /// Some direct call targets this word.
    pub const CALL_TGT: Facts = Facts(1 << 3);
    /// The word begins a plausible compiler prologue (frame push that
    /// spills the return address).
    pub const PROLOGUE: Facts = Facts(1 << 4);
    /// Some aligned data-segment word holds this word's address — a
    /// possible function pointer at rest.
    pub const DATA_PTR: Facts = Facts(1 << 5);
    /// The recursive sweep reached this word from some routine start.
    pub const REACHED: Facts = Facts(1 << 6);
    /// Classified as data (a dispatch table slot or an unreachable gap).
    pub const DATA: Facts = Facts(1 << 7);
    /// Chosen as a routine start.
    pub const START: Facts = Facts(1 << 8);

    /// Does this word carry every fact in `mask`?
    pub fn has(self, mask: Facts) -> bool {
        self.0 & mask.0 == mask.0
    }

    /// Adds `mask`'s facts; returns true when anything new was learned.
    pub fn add(&mut self, mask: Facts) -> bool {
        let before = self.0;
        self.0 |= mask.0;
        self.0 != before
    }

    /// The number of facts recorded on this word.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// The fact base: one [`Facts`] per aligned text word, addressed by
/// text-relative word index.
#[derive(Debug, Clone)]
pub struct FactBase {
    base: u32,
    words: Vec<Facts>,
}

impl FactBase {
    /// An empty fact base for a text segment of `len` bytes at `base`.
    pub fn new(base: u32, len: usize) -> FactBase {
        FactBase {
            base,
            words: vec![Facts::default(); len / 4],
        }
    }

    /// The word index for `addr`, if it is an aligned text address.
    pub fn index(&self, addr: u32) -> Option<usize> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.base) / 4) as usize;
        (i < self.words.len()).then_some(i)
    }

    /// The address of word index `i`.
    pub fn addr(&self, i: usize) -> u32 {
        self.base + 4 * i as u32
    }

    /// Number of words covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Is the text segment empty?
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The facts at `addr` (no facts for out-of-range addresses).
    pub fn get(&self, addr: u32) -> Facts {
        self.index(addr).map_or(Facts::default(), |i| self.words[i])
    }

    /// Adds facts at `addr`; returns true when anything new was learned.
    /// Out-of-range addresses learn nothing.
    pub fn add(&mut self, addr: u32, mask: Facts) -> bool {
        match self.index(addr) {
            Some(i) => self.words[i].add(mask),
            None => false,
        }
    }

    /// Iterates `(addr, facts)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Facts)> + '_ {
        self.words
            .iter()
            .enumerate()
            .map(|(i, f)| (self.addr(i), *f))
    }

    /// Total number of facts across all words.
    pub fn total_facts(&self) -> u64 {
        self.words.iter().map(|f| u64::from(f.count())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_are_monotonic() {
        let mut f = Facts::default();
        assert!(f.add(Facts::VALID));
        assert!(!f.add(Facts::VALID), "re-adding learns nothing");
        assert!(f.add(Facts::REACHED));
        assert!(f.has(Facts::VALID));
        assert!(f.has(Facts::REACHED));
        assert!(!f.has(Facts::DATA));
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn fact_base_addressing() {
        let mut fb = FactBase::new(0x10000, 16);
        assert_eq!(fb.len(), 4);
        assert_eq!(fb.index(0x10000), Some(0));
        assert_eq!(fb.index(0x1000c), Some(3));
        assert_eq!(fb.index(0x10010), None, "past the end");
        assert_eq!(fb.index(0x10002), None, "misaligned");
        assert_eq!(fb.index(0xfffc), None, "before the base");
        assert!(fb.add(0x10004, Facts::CALL_TGT));
        assert!(fb.get(0x10004).has(Facts::CALL_TGT));
        assert!(!fb.add(0x10010, Facts::DATA), "out of range learns nothing");
        assert_eq!(fb.total_facts(), 1);
        assert_eq!(fb.addr(2), 0x10008);
    }
}
