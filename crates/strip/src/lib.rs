//! # eel-strip: inference-based routine discovery for stripped binaries
//!
//! EEL's §3.1 discovery pipeline calls the symbol table "unreliable"
//! but still requires one. This crate removes that wall: given a WEF
//! image with an **empty** symbol table, it reconstructs the routine
//! starts (and the code/data separation) from the bytes alone, in the
//! style of Datalog Disassembly — a speculative disassembly sweep
//! produces a per-word *fact base*, then a deterministic worklist
//! fixpoint applies hand-coded inference rules until nothing new is
//! learned.
//!
//! The pieces:
//!
//! * [`Facts`] / [`FactBase`] — per-word bitset facts
//!   (valid-instruction, fall-through, branch/call target,
//!   plausible-prologue, data-pointer-into-text, reached, data, start).
//! * [`infer`] — the sweep and the fixpoint. Indirect jumps are
//!   resolved through a caller-supplied [`DispatchResolver`] so
//!   eel-core's §3.3 jump-table slicer can feed dispatch targets back
//!   into the sweep without a dependency cycle.
//! * [`InferredDiscovery`] — the confidence-ranked result: starts with
//!   [`Evidence`] and [`Confidence`], classified data ranges, and run
//!   [`InferStats`]. eel-core plugs this into `discover_routines` so
//!   every downstream layer (CFG build, liveness, fragments, editing,
//!   serving) works unchanged on symbol-less images.
//!
//! The rule catalog, with the reasoning behind each rule's confidence
//! class, is documented in `docs/STRIPPED.md`.
//!
//! ## Example
//!
//! ```
//! let mut image = eel_cc::compile_str(
//!     "fn helper(x) { return x + 1; }
//!      fn main() { print(helper(41)); return 0; }",
//!     &eel_cc::Options::default(),
//! )?;
//! let named: Vec<u32> = image
//!     .symbols
//!     .iter()
//!     .filter(|s| s.kind == eel_exe::SymbolKind::Routine)
//!     .map(|s| s.value)
//!     .collect();
//! image.strip();
//! let inferred = eel_strip::infer(&image, &mut eel_strip::no_dispatch);
//! for start in named {
//!     assert!(inferred.start_addrs().contains(&start));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod facts;
mod infer;

pub use facts::{FactBase, Facts};
pub use infer::{
    infer, is_prologue, no_dispatch, Confidence, DispatchResolver, Evidence, InferStats,
    InferredDiscovery, InferredStart, ResolvedDispatch,
};

#[cfg(test)]
mod tests {
    use super::*;
    use eel_cc::Options;
    use eel_exe::{Image, SymbolKind};

    fn compile(src: &str) -> Image {
        eel_cc::compile_str(src, &Options::default()).expect("compile")
    }

    fn routine_starts(image: &Image) -> Vec<u32> {
        let mut v: Vec<u32> = image
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Routine)
            .map(|s| s.value)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn inference_recovers_every_named_start() {
        let mut image = compile(
            "fn add(a, b) { return a + b; }
             fn mul(a, b) { return a * b; }
             fn dispatch(k, x) {
               if (k == 0) { return add(x, 1); }
               return mul(x, 2);
             }
             fn main() { var i; var t = 0;
               for (i = 0; i < 4; i = i + 1) { t = t + dispatch(i, i); }
               print(t); return t; }",
        );
        let truth = routine_starts(&image);
        image.strip();
        assert!(image.is_stripped());
        let inferred = infer(&image, &mut no_dispatch);
        let got = inferred.start_addrs();
        for start in &truth {
            assert!(got.contains(start), "missed routine start {start:#x}");
        }
        // Determinism: same image, same result.
        let again = infer(&image, &mut no_dispatch);
        assert_eq!(inferred.starts, again.starts);
        assert_eq!(inferred.data, again.data);
    }

    #[test]
    fn no_spurious_starts_inside_reached_code() {
        // Every inferred start must be the entry, the text base, a call
        // target, or a prologue — never a mid-routine word that plain
        // fall-through already owns.
        let mut image = compile(
            "fn f(x) { var i; var t = 0;
               for (i = 0; i < x; i = i + 1) { t = t + i * i; }
               return t; }
             fn main() { return f(9); }",
        );
        let truth = routine_starts(&image);
        image.strip();
        let inferred = infer(&image, &mut no_dispatch);
        for s in &inferred.starts {
            assert!(
                truth.contains(&s.addr),
                "spurious start {:#x} ({:?})",
                s.addr,
                s.evidence
            );
        }
    }

    #[test]
    fn confidence_ranking_is_ordered() {
        assert!(Confidence::High > Confidence::Medium);
        assert!(Confidence::Medium > Confidence::Low);
        assert_eq!(Evidence::EntryPoint.confidence(), Confidence::High);
        assert_eq!(Evidence::CallTarget.confidence(), Confidence::High);
        assert_eq!(Evidence::Prologue.confidence(), Confidence::Medium);
        assert_eq!(Evidence::DataPointer.confidence(), Confidence::Low);
        // Merging keeps the strongest evidence: Evidence orders by it.
        assert!(Evidence::CallTarget > Evidence::Prologue);
        assert!(Evidence::Prologue > Evidence::DataPointer);
    }

    #[test]
    fn prologue_signature_matches_compiled_functions() {
        let image = compile("fn leaf(x) { return x + 2; }\nfn main() { return leaf(40); }");
        let truth = routine_starts(&image);
        // Compiled (non-runtime) functions carry the frame-push
        // signature at their first word.
        let compiled: Vec<u32> = image
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Routine && !s.name.starts_with("__"))
            .map(|s| s.value)
            .collect();
        assert!(!compiled.is_empty());
        for start in compiled {
            assert!(is_prologue(&image, start), "no prologue at {start:#x}");
        }
        // And nothing off-start matches by accident in this program.
        for &start in &truth {
            assert!(
                !is_prologue(&image, start + 4),
                "false prologue inside routine at {:#x}",
                start + 4
            );
        }
    }

    #[test]
    fn unreachable_gap_classifies_as_data_and_stats_add_up() {
        let mut image = compile(
            "fn used(x) { return x * 3; }
             fn main() { return used(14); }",
        );
        image.strip();
        let inferred = infer(&image, &mut no_dispatch);
        let s = inferred.stats;
        assert_eq!(s.words, (image.text.len() / 4) as u32);
        assert!(s.valid <= s.words);
        assert!(s.reached <= s.words);
        assert!(s.iterations >= 1);
        assert!(s.facts > 0);
        // data ranges are sorted, coalesced, word-aligned, in text.
        for w in inferred.data.windows(2) {
            assert!(w[0].1 <= w[1].0, "data ranges overlap or misordered");
        }
        for &(lo, hi) in &inferred.data {
            assert!(lo < hi && lo % 4 == 0 && hi % 4 == 0);
            assert!(image.in_text(lo));
        }
    }

    #[test]
    fn dispatch_resolver_feeds_targets_back_and_tables_become_data() {
        // A switch compiles to an indirect jump through an in-text
        // dispatch table; without the resolver those case blocks are
        // reachable only through it.
        let mut image = compile(
            "fn pick(k) {
               switch (k) {
                 case 0: { return 10; }
                 case 1: { return 20; }
                 case 2: { return 30; }
                 case 3: { return 40; }
                 default: { return 0; }
               }
             }
             fn main() { var i; var t = 0;
               for (i = 0; i < 4; i = i + 1) { t = t + pick(i); }
               return t; }",
        );
        image.strip();
        let blind = infer(&image, &mut no_dispatch);
        // Fake resolver: every indirect jump "resolves" to the branch
        // targets recorded... instead, drive it with a real jump: it
        // must at least be *consulted*.
        let mut consulted = Vec::new();
        let mut spy = |extent: (u32, u32), addr: u32, insn: eel_isa::Insn| {
            assert!(matches!(insn.op, eel_isa::Op::Jmpl { .. }));
            assert!(addr >= extent.0 && addr < extent.1);
            consulted.push(addr);
            ResolvedDispatch::default()
        };
        let _ = infer(&image, &mut spy);
        assert!(
            !consulted.is_empty(),
            "the sweep never consulted the dispatch resolver"
        );
        // A resolver that answers with a (synthetic) table classifies
        // the slots as data and reaches the given target.
        let jump = consulted[0];
        let target = blind
            .starts
            .first()
            .map(|s| s.addr)
            .expect("some start exists");
        let table = (jump + 8, jump + 16);
        let mut answering = move |_extent: (u32, u32), addr: u32, _insn: eel_isa::Insn| {
            if addr == jump {
                ResolvedDispatch {
                    table: Some(table),
                    targets: vec![target],
                }
            } else {
                ResolvedDispatch::default()
            }
        };
        let resolved = infer(&image, &mut answering);
        assert!(
            resolved
                .data
                .iter()
                .any(|&(lo, hi)| lo <= table.0 && hi >= table.1),
            "dispatch-table slots were not classified as data"
        );
    }

    #[test]
    fn empty_data_and_unstripped_images_still_infer() {
        // Inference does not require strippedness — it is simply what
        // discovery falls back to. Running it on a named image must
        // produce the same starts as on its stripped twin.
        let image = compile("fn main() { return 7; }");
        let mut stripped = image.clone();
        stripped.strip();
        let a = infer(&image, &mut no_dispatch);
        let b = infer(&stripped, &mut no_dispatch);
        assert_eq!(a.start_addrs(), b.start_addrs());
    }
}
