//! Property-based tests for the ISA: encode/decode round trips, decoder
//! totality, and semantic sanity over arbitrary words and operations.

use eel_isa::{decode, encode, AluOp, Cond, Insn, MemWidth, Op, Reg, Src2};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_src2() -> impl Strategy<Value = Src2> {
    prop_oneof![
        arb_reg().prop_map(Src2::Reg),
        (-4096i32..=4095).prop_map(Src2::Imm),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u32..16).prop_map(Cond::from_bits)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, imm22)| Op::Sethi { rd, imm22 }),
        (
            arb_cond(),
            any::<bool>(),
            -(1i32 << 21)..(1 << 21),
            any::<bool>()
        )
            .prop_map(|(cond, annul, disp22, fp)| Op::Branch {
                cond,
                annul,
                disp22,
                fp
            }),
        (-(1i32 << 29)..(1 << 29)).prop_map(|disp30| Op::Call { disp30 }),
        (
            arb_alu_op(),
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|(op, cc, rd, rs1, src2)| {
                // Normalize to an encodable form: rdy/wry fix operands,
                // cc only where supported.
                let cc = cc && op.supports_cc();
                match op {
                    AluOp::Rdy | AluOp::Rdpsr => Op::Alu {
                        op,
                        cc: false,
                        rd,
                        rs1: Reg::G0,
                        src2: Src2::Reg(Reg::G0),
                    },
                    AluOp::Wry | AluOp::Wrpsr => Op::Alu {
                        op,
                        cc: false,
                        rd: Reg::G0,
                        rs1,
                        src2,
                    },
                    _ => Op::Alu {
                        op,
                        cc,
                        rd,
                        rs1,
                        src2,
                    },
                }
            }),
        (arb_reg(), arb_reg(), arb_src2()).prop_map(|(rd, rs1, src2)| Op::Jmpl { rd, rs1, src2 }),
        (
            prop::sample::select(vec![
                (MemWidth::Byte, false),
                (MemWidth::Byte, true),
                (MemWidth::Half, false),
                (MemWidth::Half, true),
                (MemWidth::Word, false),
                (MemWidth::Double, false),
            ]),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|((width, signed), rd, rs1, src2)| {
                let rd = if width == MemWidth::Double {
                    Reg(rd.0 & !1)
                } else {
                    rd
                };
                Op::Load {
                    width,
                    signed,
                    rd,
                    rs1,
                    src2,
                    fp: false,
                }
            }),
        (
            prop::sample::select(vec![
                MemWidth::Byte,
                MemWidth::Half,
                MemWidth::Word,
                MemWidth::Double
            ]),
            arb_reg(),
            arb_reg(),
            arb_src2()
        )
            .prop_map(|(width, rd, rs1, src2)| {
                let rd = if width == MemWidth::Double {
                    Reg(rd.0 & !1)
                } else {
                    rd
                };
                Op::Store {
                    width,
                    rd,
                    rs1,
                    src2,
                    fp: false,
                }
            }),
        (arb_cond(), arb_reg(), arb_src2()).prop_map(|(cond, rs1, src2)| Op::Trap {
            cond,
            rs1,
            src2
        }),
        (0u32..(1 << 22)).prop_map(|const22| Op::Unimp { const22 }),
    ]
}

proptest! {
    /// encode ∘ decode = id on every encodable operation.
    #[test]
    fn encode_decode_round_trip(op in arb_op()) {
        let word = encode(&op);
        let decoded = decode(word);
        prop_assert_eq!(decoded.op, op);
        prop_assert_eq!(decoded.word, word);
    }

    /// The decoder is total and decode ∘ encode = id on valid decodes:
    /// re-encoding whatever a word decodes to yields the same word.
    #[test]
    fn decode_encode_stability(word in any::<u32>()) {
        let insn = decode(word);
        if !matches!(insn.op, Op::Invalid) {
            prop_assert_eq!(encode(&insn.op), word);
        }
    }

    /// Disassembly never panics and is never empty (C-DEBUG-NONEMPTY analog).
    #[test]
    fn disasm_total(word in any::<u32>()) {
        let text = decode(word).to_string();
        prop_assert!(!text.is_empty());
    }

    /// reads()/writes() never report %g0 and never panic.
    #[test]
    fn dataflow_never_reports_g0(word in any::<u32>()) {
        let insn = decode(word);
        prop_assert!(!insn.reads().contains(Reg::G0));
        prop_assert!(!insn.writes().contains(Reg::G0));
        prop_assert!(!insn.address_reads().contains(Reg::G0));
    }

    /// A condition and its negation partition every flag state.
    #[test]
    fn cond_negation_partitions(cond in arb_cond(), flags in 0u8..16) {
        prop_assert_ne!(
            eel_isa::eval_cond(cond, flags),
            eel_isa::eval_cond(cond.negate(), flags)
        );
    }

    /// Direct targets are consistent with displacement arithmetic.
    #[test]
    fn direct_target_arithmetic(disp in -(1i32 << 21)..(1 << 21), pc in 0u32..0x0fff_ffff) {
        let pc = pc & !3;
        let insn = Insn::from_word(encode(&Op::Branch {
            cond: Cond::Always, annul: false, disp22: disp, fp: false,
        }));
        let target = insn.direct_target(pc).unwrap();
        prop_assert_eq!(target.wrapping_sub(pc) as i32 >> 2, disp);
    }
}
