//! Machine-independent instruction categories and inquiries (paper §3.4).
//!
//! EEL divides instructions into functional categories — memory references,
//! control transfers (calls, returns, system calls, jumps, branches),
//! computations, and invalid (data) — and provides inquiries about an
//! instruction's effect on program state: which registers it reads and
//! writes, how it changes the program counter, what it operates on. Tools
//! analyze these categories instead of raw machine instructions.

use crate::insn::{AluOp, Cond, Insn, MemWidth, Op, Src2};
use crate::reg::{Reg, RegSet};

/// How an indirect `jmpl` is being used. SPARC overloads one opcode for
/// three roles; the paper's Figure 6 shows spawn-generated code resolving
/// exactly this overloading.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JumpKind {
    /// `jmpl ..., %o7` — an indirect subroutine call.
    IndirectCall,
    /// `jmpl %i7+8, %g0` or `jmpl %o7+8, %g0` — a subroutine return.
    Return,
    /// `jmpl` through a register that a dispatch table or literal feeds —
    /// the general indirect jump (case statements, tail calls).
    IndirectJump,
}

/// EEL's machine-independent instruction category (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Direct (PC-relative) call.
    Call,
    /// Indirect call through a register.
    IndirectCall,
    /// Subroutine return.
    Return,
    /// Unconditional direct jump (`ba` used as goto is still `Branch`;
    /// this category is for indirect jumps).
    IndirectJump,
    /// Conditional (or always/never) PC-relative branch.
    Branch,
    /// System call (conditional trap).
    SystemCall,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Plain computation (ALU, sethi).
    Computation,
    /// No defined semantics — data masquerading as code.
    Invalid,
}

impl Insn {
    /// The machine-independent category of this instruction.
    ///
    /// ```
    /// use eel_isa::{Builder, Category, Reg, Src2};
    /// assert_eq!(Builder::retl().category(), Category::Return);
    /// assert_eq!(Builder::nop().category(), Category::Computation);
    /// assert_eq!(
    ///     Builder::jmpl(Reg::O7, Reg(9), Src2::Imm(0)).category(),
    ///     Category::IndirectCall
    /// );
    /// ```
    pub fn category(&self) -> Category {
        match self.op {
            Op::Call { .. } => Category::Call,
            Op::Branch { .. } => Category::Branch,
            Op::Jmpl { .. } => match self.jump_kind() {
                Some(JumpKind::IndirectCall) => Category::IndirectCall,
                Some(JumpKind::Return) => Category::Return,
                _ => Category::IndirectJump,
            },
            Op::Load { .. } => Category::Load,
            Op::Store { .. } => Category::Store,
            Op::Trap { .. } => Category::SystemCall,
            Op::Alu { .. } | Op::Sethi { .. } => Category::Computation,
            Op::Unimp { .. } | Op::Invalid => Category::Invalid,
        }
    }

    /// Resolves the overloaded uses of `jmpl` (Figure 6): indirect call,
    /// return, or general indirect jump. `None` for non-`jmpl`.
    pub fn jump_kind(&self) -> Option<JumpKind> {
        let Op::Jmpl { rd, rs1, src2 } = self.op else {
            return None;
        };
        if rd == Reg::O7 {
            Some(JumpKind::IndirectCall)
        } else if rd == Reg::G0 && (rs1 == Reg::O7 || rs1 == Reg::I7) && src2 == Src2::Imm(8) {
            Some(JumpKind::Return)
        } else {
            Some(JumpKind::IndirectJump)
        }
    }

    /// Is this any control-transfer instruction?
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self.category(),
            Category::Call
                | Category::IndirectCall
                | Category::Return
                | Category::IndirectJump
                | Category::Branch
        )
    }

    /// Is this a memory reference (load or store)?
    pub fn is_memory(&self) -> bool {
        matches!(self.op, Op::Load { .. } | Op::Store { .. })
    }

    /// Width in bytes of the memory access, if any — the spawn `{{WIDTH}}`
    /// attribute.
    pub fn mem_width(&self) -> Option<u32> {
        match self.op {
            Op::Load { width, .. } | Op::Store { width, .. } => Some(width.bytes()),
            _ => None,
        }
    }

    /// The register resources this instruction reads.
    ///
    /// Conservative and complete: includes `icc` for conditional branches
    /// and traps, the stored value for stores, `%y` for divides, and the
    /// syscall argument registers for `ta` (the kernel reads them).
    /// `%g0` is never reported (reading it yields no dataflow).
    pub fn reads(&self) -> RegSet {
        fn rr(s: &mut RegSet, r: Reg) {
            if r != Reg::G0 {
                s.insert(r);
            }
        }
        fn read_src2(s: &mut RegSet, src2: Src2) {
            if let Src2::Reg(r) = src2 {
                rr(s, r);
            }
        }
        let mut s = RegSet::new();
        match self.op {
            Op::Sethi { .. } | Op::Call { .. } | Op::Unimp { .. } | Op::Invalid => {}
            Op::Branch { cond, fp, .. } => {
                if cond != Cond::Always && cond != Cond::Never && !fp {
                    s.insert(Reg::ICC);
                }
            }
            Op::Alu {
                op,
                rd: _,
                rs1,
                src2,
                ..
            } => match op {
                AluOp::Rdy => s.insert(Reg::Y),
                AluOp::Rdpsr => s.insert(Reg::ICC),
                _ => {
                    rr(&mut s, rs1);
                    read_src2(&mut s, src2);
                    if matches!(op, AluOp::Udiv | AluOp::Sdiv) {
                        s.insert(Reg::Y);
                    }
                }
            },
            Op::Jmpl { rs1, src2, .. } => {
                rr(&mut s, rs1);
                read_src2(&mut s, src2);
            }
            Op::Load { rs1, src2, .. } => {
                rr(&mut s, rs1);
                read_src2(&mut s, src2);
            }
            Op::Store {
                width,
                rd,
                rs1,
                src2,
                fp,
            } => {
                rr(&mut s, rs1);
                read_src2(&mut s, src2);
                if !fp {
                    rr(&mut s, rd);
                    if width == MemWidth::Double {
                        rr(&mut s, Reg(rd.0 | 1));
                    }
                }
            }
            Op::Trap { cond, rs1, src2 } => {
                if cond != Cond::Always && cond != Cond::Never {
                    s.insert(Reg::ICC);
                }
                rr(&mut s, rs1);
                read_src2(&mut s, src2);
                // System-call convention: number in %g1, arguments in
                // %o0–%o5; the kernel observes them, so they are live here.
                s.insert(Reg::G1);
                for i in 8..14 {
                    s.insert(Reg(i));
                }
            }
        }
        s
    }

    /// The register resources this instruction writes.
    ///
    /// Includes `icc` for `cc`-variants, `%y` for multiplies, the link
    /// register for calls and linking `jmpl`s, and the kernel-clobbered
    /// result registers for system calls. Writes to `%g0` are discarded by
    /// hardware and never reported.
    pub fn writes(&self) -> RegSet {
        fn wr(s: &mut RegSet, r: Reg) {
            if r != Reg::G0 {
                s.insert(r);
            }
        }
        let mut s = RegSet::new();
        match self.op {
            Op::Sethi { rd, .. } => wr(&mut s, rd),
            Op::Branch { .. } | Op::Unimp { .. } | Op::Invalid => {}
            Op::Call { .. } => wr(&mut s, Reg::O7),
            Op::Alu { op, cc, rd, .. } => {
                match op {
                    AluOp::Wry => s.insert(Reg::Y),
                    AluOp::Wrpsr => {
                        s.insert(Reg::ICC);
                    }
                    _ => {
                        wr(&mut s, rd);
                        if matches!(op, AluOp::Umul | AluOp::Smul) {
                            s.insert(Reg::Y);
                        }
                    }
                }
                if cc {
                    s.insert(Reg::ICC);
                }
            }
            Op::Jmpl { rd, .. } => wr(&mut s, rd),
            Op::Load { width, rd, fp, .. } => {
                if !fp {
                    wr(&mut s, rd);
                    if width == MemWidth::Double {
                        wr(&mut s, Reg(rd.0 | 1));
                    }
                }
            }
            Op::Store { .. } => {}
            Op::Trap { .. } => {
                // Kernel returns results in %o0/%o1 and may clobber %g1.
                s.insert(Reg::O0);
                s.insert(Reg(9));
                s.insert(Reg::G1);
            }
        }
        s
    }

    /// Registers read to *form an address* (the base/offset of a memory
    /// reference or indirect jump). Empty for other instructions. This is
    /// the seed set for the paper's backward address slice (Figure 4).
    pub fn address_reads(&self) -> RegSet {
        match self.op {
            Op::Load { rs1, src2, .. }
            | Op::Store { rs1, src2, .. }
            | Op::Jmpl { rs1, src2, .. } => {
                let mut s = RegSet::new();
                if rs1 != Reg::G0 {
                    s.insert(rs1);
                }
                if let Src2::Reg(r) = src2 {
                    if r != Reg::G0 {
                        s.insert(r);
                    }
                }
                s
            }
            _ => RegSet::new(),
        }
    }

    /// Does this instruction read any floating-point state? (Our subset
    /// confines FP to `ldf`/`stf`/`fb*`; the slicer refuses to trace
    /// through FP, as in Figure 4's `mark_as_impossible`.)
    pub fn reads_fp(&self) -> bool {
        match self.op {
            Op::Branch { fp, .. } => fp,
            Op::Store { fp, .. } => fp,
            _ => false,
        }
    }

    /// Can the instruction fall through to the next sequential instruction?
    /// (`ba`/`call`/`jmpl` cannot, apart from their delay slot; see
    /// `eel-core`'s CFG builder for how delay slots are handled.)
    pub fn falls_through(&self) -> bool {
        match self.op {
            Op::Branch {
                cond: Cond::Always, ..
            } => false,
            Op::Jmpl { .. } => false,
            // A call returns (we treat it as falling through past the call,
            // as EEL's intraprocedural CFGs do via call surrogate blocks).
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Builder;
    use crate::Op;

    #[test]
    fn categories() {
        assert_eq!(Builder::call(4).category(), Category::Call);
        assert_eq!(Builder::ba(4).category(), Category::Branch);
        assert_eq!(Builder::retl().category(), Category::Return);
        assert_eq!(Builder::ta(Src2::Imm(0)).category(), Category::SystemCall);
        assert_eq!(
            Builder::ld(Reg(8), Reg::SP, Src2::Imm(0)).category(),
            Category::Load
        );
        assert_eq!(
            Builder::st(Reg(8), Reg::SP, Src2::Imm(0)).category(),
            Category::Store
        );
        assert_eq!(
            Builder::jmpl(Reg::G0, Reg(9), Src2::Imm(0)).category(),
            Category::IndirectJump
        );
        assert_eq!(crate::decode(0xffffffff).category(), Category::Invalid);
    }

    #[test]
    fn jmpl_overloads() {
        // ret = jmpl %i7 + 8, %g0
        let ret = Builder::jmpl(Reg::G0, Reg::I7, Src2::Imm(8));
        assert_eq!(ret.jump_kind(), Some(JumpKind::Return));
        assert_eq!(Builder::retl().jump_kind(), Some(JumpKind::Return));
        // Indirect call links through %o7.
        let icall = Builder::jmpl(Reg::O7, Reg(9), Src2::Imm(0));
        assert_eq!(icall.jump_kind(), Some(JumpKind::IndirectCall));
        // jmpl %o7 + 12 is NOT a return (wrong offset).
        let notret = Builder::jmpl(Reg::G0, Reg::O7, Src2::Imm(12));
        assert_eq!(notret.jump_kind(), Some(JumpKind::IndirectJump));
        assert_eq!(Builder::nop().jump_kind(), None);
    }

    #[test]
    fn reads_writes_alu() {
        let i = Builder::alu(AluOp::Add, true, Reg(9), Reg(10), Src2::Reg(Reg(11)));
        assert_eq!(i.reads(), RegSet::of(&[Reg(10), Reg(11)]));
        assert_eq!(i.writes(), RegSet::of(&[Reg(9), Reg::ICC]));
    }

    #[test]
    fn g0_never_appears_in_dataflow() {
        let i = Builder::mov(Reg(9), Src2::Imm(1)); // or %g0, 1, %o1
        assert!(i.reads().is_empty());
        let z = Builder::add(Reg::G0, Reg(9), Src2::Imm(0));
        assert!(z.writes().is_empty());
    }

    #[test]
    fn store_reads_its_source() {
        let i = Builder::st(Reg(8), Reg::SP, Src2::Imm(4));
        assert!(i.reads().contains(Reg(8)));
        assert!(i.reads().contains(Reg::SP));
        assert!(i.writes().is_empty());
    }

    #[test]
    fn std_reads_register_pair() {
        let i = Builder::store(MemWidth::Double, Reg(16), Reg::SP, Src2::Imm(0));
        assert!(i.reads().contains(Reg(16)));
        assert!(i.reads().contains(Reg(17)));
    }

    #[test]
    fn ldd_writes_register_pair() {
        let i = Builder::load(MemWidth::Double, false, Reg(16), Reg::SP, Src2::Imm(0));
        assert!(i.writes().contains(Reg(16)));
        assert!(i.writes().contains(Reg(17)));
    }

    #[test]
    fn conditional_branch_reads_icc_but_ba_does_not() {
        let bne = Builder::branch(Cond::Ne, false, 4);
        assert!(bne.reads().contains(Reg::ICC));
        let ba = Builder::ba(4);
        assert!(ba.reads().is_empty());
    }

    #[test]
    fn call_writes_link() {
        assert!(Builder::call(4).writes().contains(Reg::O7));
    }

    #[test]
    fn syscall_reads_convention_registers() {
        let t = Builder::ta(Src2::Imm(0));
        assert!(t.reads().contains(Reg::G1));
        assert!(t.reads().contains(Reg::O0));
        assert!(t.writes().contains(Reg::O0));
    }

    #[test]
    fn mul_div_touch_y() {
        let m = Builder::alu(AluOp::Umul, false, Reg(9), Reg(10), Src2::Imm(3));
        assert!(m.writes().contains(Reg::Y));
        let d = Builder::alu(AluOp::Sdiv, false, Reg(9), Reg(10), Src2::Imm(3));
        assert!(d.reads().contains(Reg::Y));
    }

    #[test]
    fn address_reads_isolates_address_operands() {
        let i = Builder::st(Reg(8), Reg(20), Src2::Reg(Reg(21)));
        assert_eq!(i.address_reads(), RegSet::of(&[Reg(20), Reg(21)]));
        // The stored value is NOT part of the address.
        assert!(!i.address_reads().contains(Reg(8)));
        assert!(Builder::nop().address_reads().is_empty());
    }

    #[test]
    fn fall_through() {
        assert!(!Builder::ba(4).falls_through());
        assert!(!Builder::retl().falls_through());
        assert!(Builder::branch(Cond::Ne, false, 4).falls_through());
        assert!(Builder::call(4).falls_through());
        assert!(Builder::nop().falls_through());
    }

    #[test]
    fn fp_branch_reads_no_icc_but_reads_fp() {
        let w = crate::encode(&Op::Branch {
            cond: Cond::Eq,
            annul: false,
            disp22: 4,
            fp: true,
        });
        let i = crate::decode(w);
        assert!(!i.reads().contains(Reg::ICC));
        assert!(i.reads_fp());
    }
}
