//! Disassembly: `Display` for [`Insn`], in SPARC assembler syntax.
//!
//! The output round-trips through `eel-asm`'s parser (a property-tested
//! invariant over in `eel-asm`), with PC-relative targets printed as
//! `.+N`/`.-N` word offsets.

use crate::insn::{AluOp, Insn, MemWidth, Op, Src2};
use crate::reg::Reg;
use std::fmt;

fn fmt_addr(f: &mut fmt::Formatter<'_>, rs1: Reg, src2: Src2) -> fmt::Result {
    // Only the zero-immediate form may be abbreviated: register operands
    // (even %g0) must print in full so reassembly reproduces the exact
    // encoding (the i bit and operand roles).
    match src2 {
        Src2::Reg(r) => write!(f, "[{rs1} + {r}]"),
        Src2::Imm(0) => write!(f, "[{rs1}]"),
        Src2::Imm(v) if v < 0 => write!(f, "[{rs1} - {}]", -(v as i64)),
        Src2::Imm(v) => write!(f, "[{rs1} + {v}]"),
    }
}

fn fmt_disp(f: &mut fmt::Formatter<'_>, disp: i32) -> fmt::Result {
    if disp < 0 {
        write!(f, ".-{}", -(disp as i64) * 4)
    } else {
        write!(f, ".+{}", (disp as i64) * 4)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Sethi {
                rd: Reg::G0,
                imm22: 0,
            } => write!(f, "nop"),
            Op::Sethi { rd, imm22 } => write!(f, "sethi {:#x}, {rd}", imm22),
            Op::Branch {
                cond,
                annul,
                disp22,
                fp,
            } => {
                let prefix = if fp { "fb" } else { "b" };
                write!(
                    f,
                    "{prefix}{}{} ",
                    cond.suffix(),
                    if annul { ",a" } else { "" }
                )?;
                fmt_disp(f, disp22)
            }
            Op::Call { disp30 } => {
                write!(f, "call ")?;
                fmt_disp(f, disp30)
            }
            Op::Alu {
                op,
                cc,
                rd,
                rs1,
                src2,
            } => match op {
                AluOp::Rdy => write!(f, "rd %y, {rd}"),
                AluOp::Rdpsr => write!(f, "rd %psr, {rd}"),
                AluOp::Wry => write!(f, "wr {rs1}, {src2}, %y"),
                AluOp::Wrpsr => write!(f, "wr {rs1}, {src2}, %psr"),
                // Synthetic forms the assembler understands.
                AluOp::Or if !cc && rs1 == Reg::G0 => write!(f, "mov {src2}, {rd}"),
                AluOp::Sub if cc && rd == Reg::G0 => write!(f, "cmp {rs1}, {src2}"),
                _ => write!(
                    f,
                    "{}{} {rs1}, {src2}, {rd}",
                    op.mnemonic(),
                    if cc { "cc" } else { "" }
                ),
            },
            Op::Jmpl { rd, rs1, src2 } => {
                if rd == Reg::G0 && rs1 == Reg::O7 && src2 == Src2::Imm(8) {
                    write!(f, "retl")
                } else if rd == Reg::G0 && rs1 == Reg::I7 && src2 == Src2::Imm(8) {
                    write!(f, "ret")
                } else {
                    match src2 {
                        Src2::Imm(0) => write!(f, "jmpl {rs1}, {rd}"),
                        _ => write!(f, "jmpl {rs1} + {src2}, {rd}"),
                    }
                }
            }
            Op::Load {
                width,
                signed,
                rd,
                rs1,
                src2,
                fp,
            } => {
                let mnem = match (width, signed, fp) {
                    (MemWidth::Word, _, true) => "ldf",
                    (MemWidth::Word, _, false) => "ld",
                    (MemWidth::Byte, false, _) => "ldub",
                    (MemWidth::Byte, true, _) => "ldsb",
                    (MemWidth::Half, false, _) => "lduh",
                    (MemWidth::Half, true, _) => "ldsh",
                    (MemWidth::Double, _, _) => "ldd",
                };
                write!(f, "{mnem} ")?;
                fmt_addr(f, rs1, src2)?;
                write!(f, ", {rd}")
            }
            Op::Store {
                width,
                rd,
                rs1,
                src2,
                fp,
            } => {
                let mnem = match (width, fp) {
                    (MemWidth::Word, true) => "stf",
                    (MemWidth::Word, false) => "st",
                    (MemWidth::Byte, _) => "stb",
                    (MemWidth::Half, _) => "sth",
                    (MemWidth::Double, _) => "std",
                };
                write!(f, "{mnem} {rd}, ")?;
                fmt_addr(f, rs1, src2)
            }
            Op::Trap { cond, rs1, src2 } => {
                write!(f, "t{} ", cond.suffix())?;
                match (rs1, src2) {
                    // Immediate-only form prints bare; anything involving
                    // a register prints the full `rs1 + src2` form so the
                    // assembler reconstructs the exact encoding.
                    (Reg::G0, Src2::Imm(_)) => write!(f, "{src2}"),
                    _ => write!(f, "{rs1} + {src2}"),
                }
            }
            Op::Unimp { const22 } => write!(f, "unimp {const22:#x}"),
            Op::Invalid => write!(f, ".word {:#010x}", self.word),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Builder;
    use crate::insn::Cond;

    #[test]
    fn representative_disassembly() {
        assert_eq!(Builder::nop().to_string(), "nop");
        assert_eq!(Builder::mov(Reg(9), Src2::Imm(7)).to_string(), "mov 7, %o1");
        assert_eq!(
            Builder::cmp(Reg(16), Src2::Imm(0)).to_string(),
            "cmp %l0, 0"
        );
        assert_eq!(
            Builder::add(Reg(17), Reg(16), Src2::Reg(Reg(18))).to_string(),
            "add %l0, %l2, %l1"
        );
        assert_eq!(Builder::branch(Cond::Ne, true, 4).to_string(), "bne,a .+16");
        assert_eq!(Builder::ba(-2).to_string(), "ba .-8");
        assert_eq!(Builder::retl().to_string(), "retl");
        assert_eq!(
            Builder::ld(Reg(8), Reg::SP, Src2::Imm(64)).to_string(),
            "ld [%sp + 64], %o0"
        );
        assert_eq!(
            Builder::st(Reg(8), Reg::SP, Src2::Imm(-4)).to_string(),
            "st %o0, [%sp - 4]"
        );
        assert_eq!(Builder::ta(Src2::Imm(0)).to_string(), "ta 0");
        assert_eq!(Builder::call(2).to_string(), "call .+8");
        assert_eq!(
            Builder::jmpl(Reg::G0, Reg(9), Src2::Imm(0)).to_string(),
            "jmpl %o1, %g0"
        );
        assert_eq!(crate::decode(0xffffffff).to_string(), ".word 0xffffffff");
    }

    #[test]
    fn sethi_prints_immediate() {
        let i = Builder::sethi_hi(Reg(6), 0x12345678);
        assert_eq!(
            i.to_string(),
            format!("sethi {:#x}, %g6", 0x12345678u32 >> 10)
        );
    }

    #[test]
    fn zero_offset_address_omits_offset() {
        assert_eq!(
            Builder::ld(Reg(8), Reg(9), Src2::Imm(0)).to_string(),
            "ld [%o1], %o0"
        );
        assert_eq!(
            Builder::ld(Reg(8), Reg(9), Src2::Reg(Reg::G0)).to_string(),
            "ld [%o1 + %g0], %o0"
        );
    }

    #[test]
    fn register_indexed_address() {
        assert_eq!(
            Builder::ld(Reg(8), Reg(9), Src2::Reg(Reg(10))).to_string(),
            "ld [%o1 + %o2], %o0"
        );
    }
}
