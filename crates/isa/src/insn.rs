//! Decoded instruction representation.
//!
//! [`Insn`] pairs the raw 32-bit word with a structured [`Op`]. The `Op`
//! variants correspond to SPARC V8 instruction formats; classification into
//! EEL's machine-independent *categories* (call / jump / branch / load /
//! store / computation / invalid, §3.4 of the paper) lives in
//! [`crate::class`].

use crate::reg::Reg;
use std::fmt;

/// Branch / trap condition over the integer condition codes.
///
/// The discriminants are the 4-bit `cond` field encodings from the SPARC V8
/// manual (and from the `cond=[0..15]` matrix in the paper's Figure 7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// `bn` — never.
    Never = 0,
    /// `be` — equal (Z).
    Eq = 1,
    /// `ble` — less or equal, signed (Z or (N xor V)).
    Le = 2,
    /// `bl` — less, signed (N xor V).
    Lt = 3,
    /// `bleu` — less or equal, unsigned (C or Z).
    Leu = 4,
    /// `bcs` / `blu` — carry set (C).
    CarrySet = 5,
    /// `bneg` — negative (N).
    Neg = 6,
    /// `bvs` — overflow set (V).
    OverflowSet = 7,
    /// `ba` — always.
    Always = 8,
    /// `bne` — not equal (not Z).
    Ne = 9,
    /// `bg` — greater, signed.
    Gt = 10,
    /// `bge` — greater or equal, signed.
    Ge = 11,
    /// `bgu` — greater, unsigned.
    Gtu = 12,
    /// `bcc` / `bgeu` — carry clear (not C).
    CarryClear = 13,
    /// `bpos` — positive (not N).
    Pos = 14,
    /// `bvc` — overflow clear (not V).
    OverflowClear = 15,
}

impl Cond {
    /// All sixteen conditions in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Never,
        Cond::Eq,
        Cond::Le,
        Cond::Lt,
        Cond::Leu,
        Cond::CarrySet,
        Cond::Neg,
        Cond::OverflowSet,
        Cond::Always,
        Cond::Ne,
        Cond::Gt,
        Cond::Ge,
        Cond::Gtu,
        Cond::CarryClear,
        Cond::Pos,
        Cond::OverflowClear,
    ];

    /// Decodes a 4-bit `cond` field.
    pub fn from_bits(bits: u32) -> Cond {
        Cond::ALL[(bits & 0xf) as usize]
    }

    /// The 4-bit encoding.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> Cond {
        // The SPARC encoding pairs each condition with its complement by
        // flipping bit 3.
        Cond::from_bits(self.bits() ^ 0b1000)
    }

    /// Branch mnemonic suffix (`ne`, `e`, `g`, ... as in `bne`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Never => "n",
            Cond::Eq => "e",
            Cond::Le => "le",
            Cond::Lt => "l",
            Cond::Leu => "leu",
            Cond::CarrySet => "cs",
            Cond::Neg => "neg",
            Cond::OverflowSet => "vs",
            Cond::Always => "a",
            Cond::Ne => "ne",
            Cond::Gt => "g",
            Cond::Ge => "ge",
            Cond::Gtu => "gu",
            Cond::CarryClear => "cc",
            Cond::Pos => "pos",
            Cond::OverflowClear => "vc",
        }
    }
}

/// Arithmetic / logic / shift operations (format-3, `op=10`).
///
/// The discriminants are the 6-bit `op3` field values *without* the `cc`
/// bit: the condition-code-setting variants (`addcc`, ...) set bit 4 of
/// `op3` and are represented by `cc: true` on [`Op::Alu`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AluOp {
    /// Integer add.
    Add = 0b000000,
    /// Bitwise and.
    And = 0b000001,
    /// Bitwise or. `or %g0, x, rd` is the canonical `mov`.
    Or = 0b000010,
    /// Bitwise exclusive or.
    Xor = 0b000011,
    /// Integer subtract. `subcc` is the canonical compare.
    Sub = 0b000100,
    /// And-not (`rs1 & !src2`).
    Andn = 0b000101,
    /// Or-not.
    Orn = 0b000110,
    /// Exclusive-nor.
    Xnor = 0b000111,
    /// Unsigned multiply (low 32 bits to `rd`, high 32 to `%y`).
    Umul = 0b001010,
    /// Signed multiply.
    Smul = 0b001011,
    /// Unsigned divide (`%y:rs1 / src2`; we model the 32-bit quotient).
    Udiv = 0b001110,
    /// Signed divide.
    Sdiv = 0b001111,
    /// Shift left logical (by low 5 bits of src2).
    Sll = 0b100101,
    /// Shift right logical.
    Srl = 0b100110,
    /// Shift right arithmetic.
    Sra = 0b100111,
    /// Read `%y` into `rd` (`rd %y, rd`).
    Rdy = 0b101000,
    /// Read the processor state register (condition codes in bits 20–23)
    /// into `rd`. Unprivileged here so tools can save `icc`.
    Rdpsr = 0b101001,
    /// Write `rs1 ^ src2` to `%y`.
    Wry = 0b110000,
    /// Write `rs1 ^ src2` into the PSR (condition codes from bits 20–23).
    Wrpsr = 0b110001,
    /// Register-window save; modeled as `add` on a flat register file.
    Save = 0b111100,
    /// Register-window restore; modeled as `add`.
    Restore = 0b111101,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 21] = [
        AluOp::Add,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sub,
        AluOp::Andn,
        AluOp::Orn,
        AluOp::Xnor,
        AluOp::Umul,
        AluOp::Smul,
        AluOp::Udiv,
        AluOp::Sdiv,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Rdy,
        AluOp::Rdpsr,
        AluOp::Wry,
        AluOp::Wrpsr,
        AluOp::Save,
        AluOp::Restore,
    ];

    /// Mnemonic without any `cc` suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sub => "sub",
            AluOp::Andn => "andn",
            AluOp::Orn => "orn",
            AluOp::Xnor => "xnor",
            AluOp::Umul => "umul",
            AluOp::Smul => "smul",
            AluOp::Udiv => "udiv",
            AluOp::Sdiv => "sdiv",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Rdy => "rd",
            AluOp::Rdpsr => "rd",
            AluOp::Wry => "wr",
            AluOp::Wrpsr => "wr",
            AluOp::Save => "save",
            AluOp::Restore => "restore",
        }
    }

    /// May this op also be encoded with the `cc` bit (setting `icc`)?
    pub fn supports_cc(self) -> bool {
        matches!(
            self,
            AluOp::Add
                | AluOp::And
                | AluOp::Or
                | AluOp::Xor
                | AluOp::Sub
                | AluOp::Andn
                | AluOp::Orn
                | AluOp::Xnor
                | AluOp::Umul
                | AluOp::Smul
                | AluOp::Udiv
                | AluOp::Sdiv
        )
    }
}

/// Memory access width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes (halfword).
    Half,
    /// Four bytes (word).
    Word,
    /// Eight bytes (doubleword: register pair `rd`, `rd|1`).
    Double,
}

impl MemWidth {
    /// Access size in bytes — the `{{WIDTH}}` spawn annotation of Figure 6.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// The second ALU / address operand: a register or a 13-bit signed
/// immediate, selected by the `i` bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src2 {
    /// Register operand (`i = 0`).
    Reg(Reg),
    /// Sign-extended 13-bit immediate (`i = 1`).
    Imm(i32),
}

impl Src2 {
    /// The immediate value, if this operand is one.
    pub fn imm(self) -> Option<i32> {
        match self {
            Src2::Imm(v) => Some(v),
            Src2::Reg(_) => None,
        }
    }

    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Src2::Reg(r) => Some(r),
            Src2::Imm(_) => None,
        }
    }

    /// Does a 32-bit value fit in the 13-bit signed immediate field?
    pub fn fits_simm13(value: i32) -> bool {
        (-4096..=4095).contains(&value)
    }
}

impl fmt::Display for Src2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src2::Reg(r) => write!(f, "{r}"),
            Src2::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A structured SPARC V8 instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `sethi %hi(imm22 << 10), rd`. With `rd = %g0, imm = 0` this is `nop`.
    Sethi {
        /// Destination register.
        rd: Reg,
        /// The 22-bit immediate (shifted left 10 on execution).
        imm22: u32,
    },
    /// Conditional branch on integer (`fp = false`) or floating-point
    /// (`fp = true`) condition codes, PC-relative, delayed, with annul bit.
    Branch {
        /// Condition tested.
        cond: Cond,
        /// Annul bit: if set, the delay slot executes only when the branch
        /// is taken (never, for `ba,a`).
        annul: bool,
        /// Word displacement (sign-extended 22 bits); target is
        /// `pc + 4*disp22`.
        disp22: i32,
        /// True for `fb*` (floating-point condition codes).
        fp: bool,
    },
    /// `call target` — PC-relative delayed call; writes `%o7 = pc`.
    Call {
        /// Word displacement; target is `pc + 4*disp30`.
        disp30: i32,
    },
    /// Arithmetic / logic / shift (format 3, `op = 10`).
    Alu {
        /// Operation.
        op: AluOp,
        /// Whether the `cc` variant was encoded (sets `icc`).
        cc: bool,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source (register or simm13).
        src2: Src2,
    },
    /// `jmpl rs1 + src2, rd` — delayed indirect jump; writes `rd = pc`.
    /// Overloaded as indirect call (`rd = %o7`), return (`jmpl %i7+8, %g0`
    /// or `jmpl %o7+8, %g0`), or plain indirect jump.
    Jmpl {
        /// Link destination (receives the jump instruction's own address).
        rd: Reg,
        /// Base register of the target address.
        rs1: Reg,
        /// Offset register or immediate.
        src2: Src2,
    },
    /// Integer or floating-point load.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend sub-word loads?
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Address base.
        rs1: Reg,
        /// Address offset.
        src2: Src2,
        /// Floating-point register file destination (decode-only; never
        /// emitted by our compiler).
        fp: bool,
    },
    /// Integer or floating-point store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Source register holding the stored value.
        rd: Reg,
        /// Address base.
        rs1: Reg,
        /// Address offset.
        src2: Src2,
        /// Floating-point register file source.
        fp: bool,
    },
    /// `t<cond> rs1 + src2` — conditional trap; the system-call gateway
    /// (`ta 0` with the syscall number in `%g1` by convention).
    Trap {
        /// Trap condition over `icc`.
        cond: Cond,
        /// Trap-number base register.
        rs1: Reg,
        /// Trap-number offset.
        src2: Src2,
    },
    /// `unimp const22` — architecturally defined illegal instruction.
    Unimp {
        /// Payload bits.
        const22: u32,
    },
    /// Any word that matches no defined encoding. EEL's control-flow
    /// analysis uses reachable invalid instructions to detect data in the
    /// text segment (§3.1, §4).
    Invalid,
}

/// A decoded instruction: raw word plus structured operation.
///
/// `Insn` is `Copy` and small; EEL's instruction *objects* (with identity
/// and sharing, §3.4) are built on top of this in `eel-core`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Insn {
    /// The raw 32-bit encoding.
    pub word: u32,
    /// The structured operation.
    pub op: Op,
}

impl Insn {
    /// Decodes a raw word (alias of [`crate::decode`]).
    pub fn from_word(word: u32) -> Insn {
        crate::decode(word)
    }

    /// Does this instruction have a delay slot (delayed control transfer)?
    pub fn is_delayed(&self) -> bool {
        matches!(
            self.op,
            Op::Branch { .. } | Op::Call { .. } | Op::Jmpl { .. }
        )
    }

    /// The PC-relative control-transfer target, if statically known.
    pub fn direct_target(&self, pc: u32) -> Option<u32> {
        match self.op {
            Op::Branch { disp22, .. } => Some(pc.wrapping_add((disp22 as u32) << 2)),
            Op::Call { disp30 } => Some(pc.wrapping_add((disp30 as u32) << 2)),
            _ => None,
        }
    }
}

impl fmt::Debug for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Insn({:#010x}: {})", self.word, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
        assert_eq!(Cond::Always.negate(), Cond::Never);
        assert_eq!(Cond::Eq.negate(), Cond::Ne);
        assert_eq!(Cond::Lt.negate(), Cond::Ge);
        assert_eq!(Cond::Leu.negate(), Cond::Gtu);
    }

    #[test]
    fn cond_bits_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), c);
        }
    }

    #[test]
    fn simm13_bounds() {
        assert!(Src2::fits_simm13(0));
        assert!(Src2::fits_simm13(-4096));
        assert!(Src2::fits_simm13(4095));
        assert!(!Src2::fits_simm13(4096));
        assert!(!Src2::fits_simm13(-4097));
    }

    #[test]
    fn widths() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Double.bytes(), 8);
    }

    #[test]
    fn direct_targets() {
        let b = Insn::from_word(crate::encode(&Op::Branch {
            cond: Cond::Ne,
            annul: false,
            disp22: -2,
            fp: false,
        }));
        assert_eq!(b.direct_target(0x1000), Some(0x1000 - 8));
        let c = Insn::from_word(crate::encode(&Op::Call { disp30: 16 }));
        assert_eq!(c.direct_target(0x1000), Some(0x1040));
    }
}
