//! The handwritten, total instruction decoder.
//!
//! Every 32-bit word decodes to an [`Insn`]; words matching no defined
//! encoding decode to [`Op::Invalid`]. Totality matters: EEL distinguishes
//! data from instructions by noticing when control would reach an invalid
//! instruction (§3.1 stage 4, §4), so the decoder must reliably reject
//! ill-formed words rather than guess.
//!
//! This module plays the role of the paper's 2,268 lines of handwritten
//! architecture-specific C++; the `eel-spawn` crate derives an equivalent
//! decoder from a 145-line machine description and is differentially tested
//! against this one.

use crate::insn::{AluOp, Cond, Insn, MemWidth, Op, Src2};
use crate::reg::Reg;

/// Extracts bits `lo..=hi` of `word` (LSB = bit 0), unshifted to bit 0.
fn field(word: u32, lo: u32, hi: u32) -> u32 {
    (word >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decodes a raw 32-bit word into an [`Insn`]. Total: never fails.
///
/// ```
/// use eel_isa::{decode, Op};
/// assert!(matches!(decode(0x01000000).op, Op::Sethi { .. })); // nop
/// assert!(matches!(decode(0xffffffff).op, Op::Invalid));
/// ```
pub fn decode(word: u32) -> Insn {
    let op = match field(word, 30, 31) {
        0b00 => decode_format2(word),
        0b01 => Op::Call {
            disp30: sext(field(word, 0, 29), 30),
        },
        0b10 => decode_format3_arith(word),
        0b11 => decode_format3_mem(word),
        _ => unreachable!("2-bit field"),
    };
    Insn { word, op }
}

fn decode_format2(word: u32) -> Op {
    let op2 = field(word, 22, 24);
    let rd = field(word, 25, 29);
    match op2 {
        0b100 => Op::Sethi {
            rd: Reg(rd as u8),
            imm22: field(word, 0, 21),
        },
        0b010 | 0b110 => Op::Branch {
            cond: Cond::from_bits(field(word, 25, 28)),
            annul: field(word, 29, 29) != 0,
            disp22: sext(field(word, 0, 21), 22),
            fp: op2 == 0b110,
        },
        0b000 if rd == 0 => Op::Unimp {
            const22: field(word, 0, 21),
        },
        _ => Op::Invalid,
    }
}

/// Decodes the `i`-selected second operand. Returns `None` when the
/// reserved `asi` bits (5–12) are nonzero in register form, which SPARC
/// treats as an undefined encoding; rejecting it keeps the decoder's
/// invalid-detection sharp.
fn decode_src2(word: u32) -> Option<Src2> {
    if field(word, 13, 13) != 0 {
        Some(Src2::Imm(sext(field(word, 0, 12), 13)))
    } else if field(word, 5, 12) == 0 {
        Some(Src2::Reg(Reg(field(word, 0, 4) as u8)))
    } else {
        None
    }
}

fn decode_format3_arith(word: u32) -> Op {
    let op3 = field(word, 19, 24);
    let rd = Reg(field(word, 25, 29) as u8);
    let rs1 = Reg(field(word, 14, 18) as u8);
    let Some(src2) = decode_src2(word) else {
        return Op::Invalid;
    };

    // cc-setting families: bit 4 of op3 distinguishes e.g. add (0b000000)
    // from addcc (0b010000).
    let base = op3 & !0b010000;
    let cc = op3 & 0b010000 != 0;
    let cc_family = matches!(
        base,
        0b000000..=0b000111 | 0b001010 | 0b001011 | 0b001110 | 0b001111
    );
    if cc_family {
        let op = match base {
            0b000000 => AluOp::Add,
            0b000001 => AluOp::And,
            0b000010 => AluOp::Or,
            0b000011 => AluOp::Xor,
            0b000100 => AluOp::Sub,
            0b000101 => AluOp::Andn,
            0b000110 => AluOp::Orn,
            0b000111 => AluOp::Xnor,
            0b001010 => AluOp::Umul,
            0b001011 => AluOp::Smul,
            0b001110 => AluOp::Udiv,
            0b001111 => AluOp::Sdiv,
            _ => unreachable!("filtered by cc_family"),
        };
        return Op::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        };
    }

    match op3 {
        0b100101 => Op::Alu {
            op: AluOp::Sll,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b100110 => Op::Alu {
            op: AluOp::Srl,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b100111 => Op::Alu {
            op: AluOp::Sra,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b111000 => Op::Jmpl { rd, rs1, src2 },
        0b101000 if rs1 == Reg::G0 && src2 == Src2::Reg(Reg::G0) => Op::Alu {
            op: AluOp::Rdy,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b101001 if rs1 == Reg::G0 && src2 == Src2::Reg(Reg::G0) => Op::Alu {
            op: AluOp::Rdpsr,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b110000 if rd == Reg::G0 => Op::Alu {
            op: AluOp::Wry,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b110001 if rd == Reg::G0 => Op::Alu {
            op: AluOp::Wrpsr,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b111010 if field(word, 29, 29) == 0 => Op::Trap {
            cond: Cond::from_bits(field(word, 25, 28)),
            rs1,
            src2,
        },
        0b111100 => Op::Alu {
            op: AluOp::Save,
            cc: false,
            rd,
            rs1,
            src2,
        },
        0b111101 => Op::Alu {
            op: AluOp::Restore,
            cc: false,
            rd,
            rs1,
            src2,
        },
        _ => Op::Invalid,
    }
}

fn decode_format3_mem(word: u32) -> Op {
    let op3 = field(word, 19, 24);
    let rd = Reg(field(word, 25, 29) as u8);
    let rs1 = Reg(field(word, 14, 18) as u8);
    let Some(src2) = decode_src2(word) else {
        return Op::Invalid;
    };

    let load = |width, signed, fp| Op::Load {
        width,
        signed,
        rd,
        rs1,
        src2,
        fp,
    };
    let store = |width, fp| Op::Store {
        width,
        rd,
        rs1,
        src2,
        fp,
    };

    match op3 {
        0b000000 => load(MemWidth::Word, false, false),
        0b000001 => load(MemWidth::Byte, false, false),
        0b000010 => load(MemWidth::Half, false, false),
        // Doubleword transfers require an even register pair.
        0b000011 if rd.0.is_multiple_of(2) => load(MemWidth::Double, false, false),
        0b000100 => store(MemWidth::Word, false),
        0b000101 => store(MemWidth::Byte, false),
        0b000110 => store(MemWidth::Half, false),
        0b000111 if rd.0.is_multiple_of(2) => store(MemWidth::Double, false),
        0b001001 => load(MemWidth::Byte, true, false),
        0b001010 => load(MemWidth::Half, true, false),
        0b100000 => load(MemWidth::Word, false, true),
        0b100100 => store(MemWidth::Word, true),
        _ => Op::Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn nop_is_sethi_zero() {
        let i = decode(0x01000000);
        assert_eq!(
            i.op,
            Op::Sethi {
                rd: Reg::G0,
                imm22: 0
            }
        );
    }

    #[test]
    fn annulled_bne() {
        // From the crate docs: 0x32800004 = bne,a .+16
        let i = decode(0x32800004);
        assert_eq!(
            i.op,
            Op::Branch {
                cond: Cond::Ne,
                annul: true,
                disp22: 4,
                fp: false
            }
        );
    }

    #[test]
    fn backward_branch_sign_extends() {
        let w = encode(&Op::Branch {
            cond: Cond::Always,
            annul: false,
            disp22: -1,
            fp: false,
        });
        match decode(w).op {
            Op::Branch { disp22, .. } => assert_eq!(disp22, -1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_displacement() {
        let w = encode(&Op::Call { disp30: -100 });
        assert_eq!(decode(w).op, Op::Call { disp30: -100 });
    }

    #[test]
    fn reserved_asi_bits_invalidate() {
        // add %g1, %g2, %g3 with a nonzero asi field.
        let good = encode(&Op::Alu {
            op: AluOp::Add,
            cc: false,
            rd: Reg(3),
            rs1: Reg(1),
            src2: Src2::Reg(Reg(2)),
        });
        assert!(matches!(decode(good).op, Op::Alu { .. }));
        let bad = good | (1 << 7);
        assert_eq!(decode(bad).op, Op::Invalid);
    }

    #[test]
    fn odd_ldd_is_invalid() {
        let even = encode(&Op::Load {
            width: MemWidth::Double,
            signed: false,
            rd: Reg(16),
            rs1: Reg::SP,
            src2: Src2::Imm(0),
            fp: false,
        });
        assert!(matches!(
            decode(even).op,
            Op::Load {
                width: MemWidth::Double,
                ..
            }
        ));
        // Force rd odd.
        let odd = (even & !(0x1f << 25)) | (17 << 25);
        assert_eq!(decode(odd).op, Op::Invalid);
    }

    #[test]
    fn trap_always() {
        // ta 0 (software trap, syscall gateway).
        let w = encode(&Op::Trap {
            cond: Cond::Always,
            rs1: Reg::G0,
            src2: Src2::Imm(0),
        });
        assert_eq!(
            decode(w).op,
            Op::Trap {
                cond: Cond::Always,
                rs1: Reg::G0,
                src2: Src2::Imm(0)
            }
        );
    }

    #[test]
    fn unknown_op3_is_invalid() {
        // op=10, op3=0b111111 is undefined in our subset.
        let w = (0b10 << 30) | (0b111111 << 19);
        assert_eq!(decode(w).op, Op::Invalid);
    }

    #[test]
    fn unimp_requires_zero_rd() {
        let w = 0x00000007; // op=0, op2=0, rd=0 -> unimp 7
        assert_eq!(decode(w).op, Op::Unimp { const22: 7 });
        let w_bad_rd = w | (1 << 25);
        assert_eq!(decode(w_bad_rd).op, Op::Invalid);
    }

    #[test]
    fn fp_branch_decodes_as_branch() {
        let w = encode(&Op::Branch {
            cond: Cond::Eq,
            annul: false,
            disp22: 8,
            fp: true,
        });
        match decode(w).op {
            Op::Branch { fp, .. } => assert!(fp),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_alu_op_round_trips_both_operand_forms() {
        for op in AluOp::ALL {
            for src2 in [Src2::Reg(Reg(5)), Src2::Imm(-7)] {
                let rd = if matches!(op, AluOp::Wry | AluOp::Wrpsr) {
                    Reg::G0
                } else {
                    Reg(9)
                };
                let (rs1, s2) = if matches!(op, AluOp::Rdy | AluOp::Rdpsr) {
                    (Reg::G0, Src2::Reg(Reg::G0))
                } else {
                    (Reg(3), src2)
                };
                for cc in [false, true] {
                    if cc && !op.supports_cc() {
                        continue;
                    }
                    let orig = Op::Alu {
                        op,
                        cc,
                        rd,
                        rs1,
                        src2: s2,
                    };
                    assert_eq!(decode(encode(&orig)).op, orig, "{op:?} cc={cc}");
                }
            }
        }
    }
}
