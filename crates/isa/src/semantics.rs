//! Executable instruction semantics.
//!
//! This module gives every instruction an operational meaning: it is the
//! core of the `eel-emu` emulator, and its pure helpers ([`eval_alu`],
//! [`eval_cond`]) are also what EEL's analyses use to "replicate the
//! computation in most instructions, such as computing the target address
//! of a jump" (§4) — e.g. when the backward slicer evaluates the
//! `sethi`/`or`/`sll`/`ld` chain that feeds an indirect jump.
//!
//! Control flow is modeled exactly as SPARC does: a PC/nPC pair plus an
//! annul flag, so delayed branches and annulled delay slots behave
//! bit-for-bit like the hardware the paper measured.

use crate::insn::{AluOp, Cond, Insn, MemWidth, Op, Src2};
use crate::reg::Reg;

/// Integer condition codes, packed N|Z|V|C in the low four bits.
pub mod icc {
    /// Negative.
    pub const N: u8 = 0b1000;
    /// Zero.
    pub const Z: u8 = 0b0100;
    /// Overflow.
    pub const V: u8 = 0b0010;
    /// Carry.
    pub const C: u8 = 0b0001;
}

/// Abstract memory interface for instruction execution.
///
/// Loads return zero-extended values; [`step`] applies sign extension.
/// Doubleword accesses are performed as two word accesses by [`step`].
/// Pass `&mut M` where an owned memory is inconvenient.
pub trait Memory {
    /// Loads `bytes ∈ {1,2,4}` bytes at `addr` (big-endian, like SPARC),
    /// zero-extended. Returns `None` on fault (unmapped address).
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32>;
    /// Stores the low `bytes` bytes of `value` at `addr`. Returns `None`
    /// on fault.
    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()>;
}

impl<M: Memory + ?Sized> Memory for &mut M {
    fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
        (**self).load(addr, bytes)
    }
    fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
        (**self).store(addr, bytes, value)
    }
}

/// Architected register state: 32 GPRs, `icc`, `%y`, and the PC/nPC pair
/// with the annul flag for delayed control transfers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    /// General-purpose registers; `regs[0]` (`%g0`) is kept at zero.
    pub regs: [u32; 32],
    /// Condition codes (N|Z|V|C in the low nibble; see the `icc` module).
    pub icc: u8,
    /// The `%y` register.
    pub y: u32,
    /// Address of the instruction currently executing.
    pub pc: u32,
    /// Address of the next instruction (differs from `pc + 4` in a delay
    /// slot).
    pub npc: u32,
    /// When set, the instruction at `pc` is annulled: skipped without
    /// effect.
    pub annul: bool,
}

impl MachineState {
    /// Fresh state with all registers zero, starting execution at `entry`.
    pub fn new(entry: u32) -> MachineState {
        MachineState {
            regs: [0; 32],
            icc: 0,
            y: 0,
            pc: entry,
            npc: entry.wrapping_add(4),
            annul: false,
        }
    }

    /// Reads a GPR (`%g0` reads as zero by construction).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() & 31]
    }

    /// Writes a GPR; writes to `%g0` are discarded.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::G0 {
            self.regs[r.index() & 31] = value;
        }
    }

    fn operand(&self, src2: Src2) -> u32 {
        match src2 {
            Src2::Reg(r) => self.reg(r),
            Src2::Imm(v) => v as u32,
        }
    }
}

/// What happened when an instruction executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// Normal completion.
    Ok,
    /// A taken trap: a system call with this trap number. State has already
    /// advanced; the handler runs "between" instructions.
    Trap(u32),
    /// The instruction word has no defined semantics (illegal instruction).
    Illegal,
    /// A misaligned or unmapped memory access at this address.
    MemFault(u32),
    /// Integer division by zero.
    DivZero,
    /// A control transfer to a misaligned target address.
    BadJump(u32),
}

/// Evaluates a branch/trap condition against condition codes.
///
/// ```
/// use eel_isa::{eval_cond, Cond};
/// // Z set ⇒ `be` true, `bne` false.
/// assert!(eval_cond(Cond::Eq, 0b0100));
/// assert!(!eval_cond(Cond::Ne, 0b0100));
/// assert!(eval_cond(Cond::Always, 0));
/// ```
pub fn eval_cond(cond: Cond, cc: u8) -> bool {
    let n = cc & icc::N != 0;
    let z = cc & icc::Z != 0;
    let v = cc & icc::V != 0;
    let c = cc & icc::C != 0;
    match cond {
        Cond::Never => false,
        Cond::Eq => z,
        Cond::Le => z || (n != v),
        Cond::Lt => n != v,
        Cond::Leu => c || z,
        Cond::CarrySet => c,
        Cond::Neg => n,
        Cond::OverflowSet => v,
        Cond::Always => true,
        Cond::Ne => !z,
        Cond::Gt => !(z || (n != v)),
        Cond::Ge => n == v,
        Cond::Gtu => !(c || z),
        Cond::CarryClear => !c,
        Cond::Pos => !n,
        Cond::OverflowClear => !v,
    }
}

/// Computes an ALU operation: returns `(result, new_icc, new_y)` where the
/// latter two are `None` if unchanged. `y` is the current `%y` value
/// (consumed by divides, produced by multiplies).
///
/// # Errors
///
/// Returns `Err(StepEvent::DivZero)` for division by zero.
pub fn eval_alu(
    op: AluOp,
    cc: bool,
    a: u32,
    b: u32,
    y: u32,
) -> Result<(u32, Option<u8>, Option<u32>), StepEvent> {
    let mut new_y = None;
    let (result, carry, overflow) = match op {
        AluOp::Add | AluOp::Save | AluOp::Restore => {
            let (r, c) = a.overflowing_add(b);
            let v = ((a ^ !b) & (a ^ r)) & 0x8000_0000 != 0;
            (r, c, v)
        }
        AluOp::Sub => {
            let (r, borrow) = a.overflowing_sub(b);
            let v = ((a ^ b) & (a ^ r)) & 0x8000_0000 != 0;
            (r, borrow, v)
        }
        AluOp::And => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
        AluOp::Andn => (a & !b, false, false),
        AluOp::Orn => (a | !b, false, false),
        AluOp::Xnor => (!(a ^ b), false, false),
        AluOp::Umul => {
            let p = (a as u64) * (b as u64);
            new_y = Some((p >> 32) as u32);
            (p as u32, false, false)
        }
        AluOp::Smul => {
            let p = (a as i32 as i64) * (b as i32 as i64);
            new_y = Some((p as u64 >> 32) as u32);
            (p as u32, false, false)
        }
        AluOp::Udiv => {
            if b == 0 {
                return Err(StepEvent::DivZero);
            }
            let dividend = ((y as u64) << 32) | a as u64;
            let q = dividend / b as u64;
            (q.min(u32::MAX as u64) as u32, false, q > u32::MAX as u64)
        }
        AluOp::Sdiv => {
            if b == 0 {
                return Err(StepEvent::DivZero);
            }
            let dividend = (((y as u64) << 32) | a as u64) as i64;
            let q = dividend / b as i32 as i64;
            let clamped = q.clamp(i32::MIN as i64, i32::MAX as i64);
            (clamped as u32, false, q != clamped)
        }
        AluOp::Sll => (a.wrapping_shl(b & 31), false, false),
        AluOp::Srl => (a.wrapping_shr(b & 31), false, false),
        AluOp::Sra => (((a as i32).wrapping_shr(b & 31)) as u32, false, false),
        AluOp::Rdy => (y, false, false),
        AluOp::Wry => {
            new_y = Some(a ^ b);
            (0, false, false)
        }
        // Rdpsr/Wrpsr move the condition codes through bits 20-23; the
        // flag plumbing happens in `step` (eval_alu has no icc input).
        AluOp::Rdpsr => (0, false, false),
        AluOp::Wrpsr => (0, false, false),
    };
    let new_icc = if cc {
        let mut f = 0u8;
        if result & 0x8000_0000 != 0 {
            f |= icc::N;
        }
        if result == 0 {
            f |= icc::Z;
        }
        if overflow {
            f |= icc::V;
        }
        if carry {
            f |= icc::C;
        }
        Some(f)
    } else {
        None
    };
    Ok((result, new_icc, new_y))
}

/// Executes one instruction, advancing `state` and touching `mem`.
///
/// The caller fetches the word at `state.pc`, decodes it, and passes it in.
/// If `state.annul` is set, the instruction is skipped (the state still
/// advances) — callers may also implement annulment themselves and simply
/// not call `step`. On [`StepEvent::Trap`], the PC has already advanced;
/// the caller services the trap and resumes.
pub fn step<M: Memory>(state: &mut MachineState, mem: &mut M, insn: Insn) -> StepEvent {
    // Default sequential advance; control transfers override `next_npc`.
    let pc = state.pc;
    let mut next_npc = state.npc.wrapping_add(4);
    let mut next_annul = false;

    if state.annul {
        state.annul = false;
        state.pc = state.npc;
        state.npc = next_npc;
        return StepEvent::Ok;
    }

    let mut event = StepEvent::Ok;
    match insn.op {
        Op::Sethi { rd, imm22 } => state.set_reg(rd, imm22 << 10),
        Op::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        } => {
            let a = if matches!(op, AluOp::Rdy | AluOp::Rdpsr) {
                0
            } else {
                state.reg(rs1)
            };
            let b = state.operand(src2);
            match eval_alu(op, cc, a, b, state.y) {
                Ok((result, new_icc, new_y)) => {
                    match op {
                        AluOp::Rdpsr => {
                            state.set_reg(rd, (state.icc as u32) << 20);
                        }
                        AluOp::Wrpsr => {
                            state.icc = ((state.reg(rs1) ^ state.operand(src2)) >> 20) as u8 & 0xf;
                        }
                        _ => {}
                    }
                    if !matches!(op, AluOp::Wry | AluOp::Wrpsr | AluOp::Rdpsr) {
                        state.set_reg(rd, result);
                    }
                    if let Some(f) = new_icc {
                        state.icc = f;
                    }
                    if let Some(yv) = new_y {
                        state.y = yv;
                    }
                }
                Err(e) => event = e,
            }
        }
        Op::Branch {
            cond,
            annul,
            disp22,
            fp,
        } => {
            // We never emit FP branches; executing one is illegal here.
            if fp {
                event = StepEvent::Illegal;
            } else {
                let taken = eval_cond(cond, state.icc);
                if taken {
                    next_npc = pc.wrapping_add((disp22 as u32) << 2);
                    // `ba,a` annuls its delay slot even though taken.
                    if annul && cond == Cond::Always {
                        next_annul = true;
                    }
                } else if annul {
                    next_annul = true;
                }
            }
        }
        Op::Call { disp30 } => {
            state.set_reg(Reg::O7, pc);
            next_npc = pc.wrapping_add((disp30 as u32) << 2);
        }
        Op::Jmpl { rd, rs1, src2 } => {
            let target = state.reg(rs1).wrapping_add(state.operand(src2));
            if !target.is_multiple_of(4) {
                event = StepEvent::BadJump(target);
            } else {
                state.set_reg(rd, pc);
                next_npc = target;
            }
        }
        Op::Load {
            width,
            signed,
            rd,
            rs1,
            src2,
            fp,
        } => {
            if fp {
                event = StepEvent::Illegal;
            } else {
                let addr = state.reg(rs1).wrapping_add(state.operand(src2));
                event = exec_load(state, mem, width, signed, rd, addr);
            }
        }
        Op::Store {
            width,
            rd,
            rs1,
            src2,
            fp,
        } => {
            if fp {
                event = StepEvent::Illegal;
            } else {
                let addr = state.reg(rs1).wrapping_add(state.operand(src2));
                event = exec_store(state, mem, width, rd, addr);
            }
        }
        Op::Trap { cond, rs1, src2 } => {
            if eval_cond(cond, state.icc) {
                let number = state.reg(rs1).wrapping_add(state.operand(src2)) & 0x7f;
                event = StepEvent::Trap(number);
            }
        }
        Op::Unimp { .. } | Op::Invalid => event = StepEvent::Illegal,
    }

    match event {
        StepEvent::Ok | StepEvent::Trap(_) => {
            state.pc = state.npc;
            state.npc = next_npc;
            state.annul = next_annul;
        }
        // Faulting instructions leave the PC on themselves so the emulator
        // can report a precise fault address.
        _ => {}
    }
    event
}

fn exec_load<M: Memory>(
    state: &mut MachineState,
    mem: &mut M,
    width: MemWidth,
    signed: bool,
    rd: Reg,
    addr: u32,
) -> StepEvent {
    let bytes = width.bytes().min(4);
    if !addr.is_multiple_of(bytes) || (width == MemWidth::Double && !addr.is_multiple_of(8)) {
        return StepEvent::MemFault(addr);
    }
    if width == MemWidth::Double {
        let (Some(hi), Some(lo)) = (mem.load(addr, 4), mem.load(addr + 4, 4)) else {
            return StepEvent::MemFault(addr);
        };
        state.set_reg(rd, hi);
        state.set_reg(Reg(rd.0 | 1), lo);
        return StepEvent::Ok;
    }
    let Some(raw) = mem.load(addr, bytes) else {
        return StepEvent::MemFault(addr);
    };
    let value = if signed {
        match width {
            MemWidth::Byte => raw as u8 as i8 as i32 as u32,
            MemWidth::Half => raw as u16 as i16 as i32 as u32,
            _ => raw,
        }
    } else {
        raw
    };
    state.set_reg(rd, value);
    StepEvent::Ok
}

fn exec_store<M: Memory>(
    state: &mut MachineState,
    mem: &mut M,
    width: MemWidth,
    rd: Reg,
    addr: u32,
) -> StepEvent {
    let bytes = width.bytes().min(4);
    if !addr.is_multiple_of(bytes) || (width == MemWidth::Double && !addr.is_multiple_of(8)) {
        return StepEvent::MemFault(addr);
    }
    if width == MemWidth::Double {
        let hi = state.reg(rd);
        let lo = state.reg(Reg(rd.0 | 1));
        if mem.store(addr, 4, hi).is_none() || mem.store(addr + 4, 4, lo).is_none() {
            return StepEvent::MemFault(addr);
        }
        return StepEvent::Ok;
    }
    match mem.store(addr, bytes, state.reg(rd)) {
        Some(()) => StepEvent::Ok,
        None => StepEvent::MemFault(addr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Builder;
    use std::collections::HashMap;

    /// Trivial word-granular test memory.
    #[derive(Default)]
    struct TestMem(HashMap<u32, u8>);

    impl Memory for TestMem {
        fn load(&mut self, addr: u32, bytes: u32) -> Option<u32> {
            let mut v = 0u32;
            for i in 0..bytes {
                v = (v << 8) | *self.0.get(&(addr + i)).unwrap_or(&0) as u32;
            }
            Some(v)
        }
        fn store(&mut self, addr: u32, bytes: u32, value: u32) -> Option<()> {
            for i in 0..bytes {
                self.0
                    .insert(addr + i, (value >> (8 * (bytes - 1 - i))) as u8);
            }
            Some(())
        }
    }

    fn run(insns: &[Insn]) -> MachineState {
        let mut st = MachineState::new(0x1000);
        let mut mem = TestMem::default();
        for _ in 0..insns.len() * 4 {
            let idx = (st.pc - 0x1000) / 4;
            if idx as usize >= insns.len() {
                break;
            }
            step(&mut st, &mut mem, insns[idx as usize]);
        }
        st
    }

    #[test]
    fn add_and_flags() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        step(&mut st, &mut mem, Builder::mov(Reg(9), Src2::Imm(-1)));
        step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Add, true, Reg(10), Reg(9), Src2::Imm(1)),
        );
        assert_eq!(st.reg(Reg(10)), 0);
        assert_eq!(st.icc & icc::Z, icc::Z);
        assert_eq!(st.icc & icc::C, icc::C);
        assert_eq!(st.icc & icc::V, 0);
    }

    #[test]
    fn signed_overflow_sets_v() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 0x7fff_ffff);
        step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Add, true, Reg(10), Reg(9), Src2::Imm(1)),
        );
        assert_eq!(st.icc & icc::V, icc::V);
        assert_eq!(st.icc & icc::N, icc::N);
    }

    #[test]
    fn g0_is_immutable() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        step(&mut st, &mut mem, Builder::mov(Reg::G0, Src2::Imm(5)));
        assert_eq!(st.reg(Reg::G0), 0);
    }

    #[test]
    fn taken_branch_executes_delay_slot() {
        // 0x1000: ba +3 ; 0x1004: mov 1,%o0 (delay) ; 0x1008: mov 2,%o1 (skipped)
        // 0x100c: mov 3,%o2 (target)
        let prog = [
            Builder::ba(3),
            Builder::mov(Reg(8), Src2::Imm(1)),
            Builder::mov(Reg(9), Src2::Imm(2)),
            Builder::mov(Reg(10), Src2::Imm(3)),
        ];
        let st = run(&prog);
        assert_eq!(st.reg(Reg(8)), 1, "delay slot must execute");
        assert_eq!(st.reg(Reg(9)), 0, "skipped instruction must not");
        assert_eq!(st.reg(Reg(10)), 3);
    }

    #[test]
    fn untaken_annulled_branch_skips_delay_slot() {
        // cmp 0,0 ; bne,a +3 ; mov 1,%o0 (annulled) ; mov 2,%o1
        let prog = [
            Builder::cmp(Reg::G0, Src2::Imm(0)),
            Builder::branch(Cond::Ne, true, 3),
            Builder::mov(Reg(8), Src2::Imm(1)),
            Builder::mov(Reg(9), Src2::Imm(2)),
        ];
        let st = run(&prog);
        assert_eq!(st.reg(Reg(8)), 0, "annulled delay slot must not execute");
        assert_eq!(st.reg(Reg(9)), 2);
    }

    #[test]
    fn taken_annulled_branch_executes_delay_slot() {
        let prog = [
            Builder::cmp(Reg::G0, Src2::Imm(1)), // 0 != 1 → Ne true
            Builder::branch(Cond::Ne, true, 3),
            Builder::mov(Reg(8), Src2::Imm(1)), // delay: executes (taken)
            Builder::mov(Reg(9), Src2::Imm(2)), // skipped
            Builder::mov(Reg(10), Src2::Imm(3)), // target
        ];
        let st = run(&prog);
        assert_eq!(st.reg(Reg(8)), 1);
        assert_eq!(st.reg(Reg(9)), 0);
        assert_eq!(st.reg(Reg(10)), 3);
    }

    #[test]
    fn ba_annulled_never_executes_delay_slot() {
        let prog = [
            Builder::branch(Cond::Always, true, 2),
            Builder::mov(Reg(8), Src2::Imm(1)), // annulled despite taken
            Builder::mov(Reg(9), Src2::Imm(2)), // target
        ];
        let st = run(&prog);
        assert_eq!(st.reg(Reg(8)), 0);
        assert_eq!(st.reg(Reg(9)), 2);
    }

    #[test]
    fn call_links_and_transfers() {
        let prog = [
            Builder::call(3),
            Builder::nop(),
            Builder::mov(Reg(9), Src2::Imm(9)),  // skipped
            Builder::mov(Reg(10), Src2::Imm(1)), // callee
        ];
        let st = run(&prog);
        assert_eq!(st.reg(Reg::O7), 0x1000);
        assert_eq!(st.reg(Reg(10)), 1);
        assert_eq!(st.reg(Reg(9)), 0);
    }

    #[test]
    fn jmpl_links_and_faults_on_misalignment() {
        let mut st = MachineState::new(0x1000);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 0x2002);
        let ev = step(
            &mut st,
            &mut mem,
            Builder::jmpl(Reg(10), Reg(9), Src2::Imm(0)),
        );
        assert_eq!(ev, StepEvent::BadJump(0x2002));
        assert_eq!(st.pc, 0x1000, "faulting pc preserved");
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 0x8000);
        st.set_reg(Reg(8), 0xffff_ff85);
        step(
            &mut st,
            &mut mem,
            Builder::store(MemWidth::Byte, Reg(8), Reg(9), Src2::Imm(0)),
        );
        step(
            &mut st,
            &mut mem,
            Builder::load(MemWidth::Byte, true, Reg(10), Reg(9), Src2::Imm(0)),
        );
        assert_eq!(st.reg(Reg(10)), 0xffff_ff85);
        step(
            &mut st,
            &mut mem,
            Builder::load(MemWidth::Byte, false, Reg(11), Reg(9), Src2::Imm(0)),
        );
        assert_eq!(st.reg(Reg(11)), 0x85);
    }

    #[test]
    fn misaligned_word_access_faults() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 0x8002);
        let ev = step(&mut st, &mut mem, Builder::ld(Reg(8), Reg(9), Src2::Imm(0)));
        assert_eq!(ev, StepEvent::MemFault(0x8002));
    }

    #[test]
    fn trap_fires_only_when_condition_holds() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        assert_eq!(
            step(&mut st, &mut mem, Builder::ta(Src2::Imm(5))),
            StepEvent::Trap(5)
        );
        // tn never traps.
        let tn = Insn::from_word(crate::encode(&Op::Trap {
            cond: Cond::Never,
            rs1: Reg::G0,
            src2: Src2::Imm(5),
        }));
        assert_eq!(step(&mut st, &mut mem, tn), StepEvent::Ok);
    }

    #[test]
    fn div_by_zero_reported() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 10);
        let ev = step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Sdiv, false, Reg(10), Reg(9), Src2::Imm(0)),
        );
        assert_eq!(ev, StepEvent::DivZero);
    }

    #[test]
    fn smul_fills_y() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 0x10000);
        st.set_reg(Reg(10), 0x10000);
        step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Smul, false, Reg(11), Reg(9), Src2::Reg(Reg(10))),
        );
        assert_eq!(st.reg(Reg(11)), 0);
        assert_eq!(st.y, 1);
    }

    #[test]
    fn sdiv_uses_y() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.y = 0;
        st.set_reg(Reg(9), 100);
        step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Sdiv, false, Reg(10), Reg(9), Src2::Imm(7)),
        );
        assert_eq!(st.reg(Reg(10)), 14);
    }

    #[test]
    fn shifts_mask_count() {
        let mut st = MachineState::new(0);
        let mut mem = TestMem::default();
        st.set_reg(Reg(9), 1);
        step(
            &mut st,
            &mut mem,
            Builder::alu(AluOp::Sll, false, Reg(10), Reg(9), Src2::Imm(33)),
        );
        assert_eq!(st.reg(Reg(10)), 2, "shift count is mod 32");
    }

    #[test]
    fn eval_cond_signed_unsigned_split() {
        // -1 vs 1: signed less (N=1, V=0), unsigned greater (no borrow).
        let (_, f, _) = eval_alu(AluOp::Sub, true, u32::MAX, 1, 0).unwrap();
        let f = f.unwrap();
        assert!(eval_cond(Cond::Lt, f), "signed: -1 < 1");
        assert!(eval_cond(Cond::Gtu, f), "unsigned: 0xffffffff > 1");
    }

    #[test]
    fn eval_cond_lt_after_cmp() {
        // cmp 3, 5 → less.
        let (_, f, _) = eval_alu(AluOp::Sub, true, 3, 5, 0).unwrap();
        let f = f.unwrap();
        assert!(eval_cond(Cond::Lt, f));
        assert!(eval_cond(Cond::Le, f));
        assert!(!eval_cond(Cond::Ge, f));
        assert!(!eval_cond(Cond::Eq, f));
        assert!(eval_cond(Cond::Ne, f));
    }
}
