//! Register names and register sets.
//!
//! EEL's analyses (liveness, slicing, register scavenging) all operate on
//! sets of *resources*: the 32 integer registers plus the integer condition
//! codes and the `Y` multiply/divide register. [`RegSet`] packs these into a
//! single `u64` bitset so dataflow transfer functions are a few machine ops.

use std::fmt;

/// A machine register or condition-code resource.
///
/// Values `0..32` are the integer registers; [`Reg::ICC`] and [`Reg::Y`] are
/// pseudo-registers so dataflow analyses can track condition codes and the
/// multiply/divide register uniformly (the paper's live-register analysis
/// tracks condition-code liveness — Blizzard's fast test sequence depends on
/// it, §5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// `%g0`: hardwired zero. Reads return 0, writes are discarded.
    pub const G0: Reg = Reg(0);
    /// `%g1`: volatile scratch; syscall number by convention.
    pub const G1: Reg = Reg(1);
    /// `%o0`: first argument / return value register.
    pub const O0: Reg = Reg(8);
    /// `%sp` (`%o6`): stack pointer.
    pub const SP: Reg = Reg(14);
    /// `%o7`: address of the `call` instruction; the return-address link.
    pub const O7: Reg = Reg(15);
    /// `%l0`: first callee-saved local.
    pub const L0: Reg = Reg(16);
    /// `%fp` (`%i6`): frame pointer.
    pub const FP: Reg = Reg(30);
    /// `%i7`: return address in a register-window regime (`ret` = `jmpl %i7+8`).
    pub const I7: Reg = Reg(31);
    /// Integer condition codes (N, Z, V, C) as a dataflow resource.
    pub const ICC: Reg = Reg(32);
    /// The `Y` register (high bits of multiply, dividend extension).
    pub const Y: Reg = Reg(33);
    /// The processor state register viewed as a whole (`rd %psr` /
    /// `wr %psr` move the condition codes in and out of a GPR; EEL
    /// snippets use this to save/restore `icc` when it is live).
    pub const PSR: Reg = Reg(34);

    /// Number of distinct register resources (32 integer + icc + y + psr
    /// — the paper's SPARC description declares `R[35]`).
    pub const COUNT: usize = 35;

    /// Returns the register's bitset index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this one of the 32 general-purpose integer registers?
    pub fn is_gpr(self) -> bool {
        self.0 < 32
    }

    /// The canonical assembly name (`%g0`, `%o3`, `%sp`, `%icc`, ...).
    pub fn name(self) -> String {
        match self.0 {
            14 => "%sp".to_string(),
            30 => "%fp".to_string(),
            0..=7 => format!("%g{}", self.0),
            8..=15 => format!("%o{}", self.0 - 8),
            16..=23 => format!("%l{}", self.0 - 16),
            24..=31 => format!("%i{}", self.0 - 24),
            32 => "%icc".to_string(),
            33 => "%y".to_string(),
            34 => "%psr".to_string(),
            n => format!("%r{n}"),
        }
    }

    /// Parses an assembly register name. Accepts `%gN/%oN/%lN/%iN`, the
    /// aliases `%sp` and `%fp`, and raw `%rN` (0–31).
    pub fn parse(name: &str) -> Option<Reg> {
        let rest = name.strip_prefix('%')?;
        match rest {
            "sp" => return Some(Reg::SP),
            "fp" => return Some(Reg::FP),
            "icc" => return Some(Reg::ICC),
            "y" => return Some(Reg::Y),
            "psr" => return Some(Reg::PSR),
            _ => {}
        }
        if rest.len() < 2 || !rest.is_ascii() {
            return None;
        }
        let (bank, num) = rest.split_at(1);
        let n: u8 = num.parse().ok()?;
        if n > 7 && bank != "r" {
            return None;
        }
        match bank {
            "g" => Some(Reg(n)),
            "o" => Some(Reg(8 + n)),
            "l" => Some(Reg(16 + n)),
            "i" => Some(Reg(24 + n)),
            "r" if n < 32 => Some(Reg(n)),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A set of register resources, packed into a `u64` bitmask.
///
/// This is the currency of EEL's dataflow analyses: an instruction's
/// `reads()`/`writes()` are `RegSet`s, liveness is a fixpoint over
/// `RegSet`s, and snippet register allocation picks from the complement of
/// a live `RegSet`.
///
/// ```
/// use eel_isa::{Reg, RegSet};
/// let mut s = RegSet::new();
/// s.insert(Reg::O0);
/// s.insert(Reg::ICC);
/// assert!(s.contains(Reg::O0));
/// assert_eq!(s.len(), 2);
/// let t = s.without(RegSet::of(&[Reg::ICC]));
/// assert_eq!(t.iter().collect::<Vec<_>>(), vec![Reg::O0]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u64);

impl RegSet {
    /// Creates an empty set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Creates a set holding the given registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::new();
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// The set of all general-purpose registers except `%g0`.
    pub fn all_gprs() -> RegSet {
        RegSet(0xffff_fffe)
    }

    /// Raw bitmask (bit *i* set ⇔ register *i* present).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw bitmask.
    pub fn from_bits(bits: u64) -> RegSet {
        RegSet(bits)
    }

    /// Inserts a register. Inserting `%g0` is allowed but meaningless for
    /// dataflow (it is neither readable state nor writable).
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn without(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates the members in ascending register-index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(Reg(i))
            }
        })
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_round_trip() {
        for i in 0..32 {
            let r = Reg(i);
            assert_eq!(Reg::parse(&r.name()), Some(r), "register {i}");
        }
        assert_eq!(Reg::parse("%sp"), Some(Reg(14)));
        assert_eq!(Reg::parse("%fp"), Some(Reg(30)));
        assert_eq!(Reg::parse("%o7"), Some(Reg::O7));
        assert_eq!(Reg::parse("%i7"), Some(Reg::I7));
    }

    #[test]
    fn reg_parse_rejects_garbage() {
        assert_eq!(Reg::parse("g1"), None);
        assert_eq!(Reg::parse("%x3"), None);
        assert_eq!(Reg::parse("%g8"), None);
        assert_eq!(Reg::parse("%r32"), None);
        assert_eq!(Reg::parse("%"), None);
    }

    #[test]
    fn aliases_print_as_aliases() {
        assert_eq!(Reg(14).name(), "%sp");
        assert_eq!(Reg(30).name(), "%fp");
        assert_eq!(Reg(15).name(), "%o7");
    }

    #[test]
    fn set_operations() {
        let a = RegSet::of(&[Reg(1), Reg(2), Reg(3)]);
        let b = RegSet::of(&[Reg(3), Reg(4)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), RegSet::of(&[Reg(3)]));
        assert_eq!(a.without(b), RegSet::of(&[Reg(1), Reg(2)]));
        assert!(!a.is_empty());
        assert!(RegSet::new().is_empty());
    }

    #[test]
    fn set_iterates_in_order() {
        let s = RegSet::of(&[Reg(9), Reg::ICC, Reg(1)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg(1), Reg(9), Reg::ICC]);
    }

    #[test]
    fn all_gprs_excludes_g0() {
        let s = RegSet::all_gprs();
        assert!(!s.contains(Reg::G0));
        assert_eq!(s.len(), 31);
        assert!(s.contains(Reg(31)));
        assert!(!s.contains(Reg::ICC));
    }
}
