//! Instruction encoder and convenience builders.
//!
//! [`encode`] is the exact inverse of [`crate::decode`] on all valid
//! operations (a property-tested invariant). [`Builder`] offers the
//! idiomatic constructors the assembler, compiler, and snippet machinery
//! use (`mov`, `cmp`, `set`, `ba`, ...).

use crate::insn::{AluOp, Cond, Insn, MemWidth, Op, Src2};
use crate::reg::Reg;

fn src2_bits(src2: Src2) -> u32 {
    match src2 {
        Src2::Reg(r) => r.0 as u32,
        Src2::Imm(v) => {
            assert!(Src2::fits_simm13(v), "immediate {v} exceeds simm13");
            (1 << 13) | ((v as u32) & 0x1fff)
        }
    }
}

fn format3(op: u32, rd: u32, op3: u32, rs1: u32, src2: Src2) -> u32 {
    (op << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | src2_bits(src2)
}

/// Encodes a structured operation into its 32-bit word.
///
/// # Panics
///
/// Panics if the operation is not encodable: [`Op::Invalid`], an immediate
/// outside simm13, a branch displacement outside 22 bits, a call
/// displacement outside 30 bits, or a doubleword access with an odd
/// register.
///
/// ```
/// use eel_isa::{encode, decode, Op, Cond};
/// let op = Op::Branch { cond: Cond::Ne, annul: true, disp22: 4, fp: false };
/// assert_eq!(decode(encode(&op)).op, op);
/// ```
pub fn encode(op: &Op) -> u32 {
    match *op {
        Op::Sethi { rd, imm22 } => {
            assert!(imm22 < (1 << 22), "sethi immediate exceeds 22 bits");
            ((rd.0 as u32) << 25) | (0b100 << 22) | imm22
        }
        Op::Branch {
            cond,
            annul,
            disp22,
            fp,
        } => {
            assert!(
                (-(1 << 21)..(1 << 21)).contains(&disp22),
                "disp22 out of range: {disp22}"
            );
            let op2 = if fp { 0b110 } else { 0b010 };
            ((annul as u32) << 29)
                | (cond.bits() << 25)
                | (op2 << 22)
                | ((disp22 as u32) & 0x3fffff)
        }
        Op::Call { disp30 } => (0b01 << 30) | ((disp30 as u32) & 0x3fffffff),
        Op::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        } => {
            assert!(!cc || op.supports_cc(), "{op:?} has no cc variant");
            let op3 = (op as u32) | if cc { 0b010000 } else { 0 };
            format3(0b10, rd.0 as u32, op3, rs1.0 as u32, src2)
        }
        Op::Jmpl { rd, rs1, src2 } => format3(0b10, rd.0 as u32, 0b111000, rs1.0 as u32, src2),
        Op::Trap { cond, rs1, src2 } => format3(0b10, cond.bits(), 0b111010, rs1.0 as u32, src2),
        Op::Load {
            width,
            signed,
            rd,
            rs1,
            src2,
            fp,
        } => {
            let op3 = match (width, signed, fp) {
                (MemWidth::Word, false, false) => 0b000000,
                (MemWidth::Byte, false, false) => 0b000001,
                (MemWidth::Half, false, false) => 0b000010,
                (MemWidth::Double, false, false) => {
                    assert!(rd.0 % 2 == 0, "ldd needs an even register");
                    0b000011
                }
                (MemWidth::Byte, true, false) => 0b001001,
                (MemWidth::Half, true, false) => 0b001010,
                (MemWidth::Word, false, true) => 0b100000,
                other => panic!("unencodable load {other:?}"),
            };
            format3(0b11, rd.0 as u32, op3, rs1.0 as u32, src2)
        }
        Op::Store {
            width,
            rd,
            rs1,
            src2,
            fp,
        } => {
            let op3 = match (width, fp) {
                (MemWidth::Word, false) => 0b000100,
                (MemWidth::Byte, false) => 0b000101,
                (MemWidth::Half, false) => 0b000110,
                (MemWidth::Double, false) => {
                    assert!(rd.0 % 2 == 0, "std needs an even register");
                    0b000111
                }
                (MemWidth::Word, true) => 0b100100,
                other => panic!("unencodable store {other:?}"),
            };
            format3(0b11, rd.0 as u32, op3, rs1.0 as u32, src2)
        }
        Op::Unimp { const22 } => {
            assert!(const22 < (1 << 22));
            const22
        }
        Op::Invalid => panic!("cannot encode Op::Invalid"),
    }
}

/// Convenience constructors for common instructions, returning [`Insn`]s.
///
/// These mirror the synthetic mnemonics SPARC assemblers provide (`mov`,
/// `cmp`, `set`) and are what `eel-cc`, `eel-asm`, and `eel-core`'s edit
/// machinery use to synthesize code.
#[derive(Debug, Clone, Copy, Default)]
pub struct Builder;

impl Builder {
    /// `nop` (encoded as `sethi 0, %g0`).
    pub fn nop() -> Insn {
        Self::build(Op::Sethi {
            rd: Reg::G0,
            imm22: 0,
        })
    }

    /// `sethi %hi(value), rd` — sets the upper 22 bits of `rd`.
    pub fn sethi_hi(rd: Reg, value: u32) -> Insn {
        Self::build(Op::Sethi {
            rd,
            imm22: crate::hi22(value),
        })
    }

    /// A generic ALU instruction.
    pub fn alu(op: AluOp, cc: bool, rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::build(Op::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        })
    }

    /// `add rd, rs1, src2`.
    pub fn add(rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::alu(AluOp::Add, false, rd, rs1, src2)
    }

    /// `sub rd, rs1, src2`.
    pub fn sub(rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::alu(AluOp::Sub, false, rd, rs1, src2)
    }

    /// `mov src2, rd` (`or %g0, src2, rd`).
    pub fn mov(rd: Reg, src2: Src2) -> Insn {
        Self::alu(AluOp::Or, false, rd, Reg::G0, src2)
    }

    /// `cmp rs1, src2` (`subcc rs1, src2, %g0`).
    pub fn cmp(rs1: Reg, src2: Src2) -> Insn {
        Self::alu(AluOp::Sub, true, Reg::G0, rs1, src2)
    }

    /// `or rd, rs1, %lo(value)` — the second half of a `set`.
    pub fn or_lo(rd: Reg, rs1: Reg, value: u32) -> Insn {
        Self::alu(
            AluOp::Or,
            false,
            rd,
            rs1,
            Src2::Imm(crate::lo10(value) as i32),
        )
    }

    /// The `set value, rd` synthetic: one or two instructions materializing
    /// an arbitrary 32-bit constant.
    pub fn set(rd: Reg, value: u32) -> Vec<Insn> {
        if Src2::fits_simm13(value as i32) {
            vec![Self::mov(rd, Src2::Imm(value as i32))]
        } else if crate::lo10(value) == 0 {
            vec![Self::sethi_hi(rd, value)]
        } else {
            vec![Self::sethi_hi(rd, value), Self::or_lo(rd, rd, value)]
        }
    }

    /// Conditional branch on `icc` with explicit annul bit and word
    /// displacement.
    pub fn branch(cond: Cond, annul: bool, disp22: i32) -> Insn {
        Self::build(Op::Branch {
            cond,
            annul,
            disp22,
            fp: false,
        })
    }

    /// `ba disp` — branch always.
    pub fn ba(disp22: i32) -> Insn {
        Self::branch(Cond::Always, false, disp22)
    }

    /// `call disp` (word displacement).
    pub fn call(disp30: i32) -> Insn {
        Self::build(Op::Call { disp30 })
    }

    /// `jmpl rs1 + src2, rd`.
    pub fn jmpl(rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::build(Op::Jmpl { rd, rs1, src2 })
    }

    /// `retl` — return from a leaf routine (`jmpl %o7 + 8, %g0`).
    pub fn retl() -> Insn {
        Self::jmpl(Reg::G0, Reg::O7, Src2::Imm(8))
    }

    /// Integer load of the given width.
    pub fn load(width: MemWidth, signed: bool, rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::build(Op::Load {
            width,
            signed,
            rd,
            rs1,
            src2,
            fp: false,
        })
    }

    /// `ld [rs1 + src2], rd`.
    pub fn ld(rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::load(MemWidth::Word, false, rd, rs1, src2)
    }

    /// Integer store of the given width.
    pub fn store(width: MemWidth, rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::build(Op::Store {
            width,
            rd,
            rs1,
            src2,
            fp: false,
        })
    }

    /// `st rd, [rs1 + src2]`.
    pub fn st(rd: Reg, rs1: Reg, src2: Src2) -> Insn {
        Self::store(MemWidth::Word, rd, rs1, src2)
    }

    /// `ta src2` — trap always; the system-call gateway.
    pub fn ta(src2: Src2) -> Insn {
        Self::build(Op::Trap {
            cond: Cond::Always,
            rs1: Reg::G0,
            src2,
        })
    }

    fn build(op: Op) -> Insn {
        Insn {
            word: encode(&op),
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn builders_round_trip() {
        for insn in [
            Builder::nop(),
            Builder::mov(Reg(9), Src2::Imm(42)),
            Builder::cmp(Reg(9), Src2::Reg(Reg(10))),
            Builder::ba(-3),
            Builder::retl(),
            Builder::ld(Reg(8), Reg::SP, Src2::Imm(64)),
            Builder::st(Reg(8), Reg::SP, Src2::Imm(-4)),
            Builder::ta(Src2::Imm(0)),
            Builder::call(1000),
        ] {
            assert_eq!(decode(insn.word), insn);
        }
    }

    #[test]
    fn set_small_constant_is_one_mov() {
        let insns = Builder::set(Reg(9), 100);
        assert_eq!(insns.len(), 1);
    }

    #[test]
    fn set_aligned_constant_is_one_sethi() {
        let insns = Builder::set(Reg(9), 0x40000);
        assert_eq!(insns.len(), 1);
        assert!(matches!(insns[0].op, Op::Sethi { .. }));
    }

    #[test]
    fn set_large_constant_is_sethi_or_pair() {
        let value = 0x12345678;
        let insns = Builder::set(Reg(9), value);
        assert_eq!(insns.len(), 2);
        // Verify the pair reconstructs the constant.
        match (insns[0].op, insns[1].op) {
            (
                Op::Sethi { imm22, .. },
                Op::Alu {
                    src2: Src2::Imm(lo),
                    ..
                },
            ) => {
                assert_eq!((imm22 << 10) | (lo as u32), value);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "simm13")]
    fn oversized_immediate_panics() {
        Builder::mov(Reg(9), Src2::Imm(99999));
    }

    #[test]
    #[should_panic(expected = "disp22")]
    fn oversized_branch_panics() {
        encode(&Op::Branch {
            cond: Cond::Eq,
            annul: false,
            disp22: 1 << 21,
            fp: false,
        });
    }
}
