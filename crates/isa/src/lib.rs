//! # eel-isa: the target instruction set
//!
//! A faithful subset of the SPARC V8 instruction set — the architecture the
//! EEL paper (Larus & Schnarr, PLDI 1995) targets. This crate is the
//! *handwritten* machine-specific layer: bit-exact instruction encodings, a
//! total decoder (every 32-bit word decodes to something, possibly
//! [`Op::Invalid`]), an encoder, a disassembler, and per-instruction
//! semantic helpers used by the emulator and by EEL's analyses.
//!
//! The paper's `spawn` tool generates an equivalent layer from a concise
//! machine description; the `eel-spawn` crate reproduces that and is tested
//! differentially against this crate.
//!
//! ## Architecture summary
//!
//! * 32 general-purpose 32-bit integer registers `%g0–%g7`, `%o0–%o7`,
//!   `%l0–%l7`, `%i0–%i7`; `%g0` reads as zero and ignores writes.
//! * Integer condition codes (`icc`: N, Z, V, C) set by `cc`-suffixed ALU
//!   ops; the `Y` register for multiply/divide.
//! * Delayed control transfers: `call`, `jmpl`, and conditional branches all
//!   execute the following instruction (the *delay slot*) before the
//!   transfer takes effect. Branches carry an *annul* bit: an annulled
//!   conditional branch executes its delay slot only when taken; `ba,a`
//!   never executes it.
//! * Register windows are **not** modeled (`save`/`restore` decode as plain
//!   ALU ops); see DESIGN.md for why this preserves the paper's behaviour.
//!
//! ## Example
//!
//! ```
//! use eel_isa::{decode, Op, Reg};
//! // `bne,a +4 words` — annulled branch-not-equal.
//! let insn = decode(0x32800004);
//! match insn.op {
//!     Op::Branch { annul, disp22, .. } => {
//!         assert!(annul);
//!         assert_eq!(disp22, 4);
//!     }
//!     _ => panic!("decoded wrong class"),
//! }
//! assert!(insn.is_delayed());
//! assert_eq!(decode(0x01000000).to_string(), "nop");
//! # let _ = Reg::G0;
//! ```

mod class;
mod decode;
mod disasm;
mod encode;
mod insn;
mod reg;
mod semantics;

pub use class::{Category, JumpKind};
pub use decode::decode;
pub use encode::{encode, Builder};
pub use insn::{AluOp, Cond, Insn, MemWidth, Op, Src2};
pub use reg::{Reg, RegSet};
pub use semantics::{eval_alu, eval_cond, step, MachineState, Memory, StepEvent};

/// Size of every instruction in bytes. SPARC V8 is a fixed-width ISA.
pub const INSN_BYTES: u32 = 4;

/// Extracts the upper 22 bits of a value, as `sethi` materializes them.
///
/// ```
/// assert_eq!(eel_isa::hi22(0x12345678), 0x12345678 >> 10);
/// ```
pub fn hi22(value: u32) -> u32 {
    value >> 10
}

/// Extracts the low 10 bits of a value, the `%lo()` immediate that pairs
/// with a `sethi` to materialize a full 32-bit constant.
///
/// ```
/// assert_eq!(eel_isa::lo10(0x12345678), 0x12345678 & 0x3ff);
/// ```
pub fn lo10(value: u32) -> u32 {
    value & 0x3ff
}
