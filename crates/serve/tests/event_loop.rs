//! Event-loop integration tests: connection scalability (threads must
//! not scale with connections), slow-consumer write-buffer pushback, and
//! shutdown drain under a thousand open sessions.

use eel_serve::{CacheTier, Client, Payload, Request, Response, Server, ServerConfig};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Both tests assert process-wide facts (thread counts, metric
/// counters); serialize them so neither sees the other's server.
static SERIAL: Mutex<()> = Mutex::new(());

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads line")
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn metric(metrics: &str, kind: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|l| {
        let rest = l.strip_prefix(&format!("{kind} {name} "))?;
        rest.parse().ok()
    })
}

/// A generated (non-suite) image whose cold `instrument` takes ~200ms.
fn slow_wef() -> Vec<u8> {
    (0..16)
        .find_map(|seed| {
            let program = eel_progen::random_program(seed, &eel_progen::GenConfig::default());
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .expect("a compilable seed")
        .to_bytes()
}

/// The scalability acceptance test: 1024 concurrent idle v2 sessions add
/// **zero** threads (connections cost fds and buffers under the reactor,
/// not threads), every session still gets served, and a mid-session
/// shutdown answers in-flight work before the daemon exits.
#[test]
fn thousand_idle_sessions_add_no_threads_and_drain_on_shutdown() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let baseline = thread_count();
    let mut sessions = Vec::with_capacity(1024);
    for n in 0..1024 {
        sessions.push(
            client
                .open_session(4)
                .unwrap_or_else(|e| panic!("open session {n}: {e}")),
        );
    }
    let with_sessions = thread_count();
    assert_eq!(
        with_sessions, baseline,
        "1024 idle sessions must not add threads (reactor + fixed pool only)"
    );
    assert!(
        with_sessions < 32,
        "total thread budget stays fixed, got {with_sessions}"
    );

    // The sessions are live, not just parked: a sample spread across
    // the whole set still gets answered.
    let ping = Request {
        op: "ping".into(),
        payload: Payload::none(),
    };
    for session in sessions.iter_mut().step_by(128) {
        let id = session.submit(&ping).expect("submit ping");
        let (rid, resp) = session.recv().expect("recv pong");
        assert_eq!(rid, id);
        let (_, body) = expect_ok(resp);
        assert_eq!(body, b"pong");
    }

    // Shutdown drain: a slow request in flight when shutdown lands is
    // still answered before the connection closes.
    let mut last = sessions.pop().expect("a session");
    let id = last
        .submit(&Request {
            op: "instrument".into(),
            payload: Payload::Inline(slow_wef()),
        })
        .expect("submit slow request");
    server.shutdown();
    let (rid, resp) = last.recv().expect("in-flight request answered");
    assert_eq!(rid, id);
    expect_ok(resp);

    drop(sessions);
    drop(last);
    server.wait();
}

/// A session client that submits a window of large-result requests but
/// reads nothing trips the per-connection write-buffer high-water mark:
/// the reactor stops reading from it (`serve.reactor.pushback`), the
/// rest of the server stays responsive, and once the client finally
/// drains, every reply arrives byte-identical to a one-shot exchange.
#[test]
fn slow_consumer_trips_pushback_and_loses_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig {
        workers: 2,
        session_window: 256,
        // A deliberately tiny high-water mark so one instrument reply
        // (a whole edited WEF) overflows it.
        write_hwm: 1024,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_string();
    let client = Client::connect(addr.clone());

    // A big image served via a path payload: request frames stay tiny
    // (the client never blocks submitting) while replies — whole edited
    // WEFs — are large enough that a window of them overflows any
    // kernel socket buffering and lands in the server's write buffer.
    let dir = std::env::temp_dir().join(format!("eel-evloop-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("big.wef");
    let mut src = String::from("global acc;\n");
    for i in 0..160 {
        src.push_str(&format!(
            "fn f{i}() {{\n  var x = acc + {i};\n  var j;\n  \
             for (j = 0; j < 3; j = j + 1) {{ x = x * 3 + j; x = x ^ {i}; }}\n  \
             acc = x & 65535;\n  return 0;\n}}\n"
        ));
    }
    src.push_str("fn main() {\n");
    for i in 0..160 {
        src.push_str(&format!("  f{i}();\n"));
    }
    src.push_str("  print(acc);\n  return acc & 255;\n}\n");
    let image =
        eel_cc::compile_str(&src, &eel_cc::Options::default()).expect("compile big program");
    image.write_file(&path).expect("write WEF");
    let req = Request {
        op: "instrument".into(),
        payload: Payload::Path(path.display().to_string()),
    };
    let (_, expected) = expect_ok(client.request(&req).expect("one-shot instrument"));

    // 256 replies at ~57 KB each is ~15 MB — several times anything the
    // kernel can absorb (tcp_wmem caps the send side at 4 MB and the
    // unread client's receive window stays near its 128 KB default), so
    // the overflow must land in the server's write buffer.
    let mut session = client.open_session(256).expect("open session");
    const N: usize = 256;
    let mut ids = Vec::new();
    for _ in 0..N {
        ids.push(session.submit(&req).expect("submit"));
    }

    // Don't read anything yet; wait for the server to hit the mark.
    // (The replies are cache hits after the warm-up, so they pile into
    // the write buffer almost immediately.)
    let probe = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, metrics) = expect_ok(probe.control("metrics").expect("metrics"));
        let metrics = String::from_utf8(metrics).expect("metrics are text");
        if metric(&metrics, "counter", "serve.reactor.pushback").unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pushback never tripped\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // A pushed-back session stalls only itself: the probe still runs.
    let (_, body) = expect_ok(probe.control("ping").expect("ping during pushback"));
    assert_eq!(body, b"pong");

    // Drain: every reply arrives, byte-identical to the one-shot.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..N {
        let (id, resp) = session.recv().expect("recv reply");
        assert!(seen.insert(id), "duplicate reply id {id}");
        let (_, body) = expect_ok(resp);
        assert_eq!(body, expected, "pushed-back reply differs from one-shot");
    }
    assert_eq!(seen.len(), ids.len());
    session.goodbye().expect("goodbye");

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
    server.wait();
}
