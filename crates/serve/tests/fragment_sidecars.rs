//! The fragment disk tier's `.eelf` sidecars, end to end: janitor
//! eviction ordering, recovery from corrupt and truncated sidecars, and
//! promotion of on-disk fragments after a daemon restart.

use eel_serve::{CacheTier, Client, DiskCache, Payload, Response, Server, ServerConfig};
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eel-eelf-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>, Option<(u32, u32)>) {
    match resp {
        Response::Ok {
            tier,
            body,
            fragments,
            ..
        } => (tier, body, fragments),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn start(dir: &Path) -> (Server, Client) {
    let server = Server::start(ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    (server, client)
}

fn shutdown(server: Server, client: &Client) {
    let _ = client.control("shutdown");
    server.wait();
}

/// Committed `.eelf` sidecars in a cache directory.
fn sidecars(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".eelf"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// A base image and a one-routine twin, as WEF bytes.
fn near_duplicate_pair() -> (Vec<u8>, Vec<u8>) {
    let config = eel_progen::GenConfig {
        functions: 6,
        ..eel_progen::GenConfig::default()
    };
    let base = (0..16)
        .find_map(|seed| {
            let program = eel_progen::random_program(seed, &config);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .expect("some seed compiles");
    let mut twin = base.clone();
    eel_progen::mutate_routine(&mut twin, 0).expect("base has an ALU immediate");
    (base.to_bytes(), twin.to_bytes())
}

#[test]
fn janitor_prunes_eelf_sidecars_oldest_first() {
    // Directly on the tier: fragment entries obey the same oldest-first
    // janitor as whole-image entries, and the newest write survives even
    // when it alone overflows the budget.
    let dir = tmp_dir("janitor");
    let payload = vec![0xABu8; 256];
    let cache = DiskCache::open(&dir, 700);
    cache.store(1, "frag.disasm", &payload);
    std::thread::sleep(std::time::Duration::from_millis(20));
    cache.store(2, "frag.disasm", &payload);
    std::thread::sleep(std::time::Duration::from_millis(20));
    cache.store(3, "frag.disasm", &payload);
    assert!(cache.bytes() <= 700, "janitor enforced the budget");
    assert_eq!(cache.load(1, "frag.disasm"), None, "oldest sidecar pruned");
    assert!(cache.load(2, "frag.disasm").is_some());
    assert!(
        cache.load(3, "frag.disasm").is_some(),
        "newest sidecar always survives"
    );
    // Mixed populations prune by age, not by suffix: an old .eelc entry
    // is evicted before younger .eelf sidecars.
    std::thread::sleep(std::time::Duration::from_millis(20));
    cache.store(4, "disasm", &payload);
    std::thread::sleep(std::time::Duration::from_millis(20));
    cache.store(5, "frag.disasm", &payload);
    assert_eq!(cache.load(2, "frag.disasm"), None);
    assert!(cache.load(5, "frag.disasm").is_some());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_truncated_sidecars_recover_on_restart() {
    let (base, twin) = near_duplicate_pair();
    let dir = tmp_dir("corrupt");

    // Cold reference for the twin, no cache directory involved.
    let ref_server = Server::start(ServerConfig::default()).unwrap();
    let ref_client = Client::connect(ref_server.local_addr().to_string());
    let (_, cold_body, _) = expect_ok(
        ref_client
            .op("disasm", Payload::Inline(twin.clone()))
            .unwrap(),
    );
    shutdown(ref_server, &ref_client);

    // Warm a cache directory with the base image's fragments.
    let (server, client) = start(&dir);
    let (_, _, fragments) = expect_ok(client.op("disasm", Payload::Inline(base.clone())).unwrap());
    let total = fragments.expect("computed response reports fragments").1;
    shutdown(server, &client);
    let files = sidecars(&dir);
    assert!(
        files.len() >= total as usize,
        "expected ≥{total} sidecars, found {}",
        files.len()
    );

    // Vandalize the tier: flip a payload byte in one sidecar, truncate
    // another mid-header, and empty a third. Damage only sidecars whose
    // routine keys the twin shares — recovery is probe-triggered, so a
    // sidecar only the base's mutated routine owns would survive
    // damaged no matter what (the twin never asks for it).
    let twin_keys: std::collections::HashSet<u64> = {
        let image = std::sync::Arc::new(eel_exe::Image::from_bytes(&twin).unwrap());
        eel_core::Analysis::compute(image)
            .unwrap()
            .routine_keys()
            .iter()
            .copied()
            .collect()
    };
    let shared: Vec<&PathBuf> = files
        .iter()
        .filter(|f| {
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            name.split_once('.')
                .and_then(|(h, _)| u64::from_str_radix(h, 16).ok())
                .is_some_and(|h| twin_keys.contains(&h))
        })
        .collect();
    assert!(shared.len() >= 3, "expected ≥3 shared sidecars");
    let mut bytes = fs::read(shared[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(shared[0], &bytes).unwrap();
    let bytes = fs::read(shared[1]).unwrap();
    fs::write(shared[1], &bytes[..bytes.len().min(13)]).unwrap();
    fs::write(shared[2], b"").unwrap();

    // A restarted daemon must stitch the twin to the cold answer anyway:
    // damaged sidecars validate as stale, are deleted, and recompute.
    let (server, client) = start(&dir);
    let (tier, body, fragments) =
        expect_ok(client.op("disasm", Payload::Inline(twin.clone())).unwrap());
    assert!(!tier.is_hit(), "twin never analyzed before");
    let (hits, twin_total) = fragments.expect("computed response reports fragments");
    assert_eq!(twin_total, total);
    assert!(
        hits >= total.saturating_sub(4),
        "undamaged sidecars still stitch: {hits}/{twin_total}"
    );
    assert!(
        hits < total,
        "the mutated routine can never be a fragment hit"
    );
    assert_eq!(body, cold_body, "recovered output == cold output");
    shutdown(server, &client);

    // The damaged files were either deleted or rewritten in place; every
    // surviving sidecar validates.
    let cache = DiskCache::open(&dir, u64::MAX);
    for f in sidecars(&dir) {
        // Sidecar names are `{hash:016x}.{op}.eelf` with op = `frag.*`.
        let name = f.file_name().unwrap().to_string_lossy().into_owned();
        let (hash, rest) = name.split_once('.').unwrap();
        let hash = u64::from_str_radix(hash, 16).unwrap();
        let op = rest.strip_suffix(".eelf").unwrap();
        assert!(
            cache.load(hash, op).is_some(),
            "sidecar {name} fails validation after recovery"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_promotes_on_disk_fragments() {
    let (base, twin) = near_duplicate_pair();
    let dir = tmp_dir("promote");

    // First daemon: record the base image's fragments, then die.
    let (server, client) = start(&dir);
    let (_, _, fragments) = expect_ok(client.op("disasm", Payload::Inline(base.clone())).unwrap());
    let total = fragments.expect("computed response reports fragments").1;
    assert!(total > 1);
    shutdown(server, &client);

    // Second daemon, cold memory, same directory: the twin has never
    // been seen (whole-image miss) but every unchanged routine stitches
    // from the promoted .eelf sidecars.
    let (server, client) = start(&dir);
    let (tier, _, fragments) =
        expect_ok(client.op("disasm", Payload::Inline(twin.clone())).unwrap());
    assert!(!tier.is_hit());
    let (hits, twin_total) = fragments.expect("computed response reports fragments");
    assert_eq!(twin_total, total);
    assert_eq!(
        hits,
        total - 1,
        "all unchanged routines promote from disk after restart"
    );
    // Same twin again: now a whole-image memory hit, no decomposition.
    let (tier, _, fragments) =
        expect_ok(client.op("disasm", Payload::Inline(twin.clone())).unwrap());
    assert_eq!(tier, CacheTier::Memory);
    assert_eq!(fragments, None);
    shutdown(server, &client);
    let _ = fs::remove_dir_all(&dir);
}
