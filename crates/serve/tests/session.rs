//! Integration tests for pipelined session connections: out-of-order
//! completion, in-flight window backpressure, mid-session shutdown, and
//! coexistence with plain v1 single-shot clients.

use eel_cc::Personality;
use eel_serve::{CacheTier, Client, Payload, Request, Response, Server, ServerConfig};

fn suite_wefs() -> Vec<(String, Vec<u8>)> {
    eel_progen::suite()
        .iter()
        .map(|w| {
            let image = eel_progen::compile(w, Personality::Gcc).expect("compile workload");
            (w.name.to_string(), image.to_bytes())
        })
        .collect()
}

/// A generated (non-suite) image whose cold `instrument` takes ~200ms:
/// slow enough that frames pipelined behind it are read while it still
/// computes, even on a one-core box. (Some seeds generate programs the
/// compiler rejects; skip those.)
fn big_wef() -> Vec<u8> {
    (0..16)
        .find_map(|seed| {
            let program = eel_progen::random_program(seed, &eel_progen::GenConfig::default());
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .expect("a compilable seed")
        .to_bytes()
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn request(op: &str, wef: &[u8]) -> Request {
    Request {
        op: op.into(),
        payload: Payload::Inline(wef.to_vec()),
    }
}

/// A slow cold op pipelined behind fast ones completes *after* them:
/// fast responses overtake on the wire, proving the mux really answers
/// out of order instead of head-of-line blocking.
#[test]
fn fast_response_overtakes_slow_one() {
    let server = Server::start(ServerConfig {
        workers: 2,
        session_workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let wef = big_wef();

    let mut session = client.open_session(8).expect("open session");
    assert!(session.window() >= 5, "granted a usable window");

    // Cold instrument re-runs the whole per-routine pipeline; a ping is
    // a microsecond. Submission order: slow first, then four pings.
    let slow = session.submit(&request("instrument", &wef)).expect("slow");
    let mut pings = Vec::new();
    for _ in 0..4 {
        pings.push(
            session
                .submit(&Request {
                    op: "ping".into(),
                    payload: Payload::none(),
                })
                .expect("fast"),
        );
    }

    let mut order = Vec::new();
    for _ in 0..5 {
        let (id, resp) = session.recv().expect("reply");
        let (_, body) = expect_ok(resp);
        if id == slow {
            assert!(!body.is_empty(), "instrument returned the edited WEF");
        } else {
            assert!(pings.contains(&id));
            assert_eq!(body, b"pong");
        }
        order.push(id);
    }
    assert_ne!(
        order.first(),
        Some(&slow),
        "at least one ping overtook the cold instrument (order {order:?})"
    );

    session.goodbye().expect("goodbye");
    server.shutdown();
    server.wait();
}

/// Overflowing the granted in-flight window earns per-frame BUSY tagged
/// replies — and the connection survives to serve more requests.
#[test]
fn window_overflow_is_busy_per_frame_and_connection_survives() {
    let server = Server::start(ServerConfig {
        workers: 2,
        session_window: 1,
        session_workers: 1,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let wef = big_wef();

    let mut session = client.open_session(64).expect("open session");
    assert_eq!(session.window(), 1, "requested window clamped to config");

    // One slow request fills the window; pile more in behind it without
    // reading anything.
    let slow = session.submit(&request("instrument", &wef)).expect("slow");
    let mut overflow = Vec::new();
    for _ in 0..4 {
        overflow.push(
            session
                .submit(&Request {
                    op: "ping".into(),
                    payload: Payload::none(),
                })
                .expect("overflow submit"),
        );
    }

    let mut busy = 0;
    let mut slow_ok = false;
    for _ in 0..5 {
        let (id, resp) = session.recv().expect("reply");
        match resp {
            Response::Busy => {
                assert!(overflow.contains(&id), "only overflow frames go BUSY");
                busy += 1;
            }
            Response::Ok { body, .. } if id == slow => {
                assert!(!body.is_empty());
                slow_ok = true;
            }
            Response::Ok { body, .. } => {
                assert!(overflow.contains(&id));
                assert_eq!(body, b"pong", "an overflow ping that squeezed in");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(slow_ok, "the admitted request was answered");
    assert!(busy >= 1, "at least one overflow frame answered BUSY");

    // The connection is still healthy after the BUSYs.
    let id = session
        .submit(&Request {
            op: "ping".into(),
            payload: Payload::none(),
        })
        .expect("post-overflow submit");
    let (rid, resp) = session.recv().expect("post-overflow reply");
    assert_eq!(rid, id);
    assert_eq!(expect_ok(resp).1, b"pong");

    session.goodbye().expect("goodbye");
    server.shutdown();
    server.wait();
}

/// A shutdown arriving mid-session: every request already admitted is
/// answered (or cleanly erred) before the connection closes, and the
/// server actually stops.
#[test]
fn mid_session_shutdown_answers_in_flight_requests() {
    let server = Server::start(ServerConfig {
        workers: 2,
        session_workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let (_, wef) = suite_wefs().into_iter().next().expect("suite non-empty");

    let mut session = client.open_session(8).expect("open session");
    let work = session.submit(&request("cfg-summary", &wef)).expect("work");
    let stop = session
        .submit(&Request {
            op: "shutdown".into(),
            payload: Payload::none(),
        })
        .expect("shutdown");

    let mut answered = std::collections::HashSet::new();
    for _ in 0..2 {
        let (id, resp) = session.recv().expect("in-flight answered");
        match resp {
            Response::Ok { .. } | Response::Err(_) => {
                answered.insert(id);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(answered.contains(&work), "analysis request answered");
    assert!(answered.contains(&stop), "shutdown request answered");

    // The server is stopping: wait() must return rather than hang, and
    // new connections fail once the listener is gone.
    server.wait();
}

/// v1 single-shot clients and session clients interoperate on one
/// server, including through the shared content-addressed cache: a
/// result computed via one path is a memory hit via the other, with
/// byte-identical bodies.
#[test]
fn v1_and_session_clients_share_the_cache() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let (_, wef) = suite_wefs().into_iter().next().expect("suite non-empty");

    // v1 computes stat...
    let (tier, v1_stat) = expect_ok(client.op("stat", Payload::Inline(wef.clone())).expect("v1"));
    assert_eq!(tier, CacheTier::Computed);

    let mut session = client.open_session(4).expect("open session");
    // ...the session hits it; the session computes disasm...
    let id = session.submit(&request("stat", &wef)).expect("submit");
    let (rid, resp) = session.recv().expect("recv");
    assert_eq!(rid, id);
    let (tier, session_stat) = expect_ok(resp);
    assert_eq!(tier, CacheTier::Memory, "session hit the v1-computed entry");
    assert_eq!(session_stat, v1_stat, "identical bytes across modes");

    let id = session.submit(&request("disasm", &wef)).expect("submit");
    let (rid, resp) = session.recv().expect("recv");
    assert_eq!(rid, id);
    let (tier, session_disasm) = expect_ok(resp);
    assert_eq!(tier, CacheTier::Computed);
    session.goodbye().expect("goodbye");

    // ...and v1 hits that in turn.
    let (tier, v1_disasm) = expect_ok(client.op("disasm", Payload::Inline(wef)).expect("v1"));
    assert_eq!(tier, CacheTier::Memory, "v1 hit the session-computed entry");
    assert_eq!(v1_disasm, session_disasm);

    server.shutdown();
    server.wait();
}

/// `Client::batch` pipelines a mixed request list and returns responses
/// in request order, matching what one-connection-per-request returns.
#[test]
fn batch_returns_ordered_results_identical_to_single_shot() {
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let wefs = suite_wefs();
    let mut requests = Vec::new();
    for (_, wef) in &wefs {
        for op in ["stat", "cfg-summary"] {
            requests.push(request(op, wef));
        }
    }

    let batched = client.batch(&requests, 8).expect("batch");
    assert_eq!(batched.len(), requests.len());
    for (req, resp) in requests.iter().zip(&batched) {
        let (_, single) = expect_ok(client.request(req).expect("single-shot"));
        let Response::Ok { body, .. } = resp else {
            panic!("batch item failed: {resp:?}");
        };
        assert_eq!(
            body, &single,
            "batched {} matches its single-shot twin",
            req.op
        );
    }

    server.shutdown();
    server.wait();
}
