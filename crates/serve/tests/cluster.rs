//! Cluster integration test: three in-process shards behind a
//! [`ClusterClient`], exercising deterministic routing, per-shard cache
//! locality, order-independent configs, batch fan-out, and ring
//! failover when a shard dies.
//!
//! All three servers live in one process, so eel-obs counters are
//! **cluster-global** here: `serve.ops.stat.computed` counts every
//! computation on every shard, which is exactly what the single-
//! computation assertions below need. True per-shard metric assertions
//! (each daemon its own registry) live in the CI `cluster-smoke` job.

use eel_cc::Personality;
use eel_serve::{
    CacheTier, Client, ClusterClient, Payload, Request, Response, Server, ServerConfig,
};

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn metric(metrics: &str, kind: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| {
            let rest = l.strip_prefix(&format!("{kind} {name} "))?;
            rest.parse().ok()
        })
        .unwrap_or(0)
}

fn read_metrics(client: &Client) -> String {
    let (_, body) = expect_ok(client.control("metrics").expect("metrics"));
    String::from_utf8(body).expect("metrics are text")
}

fn stat(wef: &[u8]) -> Request {
    Request {
        op: "stat".into(),
        payload: Payload::Inline(wef.to_vec()),
    }
}

#[test]
fn three_shard_cluster_routes_caches_and_fails_over() {
    let mut servers: Vec<Server> = (0..3)
        .map(|_| {
            Server::start(ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let cluster = ClusterClient::connect(addrs.clone());
    // Any in-process client sees the process-global registry.
    let probe = Client::connect(addrs[0].clone());

    // Six distinct images spread (hash-dependently) over the ring.
    let images: Vec<Vec<u8>> = [10u32, 20, 30, 40, 50, 60]
        .iter()
        .map(|&n| {
            let w = eel_progen::spim_like(n);
            eel_progen::compile(&w, Personality::Gcc)
                .expect("compile")
                .to_bytes()
        })
        .collect();

    // Pass 1: every image is computed exactly once, cluster-wide —
    // consistent hashing sends each image's requests to one shard, so
    // N images cost N computations no matter how many land where.
    let computed_before = metric(&read_metrics(&probe), "counter", "serve.ops.stat.computed");
    let mut bodies = Vec::new();
    for wef in &images {
        let (tier, body) = expect_ok(cluster.request(&stat(wef)).expect("pass 1"));
        assert_eq!(tier, CacheTier::Computed, "cold request computes");
        bodies.push(body);
    }
    let computed_after = metric(&read_metrics(&probe), "counter", "serve.ops.stat.computed");
    assert_eq!(
        computed_after - computed_before,
        images.len() as u64,
        "one computation per image across the whole cluster"
    );

    // Pass 2: cache locality — the same image routes back to the same
    // shard, whose memory tier now holds the result.
    for (wef, body) in images.iter().zip(&bodies) {
        let (tier, b) = expect_ok(cluster.request(&stat(wef)).expect("pass 2"));
        assert_eq!(tier, CacheTier::Memory, "warm request hits its home shard");
        assert_eq!(&b, body);
    }

    // A client configured with the same shards in a different order
    // routes every image identically (all hits, same bytes) — placement
    // depends on the address *set*, not the list.
    let mut rotated = addrs.clone();
    rotated.rotate_left(1);
    let reordered = ClusterClient::connect(rotated);
    for (i, (wef, body)) in images.iter().zip(&bodies).enumerate() {
        let req = stat(wef);
        assert_eq!(
            cluster.addrs()[cluster.shard_for(&req)],
            reordered.addrs()[reordered.shard_for(&req)],
            "image {i} routes to the same shard under both configs"
        );
        let (tier, b) = expect_ok(reordered.request(&req).expect("reordered request"));
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(&b, body);
    }

    // Batch fan-out: per-shard sessions answer in request order with
    // the same bytes as the one-shots.
    let reqs: Vec<Request> = images.iter().map(|w| stat(w)).collect();
    let batched = cluster.batch(&reqs, 8).expect("cluster batch");
    assert_eq!(batched.len(), images.len());
    for (resp, body) in batched.into_iter().zip(&bodies) {
        let (_, b) = expect_ok(resp);
        assert_eq!(&b, body, "batched reply matches one-shot");
    }

    // Failover: kill image[0]'s home shard; its requests walk the ring
    // to the next distinct shard and come back byte-identical (every
    // shard computes the same results — a mis-placement only costs a
    // cache miss).
    let victim_req = stat(&images[0]);
    let victim_addr = cluster.addrs()[cluster.shard_for(&victim_req)].clone();
    let victim_idx = servers
        .iter()
        .position(|s| s.local_addr().to_string() == victim_addr)
        .expect("victim server");
    let victim = servers.remove(victim_idx);
    victim.shutdown();
    victim.wait();
    let survivor = Client::connect(servers[0].local_addr().to_string());

    let failover_before = metric(
        &read_metrics(&survivor),
        "counter",
        "serve.cluster.failover",
    );
    let (tier, b) = expect_ok(cluster.request(&victim_req).expect("failover request"));
    assert_eq!(tier, CacheTier::Computed, "successor shard computes fresh");
    assert_eq!(&b, &bodies[0], "failed-over reply is byte-identical");
    let failover_after = metric(
        &read_metrics(&survivor),
        "counter",
        "serve.cluster.failover",
    );
    assert!(
        failover_after > failover_before,
        "failover is metered under serve.cluster.failover"
    );

    // Fleet control keeps answering: the dead shard reports its error,
    // the survivors still pong.
    let answers = cluster.control_each("ping");
    assert_eq!(answers.len(), 3);
    let mut pongs = 0;
    for (addr, result) in answers {
        match result {
            Ok(resp) => {
                let (_, body) = expect_ok(resp);
                assert_eq!(body, b"pong");
                pongs += 1;
            }
            Err(_) => assert_eq!(addr, victim_addr, "only the killed shard errors"),
        }
    }
    assert_eq!(pongs, 2, "both survivors answer control ops");

    for server in servers {
        server.shutdown();
        server.wait();
    }
}
