//! Incremental serving across near-duplicate images: analyzing a base
//! image records per-routine fragments, and a one-routine twin then
//! stitches every unchanged routine from the fragment tier — while its
//! response stays byte-identical to what a cold daemon computes.

use eel_serve::{CacheTier, Payload, Response, Server, ServerConfig};

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>, Option<(u32, u32)>) {
    match resp {
        Response::Ok {
            tier,
            body,
            fragments,
            ..
        } => (tier, body, fragments),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("counter {name} "))?.parse().ok())
        .unwrap_or(0)
}

/// A base image and a twin differing in exactly one routine (one ALU
/// immediate bumped), as WEF bytes.
fn near_duplicate_pair() -> (Vec<u8>, Vec<u8>) {
    let config = eel_progen::GenConfig {
        functions: 6,
        ..eel_progen::GenConfig::default()
    };
    // Not every generated program compiles (layout limits); take the
    // first seed that does, like the benchmarks do.
    let base = (0..16)
        .find_map(|seed| {
            let program = eel_progen::random_program(seed, &config);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .expect("some seed compiles");
    let mut twin = base.clone();
    eel_progen::mutate_routine(&mut twin, 0).expect("base has an ALU immediate");
    assert_ne!(base.to_bytes(), twin.to_bytes(), "twin must differ");
    (base.to_bytes(), twin.to_bytes())
}

#[test]
fn twin_stitches_all_unchanged_routines_and_matches_cold_output() {
    let (base, twin) = near_duplicate_pair();

    // Cold daemon: the twin from scratch, no fragments to reuse.
    let cold_server = Server::start(ServerConfig::default()).expect("start cold server");
    let cold_client = eel_serve::Client::connect(cold_server.local_addr().to_string());
    let mut cold_bodies = Vec::new();
    for op in ["disasm", "instrument"] {
        let (_, body, fragments) =
            expect_ok(cold_client.op(op, Payload::Inline(twin.clone())).expect(op));
        let (hits, total) = fragments.expect("computed response reports fragments");
        assert_eq!(hits, 0, "cold {op}: nothing to reuse");
        assert!(total > 0);
        cold_bodies.push(body);
    }
    drop(cold_client);
    cold_server.shutdown();

    // Warm daemon: base first (records fragments), then the twin.
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.local_addr().to_string();
    let client = eel_serve::Client::connect(addr.clone());
    for (op, cold_body) in ["disasm", "instrument"].iter().zip(&cold_bodies) {
        let (_, _, fragments) = expect_ok(client.op(op, Payload::Inline(base.clone())).expect(op));
        let (hits, total) = fragments.expect("computed response reports fragments");
        assert_eq!(hits, 0, "first sighting of the base: all misses");

        let (tier, body, fragments) =
            expect_ok(client.op(op, Payload::Inline(twin.clone())).expect(op));
        assert!(!tier.is_hit(), "twin is a distinct image: whole-image miss");
        let (twin_hits, twin_total) = fragments.expect("computed response reports fragments");
        assert_eq!(twin_total, total, "same routine count in both images");
        assert_eq!(
            twin_hits,
            twin_total - 1,
            "{op}: every routine but the mutated one stitches from fragments"
        );
        assert_eq!(&body, cold_body, "{op}: stitched output == cold output");

        // A whole-image LRU hit replays stored bytes — no fragment
        // accounting on that path.
        let (tier, body, fragments) =
            expect_ok(client.op(op, Payload::Inline(twin.clone())).expect(op));
        assert!(tier.is_hit());
        assert_eq!(&body, cold_body);
        assert_eq!(fragments, None, "cache hits skip fragment stitching");
    }

    let (_, metrics, _) = expect_ok(client.control("metrics").expect("metrics"));
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert!(
        counter(&metrics, "serve.cache.fragment.hit") > 0,
        "fragment hits surfaced in metrics: {metrics}"
    );
    assert!(counter(&metrics, "serve.cache.fragment.write") > 0);
    assert!(counter(&metrics, "serve.cache.fragment.miss") > 0);
    server.shutdown();
}
