//! Loopback integration tests: a real server on 127.0.0.1 exercised by
//! concurrent clients over progen workloads.

use eel_cc::Personality;
use eel_exe::Image;
use eel_serve::{CacheTier, Client, Payload, Request, Response, Server, ServerConfig};
use std::sync::Mutex;
use std::time::Duration;

/// The two backpressure tests rely on sleep-based timing; they take this
/// lock so they never run while the compute-heavy tests are hogging the
/// cores on the parallel test harness.
static TIMING: Mutex<()> = Mutex::new(());

fn suite_wefs() -> Vec<(String, Vec<u8>)> {
    eel_progen::suite()
        .iter()
        .map(|w| {
            let image = eel_progen::compile(w, Personality::Gcc).expect("compile workload");
            (w.name.to_string(), image.to_bytes())
        })
        .collect()
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn metric(metrics: &str, kind: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|l| {
        let rest = l.strip_prefix(&format!("{kind} {name} "))?;
        rest.parse().ok()
    })
}

/// The tentpole acceptance test: N concurrent clients firing identical
/// requests dedupe onto one computation; a follow-up request is an LRU
/// hit; the metrics op shows the hit counters; shutdown is clean (wait()
/// propagates any worker panic).
#[test]
fn concurrent_clients_dedupe_onto_one_computation() {
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_string();
    let client = Client::connect(addr.clone());

    let (tier, body) = expect_ok(client.control("ping").expect("ping"));
    assert!(!tier.is_hit());
    assert_eq!(body, b"pong");

    let (name, wef) = suite_wefs().into_iter().next().expect("suite non-empty");

    // 8 concurrent identical requests: single-flight means exactly one
    // computes; the others join it (reported as cached) or hit the LRU.
    const CLIENTS: usize = 8;
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let client = Client::connect(addr.clone());
        let wef = wef.clone();
        handles.push(std::thread::spawn(move || {
            expect_ok(
                client
                    .op("cfg-summary", Payload::Inline(wef))
                    .expect("cfg-summary"),
            )
        }));
    }
    let results: Vec<(CacheTier, Vec<u8>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let bodies: Vec<&Vec<u8>> = results.iter().map(|(_, b)| b).collect();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "all {CLIENTS} clients saw the identical result for {name}"
    );
    assert!(!bodies[0].is_empty());

    // A later identical request is a straight LRU hit.
    let (tier, _) = expect_ok(
        client
            .op("cfg-summary", Payload::Inline(wef.clone()))
            .expect("repeat"),
    );
    assert_eq!(tier, CacheTier::Memory, "second identical request hits");

    // A different op over the same image misses the result cache but
    // reuses the shared analysis.
    let (tier, stat_body) = expect_ok(client.op("stat", Payload::Inline(wef)).expect("stat"));
    assert_eq!(tier, CacheTier::Computed, "different op, different key");
    assert!(String::from_utf8(stat_body).unwrap().contains("routines:"));

    let (_, metrics) = expect_ok(client.control("metrics").expect("metrics"));
    let metrics = String::from_utf8(metrics).expect("metrics are text");
    let computed = metric(&metrics, "counter", "serve.ops.cfg-summary.computed")
        .expect("computed counter present");
    assert_eq!(
        computed, 1,
        "single-flight: one computation for {CLIENTS} clients\n{metrics}"
    );
    let hits = metric(&metrics, "counter", "serve.cache.hit").expect("hit counter present");
    assert!(
        hits >= CLIENTS as u64,
        "joiners + repeat all counted as hits\n{metrics}"
    );
    assert!(metric(&metrics, "counter", "serve.cache.miss").unwrap_or(0) >= 2);

    let (_, body) = expect_ok(client.control("shutdown").expect("shutdown"));
    assert_eq!(body, b"shutting down");
    server.wait(); // panics if any worker/acceptor thread panicked
}

/// `instrument` returns a valid edited WEF whose behavior matches the
/// original, end to end over the wire.
#[test]
fn instrument_round_trips_over_the_wire() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let w = eel_progen::spim_like(50);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compile");
    let original = eel_emu::run_image(&image).expect("run original");

    let (_, wef) = expect_ok(
        client
            .op("instrument", Payload::Inline(image.to_bytes()))
            .expect("instrument"),
    );
    let edited = Image::from_bytes(&wef).expect("edited WEF parses");
    let outcome = eel_emu::run_image(&edited).expect("run edited");
    assert_eq!(outcome.exit_code, original.exit_code);

    server.shutdown();
    server.wait();
}

/// Distinct cold images whose `instrument` each takes ~200ms: the wedge
/// load for the backpressure tests. Distinct hashes matter — identical
/// images would single-flight onto one computation and free the
/// executors early. (Some seeds generate programs the compiler rejects;
/// skip those.)
fn wedge_wefs(n: usize) -> Vec<Vec<u8>> {
    let wefs: Vec<Vec<u8>> = (0..64)
        .filter_map(|seed| {
            let program = eel_progen::random_program(seed, &eel_progen::GenConfig::default());
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .map(|img| img.to_bytes())
        .take(n)
        .collect();
    assert_eq!(wefs.len(), n, "enough compilable seeds");
    wefs
}

/// Saturates the whole executor pool through one session (session jobs
/// are admitted by the in-flight window, not the v1 queue) and returns
/// the open session so the wedge stays pending until it is dropped.
fn wedge_executors(client: &Client, wefs: &[Vec<u8>]) -> eel_serve::Session {
    let mut session = client
        .open_session(wefs.len() as u32)
        .expect("open wedge session");
    for wef in wefs {
        session
            .submit(&Request {
                op: "instrument".into(),
                payload: Payload::Inline(wef.clone()),
            })
            .expect("submit wedge");
    }
    session
}

/// With every executor wedged and the 1-deep admission queue full, the
/// reactor answers a fresh one-shot with BUSY at decode time — no
/// executor involvement, metered under `serve.conn.busy`.
#[test]
fn bounded_queue_overflows_to_busy() {
    let _serial = TIMING.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 1,
        timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let client = Client::connect(addr.to_string());

    // Four slow session jobs keep both executors busy back to back.
    let mut wedge = wedge_executors(&client, &wedge_wefs(4));
    std::thread::sleep(Duration::from_millis(150));

    // The filler is admitted (queue depth 1) and waits for an executor;
    // it must be answered eventually, just late.
    let filler = {
        let client = client.clone();
        std::thread::spawn(move || client.control("ping").expect("filler completes"))
    };
    std::thread::sleep(Duration::from_millis(100));

    let resp = client.control("ping").expect("exchange completes");
    assert_eq!(resp, Response::Busy, "full admission queue answers BUSY");

    // Drain the wedge; everything admitted still completes.
    for _ in 0..4 {
        let (_, resp) = wedge.recv().expect("wedge reply");
        expect_ok(resp);
    }
    wedge.goodbye().expect("goodbye");
    assert_eq!(filler.join().unwrap(), {
        Response::Ok {
            tier: CacheTier::Computed,
            body: b"pong".to_vec(),
            fragments: None,
            discovery: None,
            machine: None,
        }
    });

    let (_, metrics) = expect_ok(client.control("metrics").expect("metrics"));
    let metrics = String::from_utf8(metrics).expect("metrics are text");
    assert!(
        metric(&metrics, "counter", "serve.conn.busy").unwrap_or(0) >= 1,
        "reactor BUSY is metered\n{metrics}"
    );

    server.shutdown();
    server.wait();
}

/// A one-shot that waited for an executor longer than the timeout budget
/// is answered with a timeout error, not served stale.
#[test]
fn queued_request_past_deadline_times_out() {
    let _serial = TIMING.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let client = Client::connect(addr.to_string()).with_timeout(Some(Duration::from_secs(30)));

    // Eight slow session jobs sit ahead of the ping in the executor
    // channel; by the time an executor dequeues the ping (~800ms in),
    // its queue age is far past the 500ms budget.
    let mut wedge = wedge_executors(&client, &wedge_wefs(8));
    std::thread::sleep(Duration::from_millis(100));

    let resp = client.control("ping").expect("exchange completes");
    match resp {
        Response::Err(msg) => assert!(msg.contains("timed out"), "unexpected error: {msg}"),
        other => panic!("expected queue-timeout error, got {other:?}"),
    }

    for _ in 0..8 {
        let (_, resp) = wedge.recv().expect("wedge reply");
        expect_ok(resp);
    }
    wedge.goodbye().expect("goodbye");
    server.shutdown();
    server.wait();
}

/// Path payloads are read server-side; a missing path is a clean error.
#[test]
fn path_payloads_and_errors() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let dir = std::env::temp_dir().join(format!("eel-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("spim.wef");
    let w = eel_progen::spim_like(40);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compile");
    image.write_file(&path).expect("write WEF");

    let (_, body) = expect_ok(
        client
            .op("stat", Payload::Path(path.display().to_string()))
            .expect("stat via path"),
    );
    assert!(String::from_utf8(body).unwrap().contains("routines:"));

    match client
        .op(
            "stat",
            Payload::Path(dir.join("absent.wef").display().to_string()),
        )
        .expect("exchange completes")
    {
        Response::Err(msg) => assert!(msg.contains("cannot read")),
        other => panic!("expected error for missing path, got {other:?}"),
    }

    match client.control("frobnicate").expect("exchange completes") {
        Response::Err(msg) => assert!(msg.contains("unknown op")),
        other => panic!("expected unknown-op error, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
    server.wait();
}
