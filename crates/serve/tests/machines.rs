//! Cross-machine service dispatch: a real server answering for a MIPS
//! image through the generic (description-derived) pipeline, and the
//! cache-separation guarantee that byte-identical text under different
//! machine tags never shares an entry.

use eel_exe::{Image, Machine, Symbol, DATA_BASE, TEXT_BASE};
use eel_serve::{CacheTier, Client, Payload, Response, Server, ServerConfig};

fn mips_wef() -> Vec<u8> {
    let w = eel_progen::Workload {
        name: "serve-machines",
        source: "
            global total;
            fn tally(n) {
                var s = 0;
                while (n > 0) { s = s + n % 3; n = n - 1; }
                return s;
            }
            fn main() {
                var i;
                total = 0;
                for (i = 1; i < 15; i = i + 1) { total = total + tally(i); print(total); }
                return total & 63;
            }
        "
        .into(),
    };
    eel_progen::compile_machine(&w, eel_cc::Personality::Gcc, Machine::Mips)
        .expect("compile mips workload")
        .to_bytes()
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>, Option<Machine>) {
    match resp {
        Response::Ok {
            tier,
            body,
            machine,
            ..
        } => (tier, body, machine),
        other => panic!("expected Ok, got {other:?}"),
    }
}

/// The `machine-smoke` pass: stat, disasm, cfg-summary, liveness, and
/// instrument all answer for a MIPS image, with machine-appropriate
/// content, the machine tag on the wire, and behavior preserved by the
/// instrumented executable. The write path rejects cleanly.
#[test]
fn mips_image_is_served_through_the_generic_pipeline() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let wef = mips_wef();

    let (tier, body, machine) = expect_ok(
        client
            .op("stat", Payload::Inline(wef.clone()))
            .expect("stat"),
    );
    assert!(!tier.is_hit(), "first stat computes");
    assert_eq!(machine, Some(Machine::Mips), "machine tag rides the wire");
    let stat = String::from_utf8(body).unwrap();
    assert!(stat.contains("machine: mips"), "{stat}");
    assert!(stat.contains("discovery: symbols"), "{stat}");

    let (_, body, _) = expect_ok(
        client
            .op("disasm", Payload::Inline(wef.clone()))
            .expect("disasm"),
    );
    let listing = String::from_utf8(body).unwrap();
    assert!(listing.contains("<main>"), "{listing}");
    for mnemonic in ["addiu", "jal", "sw"] {
        assert!(listing.contains(mnemonic), "missing {mnemonic}:\n{listing}");
    }
    assert!(
        !listing.contains("sethi"),
        "sparc mnemonics in mips listing"
    );

    let (_, body, _) = expect_ok(
        client
            .op("cfg-summary", Payload::Inline(wef.clone()))
            .expect("cfg-summary"),
    );
    let summary = String::from_utf8(body).unwrap();
    assert!(summary.contains("TOTAL: routines="), "{summary}");

    let (_, body, _) = expect_ok(
        client
            .op("liveness", Payload::Inline(wef.clone()))
            .expect("liveness"),
    );
    let live = String::from_utf8(body).unwrap();
    assert!(live.contains("entry-live-in="), "{live}");

    // Instrument returns a runnable MIPS executable with unchanged
    // observable behavior.
    let original = eel_emu::run_image(&Image::from_bytes(&wef).unwrap()).expect("run original");
    let (_, body, machine) = expect_ok(
        client
            .op("instrument", Payload::Inline(wef.clone()))
            .expect("instrument"),
    );
    assert_eq!(machine, Some(Machine::Mips));
    let edited = Image::from_bytes(&body).expect("instrumented wef parses");
    assert_eq!(edited.machine, Machine::Mips);
    let outcome = eel_emu::run_image(&edited).expect("run instrumented");
    assert_eq!(outcome.exit_code, original.exit_code);
    assert_eq!(outcome.output, original.output);

    // The command-script write path is sparc-only and says so.
    match client.edit(wef, "counter main\napply\n").expect("edit rpc") {
        Response::Err(e) => assert!(e.contains("sparc-only"), "{e}"),
        other => panic!("edit on mips must fail, got {other:?}"),
    }

    drop(client);
    server.shutdown();
    server.wait();
}

/// Identical text under different machine tags is two different
/// programs: the content hash covers the header flags word, so the
/// second machine's request computes fresh instead of hitting the first
/// machine's cache entry — and reports its own backend.
#[test]
fn byte_identical_text_does_not_share_cache_entries() {
    // A fabricated image whose three words are valid under both
    // decoders (addu / jr $ra / nop), with one named routine.
    let mut sparc = Image::new(TEXT_BASE, DATA_BASE);
    for w in [0x0085_1021u32, 0x03e0_0008, 0] {
        sparc.text.extend_from_slice(&w.to_be_bytes());
    }
    sparc.entry = TEXT_BASE;
    sparc.symbols.push(Symbol::routine("f", TEXT_BASE));
    let mips = sparc.clone().with_machine(Machine::Mips);
    assert_eq!(sparc.text, mips.text);
    let (sparc_wef, mips_wef) = (sparc.to_bytes(), mips.to_bytes());
    assert_ne!(sparc_wef, mips_wef, "the tag lives in the header");

    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let (tier, sparc_body, machine) = expect_ok(
        client
            .op("stat", Payload::Inline(sparc_wef.clone()))
            .expect("stat sparc"),
    );
    assert!(!tier.is_hit());
    assert_eq!(machine, Some(Machine::Sparc));
    let (tier, _, _) = expect_ok(
        client
            .op("stat", Payload::Inline(sparc_wef))
            .expect("stat sparc warm"),
    );
    assert!(tier.is_hit(), "same bytes, same machine: a cache hit");

    // Same text, different tag: a miss, served by the other backend.
    let (tier, mips_body, machine) = expect_ok(
        client
            .op("stat", Payload::Inline(mips_wef))
            .expect("stat mips"),
    );
    assert!(!tier.is_hit(), "the machine tag separates cache entries");
    assert_eq!(machine, Some(Machine::Mips));
    assert_ne!(sparc_body, mips_body);
    let (sparc_stat, mips_stat) = (
        String::from_utf8(sparc_body).unwrap(),
        String::from_utf8(mips_body).unwrap(),
    );
    assert!(sparc_stat.contains("machine: sparc"), "{sparc_stat}");
    assert!(mips_stat.contains("machine: mips"), "{mips_stat}");

    drop(client);
    server.shutdown();
    server.wait();
}
