//! Disk-spill integration tests: servers with `cache_dir` set, killed
//! and restarted over the same directory, with deliberate corruption in
//! between.
//!
//! The eel-obs metrics registry is process-global and these assertions
//! read it, so every test takes the serializing lock and resets the
//! registry first — the tests in this binary never run interleaved.

use eel_cc::Personality;
use eel_serve::{CacheTier, Client, Payload, Response, Server, ServerConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eel-spill-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn wef(routines: u32) -> Vec<u8> {
    let w = eel_progen::spim_like(routines);
    eel_progen::compile(&w, Personality::Gcc)
        .expect("compile workload")
        .to_bytes()
}

fn start(config: ServerConfig) -> (Server, Client) {
    let server = Server::start(config).expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    (server, client)
}

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn counter(client: &Client, name: &str) -> u64 {
    let (_, metrics) = expect_ok(client.control("metrics").expect("metrics"));
    let metrics = String::from_utf8(metrics).expect("metrics are text");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("counter {name} "))?.parse().ok())
        .unwrap_or(0)
}

fn shutdown(server: Server, client: &Client) {
    let _ = client.control("shutdown");
    server.wait();
}

/// Entry files committed in a cache directory.
fn entries(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".eelc"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// The tentpole acceptance path: a daemon restart over the same cache
/// directory serves the repeated request from disk — zero re-analysis
/// (`serve.ops.<op>.computed` stays 0, `serve.cache.disk.hit` is 1) —
/// and the disk hit is promoted so the next repeat is a memory hit.
#[test]
fn restart_serves_from_disk_with_zero_recomputation() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("restart");
    let wef = wef(40);

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let (tier, cold_body) = expect_ok(
        client
            .op("cfg-summary", Payload::Inline(wef.clone()))
            .expect("cold request"),
    );
    assert_eq!(tier, CacheTier::Computed, "cold cache computes");
    assert!(
        counter(&client, "serve.cache.disk.write") >= 1,
        "write-through spilled (whole-image entry plus fragment sidecars)"
    );
    shutdown(server, &client);
    assert_eq!(
        entries(&dir).len(),
        1,
        "whole-image entry survived shutdown"
    );

    // "Restart": a fresh server over the same directory, fresh metrics.
    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let (tier, warm_body) = expect_ok(
        client
            .op("cfg-summary", Payload::Inline(wef.clone()))
            .expect("warm request"),
    );
    assert_eq!(tier, CacheTier::Disk, "restart serves from disk");
    assert_eq!(warm_body, cold_body, "disk round trip is byte-identical");
    assert_eq!(
        counter(&client, "serve.ops.cfg-summary.computed"),
        0,
        "zero re-analysis after restart"
    );
    assert_eq!(counter(&client, "serve.cache.disk.hit"), 1);

    // The disk hit was promoted into the LRU.
    let (tier, _) = expect_ok(
        client
            .op("cfg-summary", Payload::Inline(wef))
            .expect("repeat"),
    );
    assert_eq!(tier, CacheTier::Memory, "promoted entry is a memory hit");
    shutdown(server, &client);
    fs::remove_dir_all(&dir).ok();
}

/// A deliberately corrupted cache file is skipped without a panic: the
/// result is recomputed, the corrupt counter increments, and the entry
/// is rewritten cleanly.
#[test]
fn corrupted_entry_is_skipped_and_rewritten() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("corrupt");
    let wef = wef(30);

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    expect_ok(
        client
            .op("stat", Payload::Inline(wef.clone()))
            .expect("seed entry"),
    );
    shutdown(server, &client);

    // Flip a payload byte in the single committed entry.
    let files = entries(&dir);
    assert_eq!(files.len(), 1);
    let mut bytes = fs::read(&files[0]).expect("read entry");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&files[0], &bytes).expect("corrupt entry");

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let (tier, _) = expect_ok(
        client
            .op("stat", Payload::Inline(wef.clone()))
            .expect("request"),
    );
    assert_eq!(tier, CacheTier::Computed, "corrupt entry forces recompute");
    assert_eq!(counter(&client, "serve.cache.disk.corrupt"), 1);
    assert_eq!(counter(&client, "serve.ops.stat.computed"), 1);

    // The recompute rewrote the entry; a restart now serves it warm.
    shutdown(server, &client);
    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let (tier, _) = expect_ok(client.op("stat", Payload::Inline(wef)).expect("rewritten"));
    assert_eq!(tier, CacheTier::Disk, "rewritten entry serves from disk");
    shutdown(server, &client);
    fs::remove_dir_all(&dir).ok();
}

/// An entry carrying a bumped format version is stale: ignored (no
/// panic, no garbage served) and rewritten in the current format.
#[test]
fn bumped_format_version_is_ignored_and_rewritten() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("version");
    let wef = wef(25);

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    expect_ok(
        client
            .op("liveness", Payload::Inline(wef.clone()))
            .expect("seed entry"),
    );
    shutdown(server, &client);

    // Rewrite the header's format version (bytes 4..6) to a future one.
    let files = entries(&dir);
    assert_eq!(files.len(), 1);
    let mut bytes = fs::read(&files[0]).expect("read entry");
    bytes[4..6].copy_from_slice(&(eel_serve::DISK_FORMAT_VERSION + 7).to_be_bytes());
    fs::write(&files[0], &bytes).expect("bump version");

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let (tier, _) = expect_ok(
        client
            .op("liveness", Payload::Inline(wef))
            .expect("request"),
    );
    assert_eq!(tier, CacheTier::Computed, "future version forces recompute");
    assert_eq!(counter(&client, "serve.ops.liveness.computed"), 1);
    shutdown(server, &client);

    // The rewritten entry carries the current version again.
    let bytes = fs::read(&entries(&dir)[0]).expect("read rewritten entry");
    assert_eq!(
        u16::from_be_bytes([bytes[4], bytes[5]]),
        eel_serve::DISK_FORMAT_VERSION
    );
    fs::remove_dir_all(&dir).ok();
}

/// LRU evictions demote to disk instead of discarding: with an
/// oversized-entry budget (every insert evicts its predecessor), an
/// evicted result whose spill file was removed reappears on disk, and a
/// later request for it is a disk hit, not a recompute.
#[test]
fn eviction_demotes_to_disk() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("demote");
    let wef_a = wef(20);
    let wef_b = wef(35);

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        // Tiny budget: every result is oversized, so each new insert
        // evicts the previous resident (the newest always survives).
        cache_bytes: 64,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    expect_ok(
        client
            .op("stat", Payload::Inline(wef_a.clone()))
            .expect("A"),
    );
    let a_files = entries(&dir);
    assert_eq!(a_files.len(), 1);
    // Remove A's write-through spill so only eviction-demotion can put
    // it back.
    fs::remove_file(&a_files[0]).expect("drop A's spill file");

    expect_ok(
        client
            .op("stat", Payload::Inline(wef_b))
            .expect("B evicts A"),
    );
    assert!(
        a_files[0].exists(),
        "evicted entry was demoted back to disk"
    );

    // A is out of memory but on disk: a repeat is a disk hit, computed
    // stays at 1.
    let (tier, _) = expect_ok(client.op("stat", Payload::Inline(wef_a)).expect("A again"));
    assert_eq!(tier, CacheTier::Disk);
    assert_eq!(
        counter(&client, "serve.ops.stat.computed"),
        2,
        "A and B, no third"
    );
    shutdown(server, &client);
    fs::remove_dir_all(&dir).ok();
}

/// An unwritable cache directory degrades gracefully to memory-only
/// service: the server starts, serves, and caches in memory; nothing
/// panics and nothing errors client-side.
#[test]
fn unwritable_cache_dir_degrades_to_memory_only() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let parent = tmp_dir("degrade");
    fs::create_dir_all(&parent).expect("mkdir");
    let blocker = parent.join("blocker");
    fs::write(&blocker, b"a file, not a directory").expect("write blocker");
    let wef = wef(15);

    eel_obs::reset();
    let (server, client) = start(ServerConfig {
        cache_dir: Some(blocker.join("cache")),
        ..ServerConfig::default()
    });
    let (tier, _) = expect_ok(
        client
            .op("stat", Payload::Inline(wef.clone()))
            .expect("first"),
    );
    assert_eq!(tier, CacheTier::Computed);
    let (tier, _) = expect_ok(client.op("stat", Payload::Inline(wef)).expect("second"));
    assert_eq!(tier, CacheTier::Memory, "memory tier still works");
    assert_eq!(counter(&client, "serve.cache.disk.hit"), 0);
    assert_eq!(counter(&client, "serve.cache.disk.write"), 0);
    shutdown(server, &client);
    fs::remove_dir_all(&parent).ok();
}
