//! Loopback tests for the `edit` write path: a kind-2 payload carries a
//! WEF plus a command script; the server replies with the edited image,
//! content-addressed by `(image_hash, script_hash)`.

use eel_exe::Image;
use eel_serve::{CacheTier, Client, Payload, Request, Response, Server, ServerConfig};

fn expect_ok(resp: Response) -> (CacheTier, Vec<u8>) {
    match resp {
        Response::Ok { tier, body, .. } => (tier, body),
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn metric(metrics: &str, kind: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|l| {
        let rest = l.strip_prefix(&format!("{kind} {name} "))?;
        rest.parse().ok()
    })
}

fn two_routine_wef() -> Vec<u8> {
    let src = "fn helper(x) { return x * 3 + 1; }\n\
               fn main() { var i; var t = 0;\n\
                 for (i = 0; i < 5; i = i + 1) { t = t + helper(i); }\n\
                 print(t); return t; }\n";
    let image = eel_cc::compile_str(src, &eel_cc::Options::default()).expect("compile");
    image.to_bytes()
}

/// The acceptance path: an edit request computes once, the identical
/// request is a memory hit with a byte-identical body, and the edited
/// image still behaves like the original under the emulator.
#[test]
fn second_identical_edit_request_is_a_byte_identical_cache_hit() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let wef = two_routine_wef();
    let script = "counter main\ncounter helper\napply\n";

    let (tier, edited) = expect_ok(client.edit(wef.clone(), script).expect("edit"));
    assert_eq!(tier, CacheTier::Computed, "first request computes");
    assert_ne!(edited, wef, "counters change the image");

    let original = eel_emu::run_image(&Image::from_bytes(&wef).unwrap()).expect("run original");
    let outcome = eel_emu::run_image(&Image::from_bytes(&edited).unwrap()).expect("run edited");
    assert_eq!(outcome.exit_code, original.exit_code);

    let (tier, again) = expect_ok(client.edit(wef.clone(), script).expect("repeat edit"));
    assert_eq!(tier, CacheTier::Memory, "second identical request hits");
    assert_eq!(again, edited, "cache returns the identical bytes");

    // A different script over the same image is a different cache key.
    let (tier, other) = expect_ok(
        client
            .edit(wef.clone(), "counter main\napply\n")
            .expect("edit"),
    );
    assert_eq!(tier, CacheTier::Computed);
    assert_ne!(other, edited);

    // The obs registry is process-global (shared across tests in this
    // binary), so assert presence and a floor rather than an exact count.
    let (_, metrics) = expect_ok(client.control("metrics").expect("metrics"));
    let metrics = String::from_utf8(metrics).expect("metrics are text");
    let computed = metric(&metrics, "counter", "serve.ops.edit.computed")
        .expect("edit computed counter present");
    assert!(computed >= 2, "two distinct scripts computed\n{metrics}");

    server.shutdown();
    server.wait();
}

/// Edit requests ride the pipelined v2 session protocol unchanged — the
/// frame encoding is shared with one-shot requests.
#[test]
fn edit_requests_flow_through_a_pipelined_session() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());

    let wef = two_routine_wef();
    let script = "counter helper\napply\n";
    let req = Request {
        op: "edit".into(),
        payload: Payload::Edit {
            wef: wef.clone(),
            script: script.into(),
        },
    };

    let mut session = client.open_session(0).expect("open session");
    let first = session.submit(&req).expect("submit");
    let second = session.submit(&req).expect("submit");
    let mut replies = std::collections::HashMap::new();
    for _ in 0..2 {
        let (id, resp) = session.recv().expect("recv");
        replies.insert(id, resp);
    }
    session.goodbye().expect("goodbye");

    let (_, a) = expect_ok(replies.remove(&first).expect("first reply"));
    let (tier, b) = expect_ok(replies.remove(&second).expect("second reply"));
    assert_eq!(a, b, "same session, same bytes");
    assert!(tier.is_hit(), "second submission joins or hits the first");
    assert!(Image::from_bytes(&a).is_ok(), "body is a valid WEF");

    server.shutdown();
    server.wait();
}

/// Script and payload mistakes are clean protocol errors, not hangs.
#[test]
fn edit_errors_are_reported_cleanly() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string());
    let wef = two_routine_wef();

    match client
        .edit(wef.clone(), "counter no_such_routine\n")
        .expect("exchange completes")
    {
        Response::Err(msg) => assert!(msg.contains("no routine named"), "got: {msg}"),
        other => panic!("expected script error, got {other:?}"),
    }

    match client
        .op("edit", Payload::Inline(wef))
        .expect("exchange completes")
    {
        Response::Err(msg) => assert!(msg.contains("kind-2"), "got: {msg}"),
        other => panic!("expected payload-kind error, got {other:?}"),
    }

    match client
        .op(
            "stat",
            Payload::Edit {
                wef: Vec::new(),
                script: String::new(),
            },
        )
        .expect("exchange completes")
    {
        Response::Err(msg) => assert!(msg.contains("edit payload"), "got: {msg}"),
        other => panic!("expected payload-kind error, got {other:?}"),
    }

    server.shutdown();
    server.wait();
}
