//! The server's analysis operations.
//!
//! Every operation is a pure function of a shared [`Analysis`] (the
//! validated image plus §3.1 routine discovery), which is what makes the
//! content-addressed cache sound: same WEF bytes + same op name ⇒ same
//! result. Text-producing ops render stable, line-oriented listings;
//! `instrument` returns the edited executable's WEF bytes.
//!
//! ## Per-routine fragments
//!
//! Whole-image results additionally decompose per routine: each op's
//! output is a deterministic composition of per-routine pieces
//! ("fragments") keyed by the routine's content key
//! ([`eel_core::routine_key`]). [`run_op_fragments`] consults a
//! [`FragmentTier`] before building each routine — a validated hit
//! skips that routine's CFG construction (and, for `instrument`, its
//! liveness and snippet materialization too) and stitches the cached
//! piece into the output. A near-duplicate image that shares N−1
//! routines with a cached one therefore recomputes only the changed
//! routine. Reuse is validated (start address + escape-target
//! registration, see [`eel_core::FragmentMeta`]) so the composed result
//! is **byte-identical** to a cold recompute; anything suspicious falls
//! back to the live build.

use crate::cache::CostClass;
use eel_core::{
    generic_cfg, generic_disasm, generic_liveness, instrument_block_counters,
    uses_generic_pipeline, Analysis, BlockKind, Cfg, CfgBatchItem, EdgeId, Executable,
    FragmentMeta, Liveness, Routine, Snippet,
};
use eel_exe::Image;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// The operations whose results flow through the content-addressed cache.
/// (`ping`, `metrics`, and `shutdown` are control-plane requests handled
/// by the server itself.) Because every result here is a plain byte
/// string that is a pure function of the input image, all of them are
/// also eligible for the on-disk spill tier — success results persist
/// across restarts; error results stay memory-only.
pub const CACHED_OPS: &[&str] = &["disasm", "cfg-summary", "liveness", "stat", "instrument"];

/// A per-routine fragment store consulted by [`run_op_fragments`].
/// Implementations are free to back this with anything — the server
/// routes it through the shared LRU (under `(routine_key, "frag.<op>")`
/// keys) and the disk spill tier (`.eelf` sidecars); benches use a plain
/// in-memory map.
pub trait FragmentTier {
    /// The stored fragment for `(routine_key, op)`, if any.
    fn load(&self, key: u64, op: &str) -> Option<Vec<u8>>;
    /// Stores a freshly computed fragment for `(routine_key, op)`.
    fn store(&self, key: u64, op: &str, bytes: &[u8]);
}

/// The always-miss tier: probes return nothing, stores vanish. With
/// this tier [`run_op_fragments`] *is* the plain cold path, which is
/// exactly how [`run_op_with`] is implemented — one code path, so the
/// byte-identity of warm and cold composition is structural.
pub struct NoFragments;

impl FragmentTier for NoFragments {
    fn load(&self, _key: u64, _op: &str) -> Option<Vec<u8>> {
        None
    }
    fn store(&self, _key: u64, _op: &str, _bytes: &[u8]) {}
}

/// How much of an op's work the fragment tier absorbed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FragmentStats {
    /// Routines stitched from validated cached fragments.
    pub hits: u32,
    /// Routines the op processed in total.
    pub total: u32,
}

/// Runs one cacheable operation against a shared analysis, sequentially
/// (one analysis thread). Equivalent to `run_op_with(op, analysis, 1)`.
///
/// # Errors
///
/// A rendered message when the op is unknown or the underlying
/// analysis/editing step fails.
pub fn run_op(op: &str, analysis: &Analysis) -> Result<Vec<u8>, String> {
    run_op_with(op, analysis, 1)
}

/// Runs one cacheable operation, fanning the per-routine CFG builds out
/// over `threads` worker threads (0 = one per core, 1 = sequential) via
/// [`Executable::build_all_cfgs_probed`]. The result is **byte-for-byte
/// identical** at every thread count — parallelism here is purely a
/// latency knob, never a cache-correctness concern.
///
/// # Errors
///
/// As [`run_op`].
pub fn run_op_with(op: &str, analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    run_op_fragments(op, analysis, threads, &NoFragments).map(|(body, _)| body)
}

/// [`run_op_with`] with a per-routine [`FragmentTier`]: unchanged
/// routines stitch from cache, fresh *clean* routines write their
/// fragments back. Returns the composed body plus hit statistics.
///
/// # Errors
///
/// As [`run_op`].
pub fn run_op_fragments(
    op: &str,
    analysis: &Analysis,
    threads: usize,
    tier: &dyn FragmentTier,
) -> Result<(Vec<u8>, FragmentStats), String> {
    // Machine dispatch: the WEF header tag picks the pipeline. A
    // non-SPARC image routes through the generic description-derived
    // ops — the per-routine fragment tier is a SPARC editable-CFG
    // artifact (its meta records escape targets and block splits), so
    // generic results run cold at this layer. Whole-image caching above
    // still applies: the image hash covers the flags word, which
    // carries the machine tag, so byte-identical text under different
    // tags can never share an entry.
    if uses_generic_pipeline(analysis.machine()) {
        return run_op_generic(op, analysis).map(|b| (b, FragmentStats::default()));
    }
    match op {
        "disasm" => disasm(analysis, threads, tier),
        "cfg-summary" => cfg_summary(analysis, threads, tier),
        "liveness" => liveness(analysis, threads, tier),
        "stat" => stat(analysis).map(|b| (b, FragmentStats::default())),
        "instrument" => instrument(analysis, threads, tier),
        other => Err(unknown_op(other)),
    }
}

fn unknown_op(other: &str) -> String {
    format!("unknown op {other:?} (expected one of {CACHED_OPS:?}, edit, ping, metrics, shutdown)")
}

/// The generic (machine-dispatched) twins of the analysis ops, used for
/// every non-SPARC image: disassembly, CFG statistics, and liveness
/// come from the spawn-derived [`eel_core::MachineOps`] backend;
/// `instrument` places the per-block counters of
/// [`eel_core::instrument_block_counters`] rather than SPARC's per-edge
/// snippets. Output shapes mirror the SPARC renderings line for line so
/// clients parse one format.
fn run_op_generic(op: &str, analysis: &Analysis) -> Result<Vec<u8>, String> {
    eel_obs::counter(&format!("serve.ops.{}.generic", op)).add(1);
    match op {
        "disasm" => disasm_generic(analysis),
        "cfg-summary" => cfg_summary_generic(analysis),
        "liveness" => liveness_generic(analysis),
        "stat" => stat(analysis),
        "instrument" => {
            let (edited, _counters) =
                instrument_block_counters(analysis.image()).map_err(|e| err("instrument", e))?;
            Ok(edited.to_bytes())
        }
        other => Err(unknown_op(other)),
    }
}

fn disasm_generic(analysis: &Analysis) -> Result<Vec<u8>, String> {
    let image = analysis.image();
    let mut out = String::new();
    for routine in analysis.routines() {
        let _ = writeln!(
            out,
            "{:#010x} <{}>{}:",
            routine.start(),
            routine.name(),
            if routine.is_hidden() { " (hidden)" } else { "" }
        );
        for line in generic_disasm(image, routine) {
            let _ = writeln!(out, "  {line}");
        }
        out.push('\n');
    }
    Ok(out.into_bytes())
}

fn cfg_summary_generic(analysis: &Analysis) -> Result<Vec<u8>, String> {
    let image = analysis.image();
    let mut out = String::new();
    let (mut blocks, mut edges, mut insns) = (0u64, 0u64, 0u64);
    for routine in analysis.routines() {
        let cfg = generic_cfg(image, routine).map_err(|e| err("cfg-summary", e))?;
        let b = cfg.blocks.len() as u64;
        let e: u64 = cfg.blocks.iter().map(|blk| blk.succs.len() as u64).sum();
        let i: u64 = cfg
            .blocks
            .iter()
            .map(|blk| u64::from(blk.end - blk.start) / 4)
            .sum();
        let indirect = cfg
            .blocks
            .iter()
            .filter(|blk| blk.has_indirect_exit)
            .count();
        let _ = writeln!(
            out,
            "{}: blocks={b} edges={e} insns={i} indirect-exits={indirect}",
            routine.name()
        );
        blocks += b;
        edges += e;
        insns += i;
    }
    let _ = writeln!(
        out,
        "TOTAL: routines={} blocks={blocks} edges={edges} insns={insns}",
        analysis.routines().len()
    );
    Ok(out.into_bytes())
}

fn liveness_generic(analysis: &Analysis) -> Result<Vec<u8>, String> {
    let image = analysis.image();
    let mut out = String::new();
    for routine in analysis.routines() {
        let cfg = generic_cfg(image, routine).map_err(|e| err("liveness", e))?;
        let live = generic_liveness(image, &cfg);
        let entry = cfg
            .blocks
            .iter()
            .position(|b| b.start == routine.start())
            .unwrap_or(0);
        let regs: Vec<&str> = live.live_in[entry].iter().map(String::as_str).collect();
        let _ = writeln!(
            out,
            "{}: entry-live-in={{{}}} ({} regs)",
            routine.name(),
            regs.join(" "),
            regs.len()
        );
    }
    Ok(out.into_bytes())
}

/// The recompute [`CostClass`] of an op's cached result, steering the
/// LRU's cost-weighted eviction. `disasm` and `instrument` redo the
/// whole per-routine CFG pipeline (milliseconds); `stat`,
/// `cfg-summary`, and `liveness` render small summaries whose recompute
/// is comparable to a disk reload (tens of microseconds), so their
/// cache entries yield budget first. Fragment entries (`frag.<op>`
/// keys) inherit the class of the op they shard.
pub fn recompute_cost(op: &str) -> CostClass {
    if let Some(inner) = op.strip_prefix("frag.") {
        return recompute_cost(inner);
    }
    // `edit` results are keyed as `edit-{script_hash}` (one cache entry
    // per distinct script), so match on the prefix.
    if op == "edit" || op.starts_with("edit-") {
        return CostClass::Expensive;
    }
    match op {
        "disasm" | "instrument" => CostClass::Expensive,
        _ => CostClass::Cheap,
    }
}

fn err(op: &str, e: impl std::fmt::Display) -> String {
    format!("{op}: {e}")
}

/// Per-request memo of fragment loads: fan-out and stitch both probe,
/// so each `(routine_key, op)` hits the tier at most once.
type Loaded = HashMap<u64, Option<Vec<u8>>>;

/// Runs the probed CFG batch for one op. `payload_ok` pre-validates the
/// fragment's op payload so a stitch-phase hit is guaranteed renderable
/// (the meta prefix is validated by core).
fn batch_with_probe(
    op: &str,
    exec: &mut Executable,
    threads: usize,
    tier: &dyn FragmentTier,
    loaded: &mut Loaded,
    payload_ok: &dyn Fn(&[u8]) -> bool,
) -> Result<Vec<CfgBatchItem>, String> {
    let mut probe = |_r: &Routine, key: u64| -> Option<FragmentMeta> {
        let bytes = loaded
            .entry(key)
            .or_insert_with(|| tier.load(key, op))
            .as_deref()?;
        let (meta, payload) = eel_core::decode_fragment(bytes)?;
        payload_ok(payload).then_some(meta)
    };
    exec.build_all_cfgs_probed(threads, &mut probe)
        .map_err(|e| err(op, e))
}

/// The memoized payload for a stitch-phase hit. Falls back to empty on
/// the (probe-validated, hence unreachable) decode failure.
fn hit_payload(loaded: &Loaded, key: u64) -> &[u8] {
    loaded
        .get(&key)
        .and_then(|o| o.as_deref())
        .and_then(eel_core::decode_fragment)
        .map(|(_, payload)| payload)
        .unwrap_or_default()
}

/// Wraps an op payload in the validated fragment container and stores it.
fn store_fragment(tier: &dyn FragmentTier, op: &str, item: &CfgBatchItem, payload: &[u8]) {
    let meta = FragmentMeta {
        start: item.routine.start(),
        escapes: item.escapes.clone(),
        splits: item.splits.clone(),
    };
    tier.store(item.key, op, &eel_core::encode_fragment(&meta, payload));
}

/// A disassembly listing with routine headers and dispatch-table
/// annotations — the service twin of `eelobjdump`. The header embeds
/// the routine's (possibly image-specific) name and start, so only the
/// body below it is the cached fragment.
fn disasm(
    analysis: &Analysis,
    threads: usize,
    tier: &dyn FragmentTier,
) -> Result<(Vec<u8>, FragmentStats), String> {
    let mut exec = Executable::from_analysis(analysis);
    let image = analysis.image();
    let mut loaded = Loaded::new();
    let items = batch_with_probe("disasm", &mut exec, threads, tier, &mut loaded, &|p| {
        std::str::from_utf8(p).is_ok()
    })?;
    let mut stats = FragmentStats::default();
    let mut out = String::new();
    for item in &items {
        stats.total += 1;
        let routine = &item.routine;
        let _ = writeln!(
            out,
            "{:#010x} <{}>{}:",
            routine.start(),
            routine.name(),
            if routine.is_hidden() { " (hidden)" } else { "" }
        );
        match &item.cfg {
            None => {
                stats.hits += 1;
                out.push_str(&String::from_utf8_lossy(hit_payload(&loaded, item.key)));
            }
            Some(cfg) => {
                let body = disasm_body(image, routine, cfg);
                out.push_str(&body);
                if item.clean {
                    store_fragment(tier, "disasm", item, body.as_bytes());
                }
            }
        }
    }
    Ok((out.into_bytes(), stats))
}

fn disasm_body(image: &Image, routine: &Routine, cfg: &Cfg) -> String {
    let mut out = String::new();
    let mut addr = routine.start();
    while addr < routine.end() {
        let word = image.word_at(addr).unwrap_or(0);
        let in_table = cfg
            .data_ranges()
            .iter()
            .any(|r| addr >= r.start && addr < r.end);
        if in_table {
            let _ = writeln!(out, "  {addr:#010x}:  .word {word:#010x}  ; dispatch table");
        } else {
            let _ = writeln!(out, "  {addr:#010x}:  {}", eel_isa::decode(word));
        }
        addr += 4;
    }
    out.push('\n');
    out
}

/// Per-routine CFG statistics plus whole-program totals. A fragment is
/// the per-routine line minus the name, preceded by the three totals it
/// contributes.
fn cfg_summary(
    analysis: &Analysis,
    threads: usize,
    tier: &dyn FragmentTier,
) -> Result<(Vec<u8>, FragmentStats), String> {
    let mut exec = Executable::from_analysis(analysis);
    let mut loaded = Loaded::new();
    let items = batch_with_probe("cfg-summary", &mut exec, threads, tier, &mut loaded, &|p| {
        decode_summary_payload(p).is_some()
    })?;
    let mut stats = FragmentStats::default();
    let mut out = String::new();
    let (mut blocks, mut edges, mut insns) = (0u64, 0u64, 0u64);
    for item in &items {
        stats.total += 1;
        out.push_str(&item.routine.name());
        match &item.cfg {
            None => {
                stats.hits += 1;
                if let Some((b, e, i, suffix)) =
                    decode_summary_payload(hit_payload(&loaded, item.key))
                {
                    blocks += b;
                    edges += e;
                    insns += i;
                    out.push_str(suffix);
                }
            }
            Some(cfg) => {
                let s = cfg.stats();
                let suffix = format!(
                    ": blocks={} (delay={} surrogate={}) edges={} insns={} uneditable-edges={:.0}%{}\n",
                    s.total_blocks(),
                    s.delay_slot_blocks,
                    s.call_surrogate_blocks,
                    s.edges,
                    s.instructions,
                    100.0 * s.uneditable_edge_fraction(),
                    if cfg.is_incomplete() { " INCOMPLETE" } else { "" },
                );
                out.push_str(&suffix);
                let (b, e, i) = (
                    s.total_blocks() as u64,
                    s.edges as u64,
                    s.instructions as u64,
                );
                blocks += b;
                edges += e;
                insns += i;
                if item.clean {
                    let mut payload = Vec::with_capacity(24 + suffix.len());
                    payload.extend_from_slice(&b.to_be_bytes());
                    payload.extend_from_slice(&e.to_be_bytes());
                    payload.extend_from_slice(&i.to_be_bytes());
                    payload.extend_from_slice(suffix.as_bytes());
                    store_fragment(tier, "cfg-summary", item, &payload);
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "TOTAL: routines={} blocks={blocks} edges={edges} insns={insns}",
        analysis.routines().len()
    );
    Ok((out.into_bytes(), stats))
}

fn decode_summary_payload(p: &[u8]) -> Option<(u64, u64, u64, &str)> {
    if p.len() < 24 {
        return None;
    }
    let b = u64::from_be_bytes(p[0..8].try_into().ok()?);
    let e = u64::from_be_bytes(p[8..16].try_into().ok()?);
    let i = u64::from_be_bytes(p[16..24].try_into().ok()?);
    let suffix = std::str::from_utf8(&p[24..]).ok()?;
    Some((b, e, i, suffix))
}

/// Entry live-in registers for every routine, from the CFG dataflow.
/// The fragment is the line minus the routine name.
fn liveness(
    analysis: &Analysis,
    threads: usize,
    tier: &dyn FragmentTier,
) -> Result<(Vec<u8>, FragmentStats), String> {
    let mut exec = Executable::from_analysis(analysis);
    let mut loaded = Loaded::new();
    let items = batch_with_probe("liveness", &mut exec, threads, tier, &mut loaded, &|p| {
        std::str::from_utf8(p).is_ok()
    })?;
    let mut stats = FragmentStats::default();
    let mut out = String::new();
    for item in &items {
        stats.total += 1;
        out.push_str(&item.routine.name());
        match &item.cfg {
            None => {
                stats.hits += 1;
                out.push_str(&String::from_utf8_lossy(hit_payload(&loaded, item.key)));
            }
            Some(cfg) => {
                let live = Liveness::compute(cfg);
                let entry = live.live_in(cfg.entry_block());
                let suffix = format!(": entry-live-in={entry} ({} regs)\n", entry.len());
                out.push_str(&suffix);
                if item.clean {
                    store_fragment(tier, "liveness", item, suffix.as_bytes());
                }
            }
        }
    }
    Ok((out.into_bytes(), stats))
}

/// Image and discovery statistics: segment sizes, symbol and routine
/// counts. Builds no CFGs, so it neither consults nor produces
/// fragments.
fn stat(analysis: &Analysis) -> Result<Vec<u8>, String> {
    let image = analysis.image();
    let hidden = analysis.routines().iter().filter(|r| r.is_hidden()).count();
    let entries: usize = analysis.routines().iter().map(|r| r.entries().len()).sum();
    let mut out = String::new();
    // Baked into the cached body, like the discovery line below, so a
    // warm `stat` still says which backend the image takes.
    let _ = writeln!(out, "machine: {}", analysis.machine().name());
    let _ = writeln!(
        out,
        "text: {} bytes @ {:#010x}",
        image.text.len(),
        image.text_addr
    );
    let _ = writeln!(
        out,
        "data: {} bytes @ {:#010x}",
        image.data.len(),
        image.data_addr
    );
    let _ = writeln!(out, "symbols: {}", image.symbols.len());
    let _ = writeln!(
        out,
        "routines: {} ({hidden} hidden, {entries} entry points)",
        analysis.routines().len()
    );
    // Baked into the cached body (unlike the wire-level trailing
    // extension) so a warm `stat` still reports how the routine set was
    // found.
    let _ = writeln!(out, "discovery: {}", analysis.discovery().as_str());
    let _ = writeln!(out, "analysis-bytes: ~{}", analysis.approx_bytes());
    Ok(out.into_bytes())
}

/// The serve write path: runs an `eeledit` command script against the
/// shared analysis and returns the edited executable's WEF bytes (the
/// script's last `apply`, or an implicit final apply). Pure function of
/// `(analysis, script)`, which is exactly what the `(image_hash,
/// script_hash)` cache key captures.
///
/// # Errors
///
/// A rendered message when the script fails to parse or any command is
/// rejected.
pub fn run_edit(analysis: &Arc<Analysis>, script: &str) -> Result<Vec<u8>, String> {
    let _obs = eel_obs::span("edit.serve_op");
    // The command-script engine drives the SPARC editable CFG; reject
    // other machines up front with a pointer at what does work, instead
    // of letting the first `apply` surface a deeper error.
    if uses_generic_pipeline(analysis.machine()) {
        return Err(format!(
            "edit: the command-script engine is sparc-only; a {} image takes the generic ops \
             (disasm, cfg-summary, liveness, stat, instrument)",
            analysis.machine().name()
        ));
    }
    let mut session = eel_edit::EditSession::from_analysis(Arc::clone(analysis));
    let applied = session
        .run_script_to_image(script)
        .map_err(|e| err("edit", e))?;
    Ok(applied.image.to_bytes())
}

/// Edge-count instrumentation: a counter along every editable out-edge of
/// multi-successor blocks — the same optimal placement qpt2 uses for
/// `Granularity::Edges` (paper Figure 1), reimplemented here on eel-core
/// so the service does not depend on the tools crate. Returns the edited
/// executable's WEF bytes.
///
/// The per-routine fragment is the serialized instrumentation *plan*
/// (`reserve | counter_base | layout`): a validated hit replays the
/// routine's laid-out form directly, skipping CFG construction,
/// liveness, and snippet placement. Data reservations happen in routine
/// order on both paths, so a hit whose recorded counter base matches
/// the live reservation installs as-is; a mismatch (different earlier
/// routines reserved different amounts) redoes the edits against a
/// purely rebuilt CFG — still byte-identical to cold.
fn instrument(
    analysis: &Analysis,
    threads: usize,
    tier: &dyn FragmentTier,
) -> Result<(Vec<u8>, FragmentStats), String> {
    let mut exec = Executable::from_analysis(analysis);
    // CFG builds fan out first; editing (data reservation, snippet
    // placement, install) stays sequential in routine order. Builds
    // read only the original text, so batching them ahead of the edits
    // changes nothing about the output.
    let mut loaded = Loaded::new();
    let items = batch_with_probe("instrument", &mut exec, threads, tier, &mut loaded, &|p| {
        decode_instrument_payload(p).is_some()
    })?;
    let mut stats = FragmentStats::default();
    for mut item in items {
        stats.total += 1;
        match item.cfg.take() {
            None => {
                let plan = decode_instrument_payload(hit_payload(&loaded, item.key))
                    .map(|(reserve, base, layout)| (reserve, base, layout.to_vec()));
                match plan {
                    Some((reserve, counter_base, layout)) => {
                        let base = exec.reserve_data(reserve);
                        if base == counter_base
                            && exec.install_serialized_layout(item.id, &layout).is_ok()
                        {
                            stats.hits += 1;
                            continue;
                        }
                        // The plan was recorded against a different counter
                        // base (or failed to decode): rebuild the CFG purely
                        // — the validated hit guarantees a clean build — and
                        // redo the edits with the live base. The reservation
                        // above already matches cold (same CFG ⇒ same edge
                        // count ⇒ same reserve).
                        let cfg = exec
                            .build_cfg_snapshot(item.id, &item.routine)
                            .map_err(|e| err("instrument", e))?;
                        instrument_routine(&mut exec, cfg, Some(base))?;
                    }
                    None => {
                        // Unreachable (the probe pre-validated the payload),
                        // but fall back to the full cold path regardless.
                        let cfg = exec
                            .build_cfg_snapshot(item.id, &item.routine)
                            .map_err(|e| err("instrument", e))?;
                        instrument_routine(&mut exec, cfg, None)?;
                    }
                }
            }
            Some(cfg) => {
                let (reserve, base) = instrument_routine(&mut exec, cfg, None)?;
                if item.clean {
                    if let Some(layout) = exec.serialize_layout(item.id) {
                        let mut payload = Vec::with_capacity(8 + layout.len());
                        payload.extend_from_slice(&reserve.to_be_bytes());
                        payload.extend_from_slice(&base.to_be_bytes());
                        payload.extend_from_slice(&layout);
                        store_fragment(tier, "instrument", &item, &payload);
                    }
                }
            }
        }
    }
    let edited = exec.write_edited().map_err(|e| err("instrument", e))?;
    Ok((edited.to_bytes(), stats))
}

/// Places edge counters in one routine's CFG and installs the result.
/// `base` reuses an already-made reservation (the fragment fallback
/// path); `None` reserves here, in routine order, exactly like the cold
/// loop always has. Returns `(reserve, counter_base)` for fragment
/// recording.
fn instrument_routine(
    exec: &mut Executable,
    mut cfg: Cfg,
    base: Option<u32>,
) -> Result<(u32, u32), String> {
    let mut edges: Vec<EdgeId> = Vec::new();
    for (_, b) in cfg.blocks() {
        if b.kind != BlockKind::Normal || b.succ().len() < 2 {
            continue;
        }
        for &e in b.succ() {
            if cfg.edge(e).editable {
                edges.push(e);
            }
        }
    }
    let reserve = 4 * edges.len().max(1) as u32;
    let base = base.unwrap_or_else(|| exec.reserve_data(reserve));
    for (k, e) in edges.into_iter().enumerate() {
        let counter = base + 4 * k as u32;
        cfg.add_code_along(e, Snippet::counter_increment(counter))
            .map_err(|e| err("instrument", e))?;
    }
    exec.install_edits(cfg).map_err(|e| err("instrument", e))?;
    Ok((reserve, base))
}

fn decode_instrument_payload(p: &[u8]) -> Option<(u32, u32, &[u8])> {
    if p.len() <= 8 {
        return None;
    }
    let reserve = u32::from_be_bytes(p[0..4].try_into().ok()?);
    let base = u32::from_be_bytes(p[4..8].try_into().ok()?);
    Some((reserve, base, &p[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_exe::Image;
    use std::sync::Arc;
    use std::sync::Mutex;

    fn analysis() -> Arc<Analysis> {
        let image = eel_cc::compile_str(
            "fn main() { var i; var t = 0;
               for (i = 0; i < 5; i = i + 1) { t = t + i; } return t; }",
            &eel_cc::Options::default(),
        )
        .expect("compile");
        Arc::new(Analysis::compute(Arc::new(image)).expect("analyze"))
    }

    fn multi_routine_analysis() -> Arc<Analysis> {
        let image = eel_cc::compile_str(
            "fn helper(x) { return x * 3 + 1; }
             fn double(x) { return x + x; }
             fn main() { var i; var t = 0;
               for (i = 0; i < 5; i = i + 1) { t = t + helper(i) + double(i); }
               return t; }",
            &eel_cc::Options::default(),
        )
        .expect("compile");
        Arc::new(Analysis::compute(Arc::new(image)).expect("analyze"))
    }

    fn mips_analysis() -> Arc<Analysis> {
        let w = eel_progen::Workload {
            name: "serve-mips",
            source: "
                global acc;
                fn step(x) {
                    var t = 0;
                    while (x > 0) { t = t + x % 5; x = x - 1; }
                    return t;
                }
                fn main() {
                    var i;
                    acc = 0;
                    for (i = 1; i < 12; i = i + 1) { acc = acc + step(i); print(acc); }
                    return acc & 63;
                }
            "
            .into(),
        };
        let image =
            eel_progen::compile_machine(&w, eel_cc::Personality::Gcc, eel_exe::Machine::Mips)
                .expect("compile mips");
        Arc::new(Analysis::compute(Arc::new(image)).expect("analyze"))
    }

    #[test]
    fn generic_ops_render_for_mips() {
        let a = mips_analysis();
        for op in CACHED_OPS {
            let one = run_op(op, &a).expect(op);
            let two = run_op(op, &a).expect(op);
            assert!(!one.is_empty(), "{op} produced output");
            assert_eq!(one, two, "{op} is deterministic");
        }
        let stat = String::from_utf8(run_op("stat", &a).unwrap()).unwrap();
        assert!(stat.contains("machine: mips"), "{stat}");
        let disasm = String::from_utf8(run_op("disasm", &a).unwrap()).unwrap();
        assert!(disasm.contains("<main>"), "{disasm}");
        assert!(disasm.contains("addiu"), "{disasm}");
        let summary = String::from_utf8(run_op("cfg-summary", &a).unwrap()).unwrap();
        assert!(summary.contains("TOTAL:"), "{summary}");
        let live = String::from_utf8(run_op("liveness", &a).unwrap()).unwrap();
        assert!(live.contains("entry-live-in="), "{live}");
        assert!(live.contains("$29"), "{live}");
    }

    #[test]
    fn mips_instrument_preserves_behavior() {
        let a = mips_analysis();
        let original = eel_emu::run_image(a.image()).expect("run original");
        let wef = run_op("instrument", &a).expect("instrument");
        let edited = Image::from_bytes(&wef).expect("edited image parses");
        assert_eq!(edited.machine, eel_exe::Machine::Mips);
        let outcome = eel_emu::run_image(&edited).expect("run edited");
        assert_eq!(outcome.exit_code, original.exit_code);
        assert_eq!(outcome.output, original.output);
    }

    #[test]
    fn mips_edit_is_rejected_with_a_pointer() {
        let a = mips_analysis();
        let e = run_edit(&a, "counter main\napply\n").unwrap_err();
        assert!(e.contains("sparc-only"), "{e}");
        assert!(e.contains("mips"), "{e}");
    }

    #[test]
    fn mips_ops_bypass_the_fragment_tier() {
        let a = mips_analysis();
        let tier = MemTier::default();
        for op in ["disasm", "instrument"] {
            let (cold, s1) = run_op_fragments(op, &a, 1, &tier).expect(op);
            let (warm, s2) = run_op_fragments(op, &a, 1, &tier).expect(op);
            assert_eq!(cold, warm, "{op}: generic path is deterministic");
            assert_eq!(s1, FragmentStats::default(), "{op}: no fragment accounting");
            assert_eq!(s2, FragmentStats::default());
        }
        assert!(
            tier.0.lock().unwrap().is_empty(),
            "generic ops never write SPARC CFG fragments"
        );
    }

    #[test]
    fn stat_reports_the_machine_line_for_sparc_too() {
        let a = analysis();
        let stat = String::from_utf8(run_op("stat", &a).unwrap()).unwrap();
        assert!(stat.contains("machine: sparc"), "{stat}");
    }

    /// In-memory fragment tier for tests and benches.
    #[derive(Default)]
    pub(crate) struct MemTier(Mutex<HashMap<(u64, String), Vec<u8>>>);

    impl FragmentTier for MemTier {
        fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
            self.0.lock().unwrap().get(&(key, op.to_string())).cloned()
        }
        fn store(&self, key: u64, op: &str, bytes: &[u8]) {
            self.0
                .lock()
                .unwrap()
                .insert((key, op.to_string()), bytes.to_vec());
        }
    }

    #[test]
    fn text_ops_render_and_are_deterministic() {
        let a = analysis();
        for op in ["disasm", "cfg-summary", "liveness", "stat"] {
            let one = run_op(op, &a).expect(op);
            let two = run_op(op, &a).expect(op);
            assert!(!one.is_empty(), "{op} produced output");
            assert_eq!(one, two, "{op} is deterministic");
        }
        let summary = String::from_utf8(run_op("cfg-summary", &a).unwrap()).unwrap();
        assert!(summary.contains("TOTAL:"));
        let stat = String::from_utf8(run_op("stat", &a).unwrap()).unwrap();
        assert!(stat.contains("routines:"));
        assert!(stat.contains("discovery: symbols"));
    }

    #[test]
    fn instrument_preserves_behavior_and_counts_edges() {
        let a = analysis();
        let original = eel_emu::run_image(a.image()).expect("run original");
        let wef = run_op("instrument", &a).expect("instrument");
        let edited = Image::from_bytes(&wef).expect("edited image parses");
        let outcome = eel_emu::run_image(&edited).expect("run edited");
        assert_eq!(outcome.exit_code, original.exit_code);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let a = analysis();
        let e = run_op("frobnicate", &a).unwrap_err();
        assert!(e.contains("unknown op"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let a = analysis();
        for op in CACHED_OPS {
            let sequential = run_op_with(op, &a, 1).expect(op);
            for threads in [0, 2, 3, 8] {
                let parallel = run_op_with(op, &a, threads).expect(op);
                assert_eq!(
                    sequential, parallel,
                    "{op} with {threads} threads must match sequential byte-for-byte"
                );
            }
        }
    }

    #[test]
    fn fragment_warm_rerun_is_byte_identical_and_all_hits() {
        let a = multi_routine_analysis();
        let routines = a.routines().len() as u32;
        for op in CACHED_OPS {
            let cold = run_op_with(op, &a, 1).expect(op);
            let tier = MemTier::default();
            let (first, s1) = run_op_fragments(op, &a, 1, &tier).expect(op);
            assert_eq!(first, cold, "{op}: tier-backed cold run matches plain");
            assert_eq!(s1.hits, 0, "{op}: nothing cached yet");
            let (second, s2) = run_op_fragments(op, &a, 1, &tier).expect(op);
            assert_eq!(second, cold, "{op}: warm stitch is byte-identical");
            if *op == "stat" {
                assert_eq!(s2.total, 0, "stat takes no fragments");
            } else {
                assert_eq!(
                    (s2.hits, s2.total),
                    (routines, routines),
                    "{op}: every routine stitches from its fragment"
                );
            }
        }
    }

    #[test]
    fn fragment_warm_rerun_matches_at_any_thread_count() {
        let a = multi_routine_analysis();
        for op in ["disasm", "instrument"] {
            let cold = run_op_with(op, &a, 1).expect(op);
            let tier = MemTier::default();
            let _ = run_op_fragments(op, &a, 1, &tier).expect(op);
            for threads in [0, 2, 8] {
                let (warm, s) = run_op_fragments(op, &a, threads, &tier).expect(op);
                assert_eq!(warm, cold, "{op}: warm at {threads} threads");
                assert_eq!(s.hits, s.total, "{op}: all hits at {threads} threads");
            }
        }
    }

    #[test]
    fn poisoned_fragments_fall_back_to_live_builds() {
        let a = multi_routine_analysis();
        for op in ["disasm", "cfg-summary", "liveness", "instrument"] {
            let cold = run_op_with(op, &a, 1).expect(op);
            let tier = MemTier::default();
            let _ = run_op_fragments(op, &a, 1, &tier).expect(op);
            // Corrupt every stored fragment: truncate to the version byte.
            {
                let mut map = tier.0.lock().unwrap();
                for v in map.values_mut() {
                    v.truncate(1);
                }
            }
            let (out, s) = run_op_fragments(op, &a, 1, &tier).expect(op);
            assert_eq!(out, cold, "{op}: corrupt fragments must not change output");
            assert_eq!(s.hits, 0, "{op}: corrupt fragments are not hits");
        }
    }

    #[test]
    fn recompute_cost_classes_match_pipeline_weight() {
        assert_eq!(recompute_cost("disasm"), CostClass::Expensive);
        assert_eq!(recompute_cost("instrument"), CostClass::Expensive);
        assert_eq!(recompute_cost("stat"), CostClass::Cheap);
        assert_eq!(recompute_cost("cfg-summary"), CostClass::Cheap);
        assert_eq!(recompute_cost("liveness"), CostClass::Cheap);
        // Fragment entries inherit the class of the op they shard.
        assert_eq!(recompute_cost("frag.disasm"), CostClass::Expensive);
        assert_eq!(recompute_cost("frag.instrument"), CostClass::Expensive);
        assert_eq!(recompute_cost("frag.liveness"), CostClass::Cheap);
        // Script-keyed edit entries are a full edit-session replay.
        assert_eq!(recompute_cost("edit"), CostClass::Expensive);
        assert_eq!(
            recompute_cost("edit-00c0ffee00c0ffee"),
            CostClass::Expensive
        );
        assert_eq!(recompute_cost("editorial"), CostClass::Cheap);
    }

    #[test]
    fn edit_op_is_deterministic_and_preserves_behavior() {
        let a = analysis();
        let original = eel_emu::run_image(a.image()).expect("run original");
        let script = "counter main\napply\n";
        let one = run_edit(&a, script).expect("edit");
        let two = run_edit(&a, script).expect("edit again");
        assert_eq!(one, two, "same script, same bytes");
        let edited = Image::from_bytes(&one).expect("edited image parses");
        let outcome = eel_emu::run_image(&edited).expect("run edited");
        assert_eq!(outcome.exit_code, original.exit_code);
        assert_eq!(outcome.output, original.output);
    }

    #[test]
    fn edit_op_with_empty_script_is_byte_identical() {
        let a = analysis();
        let out = run_edit(&a, "# nothing to do\n").expect("empty edit");
        assert_eq!(out, a.image().to_bytes());
    }

    #[test]
    fn edit_op_reports_script_errors() {
        let a = analysis();
        let e = run_edit(&a, "frobnicate everything\n").unwrap_err();
        assert!(e.starts_with("edit:"), "{e}");
        assert!(e.contains("unknown command"), "{e}");
        let e = run_edit(&a, "counter nosuchroutine\n").unwrap_err();
        assert!(e.contains("no routine named"), "{e}");
    }
}
