//! The server's analysis operations.
//!
//! Every operation is a pure function of a shared [`Analysis`] (the
//! validated image plus §3.1 routine discovery), which is what makes the
//! content-addressed cache sound: same WEF bytes + same op name ⇒ same
//! result. Text-producing ops render stable, line-oriented listings;
//! `instrument` returns the edited executable's WEF bytes.

use crate::cache::CostClass;
use eel_core::{Analysis, BlockKind, Executable, Liveness, Snippet};
use std::fmt::Write as _;
use std::sync::Arc;

/// The operations whose results flow through the content-addressed cache.
/// (`ping`, `metrics`, and `shutdown` are control-plane requests handled
/// by the server itself.) Because every result here is a plain byte
/// string that is a pure function of the input image, all of them are
/// also eligible for the on-disk spill tier — success results persist
/// across restarts; error results stay memory-only.
pub const CACHED_OPS: &[&str] = &["disasm", "cfg-summary", "liveness", "stat", "instrument"];

/// Runs one cacheable operation against a shared analysis, sequentially
/// (one analysis thread). Equivalent to `run_op_with(op, analysis, 1)`.
///
/// # Errors
///
/// A rendered message when the op is unknown or the underlying
/// analysis/editing step fails.
pub fn run_op(op: &str, analysis: &Analysis) -> Result<Vec<u8>, String> {
    run_op_with(op, analysis, 1)
}

/// Runs one cacheable operation, fanning the per-routine CFG builds out
/// over `threads` worker threads (0 = one per core, 1 = sequential) via
/// [`Executable::build_all_cfgs`]. The result is **byte-for-byte
/// identical** at every thread count — parallelism here is purely a
/// latency knob, never a cache-correctness concern.
///
/// # Errors
///
/// As [`run_op`].
pub fn run_op_with(op: &str, analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    match op {
        "disasm" => disasm(analysis, threads),
        "cfg-summary" => cfg_summary(analysis, threads),
        "liveness" => liveness(analysis, threads),
        "stat" => stat(analysis),
        "instrument" => instrument(analysis, threads),
        other => Err(format!(
            "unknown op {other:?} (expected one of {CACHED_OPS:?}, edit, ping, metrics, shutdown)"
        )),
    }
}

/// The recompute [`CostClass`] of an op's cached result, steering the
/// LRU's cost-weighted eviction. `disasm` and `instrument` redo the
/// whole per-routine CFG pipeline (milliseconds); `stat`,
/// `cfg-summary`, and `liveness` render small summaries whose recompute
/// is comparable to a disk reload (tens of microseconds), so their
/// cache entries yield budget first.
pub fn recompute_cost(op: &str) -> CostClass {
    // `edit` results are keyed as `edit-{script_hash}` (one cache entry
    // per distinct script), so match on the prefix.
    if op == "edit" || op.starts_with("edit-") {
        return CostClass::Expensive;
    }
    match op {
        "disasm" | "instrument" => CostClass::Expensive,
        _ => CostClass::Cheap,
    }
}

fn err(op: &str, e: impl std::fmt::Display) -> String {
    format!("{op}: {e}")
}

/// A disassembly listing with routine headers and dispatch-table
/// annotations — the service twin of `eelobjdump`.
fn disasm(analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    let mut exec = Executable::from_analysis(analysis);
    let image = analysis.image();
    let mut out = String::new();
    for (routine, cfg) in exec.build_all_cfgs(threads).map_err(|e| err("disasm", e))? {
        let _ = writeln!(
            out,
            "{:#010x} <{}>{}:",
            routine.start(),
            routine.name(),
            if routine.is_hidden() { " (hidden)" } else { "" }
        );
        let mut addr = routine.start();
        while addr < routine.end() {
            let word = image.word_at(addr).unwrap_or(0);
            let in_table = cfg
                .data_ranges()
                .iter()
                .any(|r| addr >= r.start && addr < r.end);
            if in_table {
                let _ = writeln!(out, "  {addr:#010x}:  .word {word:#010x}  ; dispatch table");
            } else {
                let _ = writeln!(out, "  {addr:#010x}:  {}", eel_isa::decode(word));
            }
            addr += 4;
        }
        out.push('\n');
    }
    Ok(out.into_bytes())
}

/// Per-routine CFG statistics plus whole-program totals.
fn cfg_summary(analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    let mut exec = Executable::from_analysis(analysis);
    let mut out = String::new();
    let (mut blocks, mut edges, mut insns) = (0usize, 0usize, 0usize);
    for (routine, cfg) in exec
        .build_all_cfgs(threads)
        .map_err(|e| err("cfg-summary", e))?
    {
        let name = routine.name();
        let s = cfg.stats();
        let _ =
            writeln!(
            out,
            "{name}: blocks={} (delay={} surrogate={}) edges={} insns={} uneditable-edges={:.0}%{}",
            s.total_blocks(),
            s.delay_slot_blocks,
            s.call_surrogate_blocks,
            s.edges,
            s.instructions,
            100.0 * s.uneditable_edge_fraction(),
            if cfg.is_incomplete() { " INCOMPLETE" } else { "" },
        );
        blocks += s.total_blocks();
        edges += s.edges;
        insns += s.instructions;
    }
    let _ = writeln!(
        out,
        "TOTAL: routines={} blocks={blocks} edges={edges} insns={insns}",
        analysis.routines().len()
    );
    Ok(out.into_bytes())
}

/// Entry live-in registers for every routine, from the CFG dataflow.
fn liveness(analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    let mut exec = Executable::from_analysis(analysis);
    let mut out = String::new();
    for (routine, cfg) in exec
        .build_all_cfgs(threads)
        .map_err(|e| err("liveness", e))?
    {
        let name = routine.name();
        let live = Liveness::compute(&cfg);
        let entry = live.live_in(cfg.entry_block());
        let _ = writeln!(out, "{name}: entry-live-in={entry} ({} regs)", entry.len());
    }
    Ok(out.into_bytes())
}

/// Image and discovery statistics: segment sizes, symbol and routine
/// counts.
fn stat(analysis: &Analysis) -> Result<Vec<u8>, String> {
    let image = analysis.image();
    let hidden = analysis.routines().iter().filter(|r| r.is_hidden()).count();
    let entries: usize = analysis.routines().iter().map(|r| r.entries().len()).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "text: {} bytes @ {:#010x}",
        image.text.len(),
        image.text_addr
    );
    let _ = writeln!(
        out,
        "data: {} bytes @ {:#010x}",
        image.data.len(),
        image.data_addr
    );
    let _ = writeln!(out, "symbols: {}", image.symbols.len());
    let _ = writeln!(
        out,
        "routines: {} ({hidden} hidden, {entries} entry points)",
        analysis.routines().len()
    );
    let _ = writeln!(out, "analysis-bytes: ~{}", analysis.approx_bytes());
    Ok(out.into_bytes())
}

/// The serve write path: runs an `eeledit` command script against the
/// shared analysis and returns the edited executable's WEF bytes (the
/// script's last `apply`, or an implicit final apply). Pure function of
/// `(analysis, script)`, which is exactly what the `(image_hash,
/// script_hash)` cache key captures.
///
/// # Errors
///
/// A rendered message when the script fails to parse or any command is
/// rejected.
pub fn run_edit(analysis: &Arc<Analysis>, script: &str) -> Result<Vec<u8>, String> {
    let _obs = eel_obs::span("edit.serve_op");
    let mut session = eel_edit::EditSession::from_analysis(Arc::clone(analysis));
    let applied = session
        .run_script_to_image(script)
        .map_err(|e| err("edit", e))?;
    Ok(applied.image.to_bytes())
}

/// Edge-count instrumentation: a counter along every editable out-edge of
/// multi-successor blocks — the same optimal placement qpt2 uses for
/// `Granularity::Edges` (paper Figure 1), reimplemented here on eel-core
/// so the service does not depend on the tools crate. Returns the edited
/// executable's WEF bytes.
fn instrument(analysis: &Analysis, threads: usize) -> Result<Vec<u8>, String> {
    let mut exec = Executable::from_analysis(analysis);
    // CFG builds fan out first; editing (data reservation, snippet
    // placement, install) stays sequential in routine order. Builds
    // read only the original text, so batching them ahead of the edits
    // changes nothing about the output.
    let built = exec
        .build_all_cfgs(threads)
        .map_err(|e| err("instrument", e))?;
    for (_, mut cfg) in built {
        let mut edges = Vec::new();
        for (_, b) in cfg.blocks() {
            if b.kind != BlockKind::Normal || b.succ().len() < 2 {
                continue;
            }
            for &e in b.succ() {
                if cfg.edge(e).editable {
                    edges.push(e);
                }
            }
        }
        let base = exec.reserve_data(4 * edges.len().max(1) as u32);
        for (k, e) in edges.into_iter().enumerate() {
            let counter = base + 4 * k as u32;
            cfg.add_code_along(e, Snippet::counter_increment(counter))
                .map_err(|e| err("instrument", e))?;
        }
        exec.install_edits(cfg).map_err(|e| err("instrument", e))?;
    }
    let edited = exec.write_edited().map_err(|e| err("instrument", e))?;
    Ok(edited.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_exe::Image;
    use std::sync::Arc;

    fn analysis() -> Arc<Analysis> {
        let image = eel_cc::compile_str(
            "fn main() { var i; var t = 0;
               for (i = 0; i < 5; i = i + 1) { t = t + i; } return t; }",
            &eel_cc::Options::default(),
        )
        .expect("compile");
        Arc::new(Analysis::compute(Arc::new(image)).expect("analyze"))
    }

    #[test]
    fn text_ops_render_and_are_deterministic() {
        let a = analysis();
        for op in ["disasm", "cfg-summary", "liveness", "stat"] {
            let one = run_op(op, &a).expect(op);
            let two = run_op(op, &a).expect(op);
            assert!(!one.is_empty(), "{op} produced output");
            assert_eq!(one, two, "{op} is deterministic");
        }
        let summary = String::from_utf8(run_op("cfg-summary", &a).unwrap()).unwrap();
        assert!(summary.contains("TOTAL:"));
        let stat = String::from_utf8(run_op("stat", &a).unwrap()).unwrap();
        assert!(stat.contains("routines:"));
    }

    #[test]
    fn instrument_preserves_behavior_and_counts_edges() {
        let a = analysis();
        let original = eel_emu::run_image(a.image()).expect("run original");
        let wef = run_op("instrument", &a).expect("instrument");
        let edited = Image::from_bytes(&wef).expect("edited image parses");
        let outcome = eel_emu::run_image(&edited).expect("run edited");
        assert_eq!(outcome.exit_code, original.exit_code);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let a = analysis();
        let e = run_op("frobnicate", &a).unwrap_err();
        assert!(e.contains("unknown op"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let a = analysis();
        for op in CACHED_OPS {
            let sequential = run_op_with(op, &a, 1).expect(op);
            for threads in [0, 2, 3, 8] {
                let parallel = run_op_with(op, &a, threads).expect(op);
                assert_eq!(
                    sequential, parallel,
                    "{op} with {threads} threads must match sequential byte-for-byte"
                );
            }
        }
    }

    #[test]
    fn recompute_cost_classes_match_pipeline_weight() {
        assert_eq!(recompute_cost("disasm"), CostClass::Expensive);
        assert_eq!(recompute_cost("instrument"), CostClass::Expensive);
        assert_eq!(recompute_cost("stat"), CostClass::Cheap);
        assert_eq!(recompute_cost("cfg-summary"), CostClass::Cheap);
        assert_eq!(recompute_cost("liveness"), CostClass::Cheap);
        // Script-keyed edit entries are a full edit-session replay.
        assert_eq!(recompute_cost("edit"), CostClass::Expensive);
        assert_eq!(
            recompute_cost("edit-00c0ffee00c0ffee"),
            CostClass::Expensive
        );
        assert_eq!(recompute_cost("editorial"), CostClass::Cheap);
    }

    #[test]
    fn edit_op_is_deterministic_and_preserves_behavior() {
        let a = analysis();
        let original = eel_emu::run_image(a.image()).expect("run original");
        let script = "counter main\napply\n";
        let one = run_edit(&a, script).expect("edit");
        let two = run_edit(&a, script).expect("edit again");
        assert_eq!(one, two, "same script, same bytes");
        let edited = Image::from_bytes(&one).expect("edited image parses");
        let outcome = eel_emu::run_image(&edited).expect("run edited");
        assert_eq!(outcome.exit_code, original.exit_code);
        assert_eq!(outcome.output, original.output);
    }

    #[test]
    fn edit_op_with_empty_script_is_byte_identical() {
        let a = analysis();
        let out = run_edit(&a, "# nothing to do\n").expect("empty edit");
        assert_eq!(out, a.image().to_bytes());
    }

    #[test]
    fn edit_op_reports_script_errors() {
        let a = analysis();
        let e = run_edit(&a, "frobnicate everything\n").unwrap_err();
        assert!(e.starts_with("edit:"), "{e}");
        assert!(e.contains("unknown command"), "{e}");
        let e = run_edit(&a, "counter nosuchroutine\n").unwrap_err();
        assert!(e.contains("no routine named"), "{e}");
    }
}
