//! Readiness-driven connection plumbing for the event-loop server.
//!
//! The server's reactor thread multiplexes every connection over
//! `poll(2)`: nonblocking sockets, per-connection read buffers that
//! reassemble length-prefixed frames, and per-connection bounded write
//! buffers that drain as the socket accepts bytes. This module holds the
//! machinery the loop in `server.rs` is built from:
//!
//! * a thin `poll(2)` binding ([`poll_fds`]) declared directly against
//!   the C library every Rust binary on a Unix host already links — the
//!   workspace stays std-only, no new dependency;
//! * [`Conn`], one nonblocking connection: [`Conn::fill`] reads whatever
//!   the socket has and returns the *complete* frames reassembled so
//!   far, [`Conn::queue_frame`] appends an outbound frame to the write
//!   buffer, and [`Conn::flush`] drains it without ever blocking;
//! * [`WakePipe`], a loopback socket pair executors (and `shutdown`)
//!   write one byte into to interrupt a parked `poll` — the std-only
//!   stand-in for a self-pipe.
//!
//! Nothing here knows the wire protocol beyond the 4-byte length prefix;
//! admission, sessions, and dispatch live in `server.rs`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// `struct pollfd` from `<poll.h>`, laid out for the C ABI.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel, which poll-style loops use for tombstones).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events; the kernel may add [`POLLERR`] / [`POLLHUP`] /
    /// [`POLLNVAL`] even when unrequested.
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition is pending on the descriptor.
pub const POLLERR: i16 = 0x008;
/// The peer hung up (a half-closed or reset connection).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open — a bookkeeping bug if it ever fires.
pub const POLLNVAL: i16 = 0x020;

#[cfg(unix)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
}

/// Blocks until at least one descriptor in `fds` is ready, `timeout`
/// elapses (`None` waits forever), or a signal interrupts the wait
/// (reported as `Ok(0)`, like a timeout — the caller re-evaluates and
/// re-polls either way).
///
/// # Errors
///
/// The raw `poll(2)` failure, `EINTR` excepted.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        // poll's granularity is a millisecond; round up so a nearly
        // expired deadline doesn't busy-spin at timeout 0.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
        None => -1,
    };
    let rc = unsafe {
        poll(
            fds.as_mut_ptr(),
            fds.len() as core::ffi::c_ulong,
            timeout_ms,
        )
    };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(rc as usize)
}

/// A loopback socket pair used to interrupt a parked [`poll_fds`]: any
/// thread with a clone of the write half sends one byte; the reactor
/// holds the read half in its poll set and drains it on wake. Pure std —
/// `pipe(2)` has no std surface, a 127.0.0.1 socket pair does.
pub struct WakePipe {
    rx: TcpStream,
    tx: TcpStream,
}

impl WakePipe {
    /// Builds the pair over an ephemeral loopback listener.
    ///
    /// # Errors
    ///
    /// Socket setup failures.
    pub fn new() -> io::Result<WakePipe> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        let _ = tx.set_nodelay(true);
        Ok(WakePipe { rx, tx })
    }

    /// A clonable write half for executors and shutdown paths.
    ///
    /// # Errors
    ///
    /// Propagates the `try_clone` failure.
    pub fn notifier(&self) -> io::Result<TcpStream> {
        self.tx.try_clone()
    }

    /// The descriptor the reactor polls for readability.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Discards every pending wake byte. Wakes are level-collapsed by
    /// design: N notifications before a drain mean one loop iteration.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 256];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Sends one wake byte through a [`WakePipe::notifier`] clone. A full
/// socket buffer counts as success — the reactor is already guaranteed
/// to wake.
pub fn notify(tx: &TcpStream) {
    let _ = (&*tx).write(&[1u8]);
}

/// One nonblocking connection owned by the reactor: the socket plus its
/// frame-reassembly read buffer and its bounded write buffer.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into complete frames.
    rbuf: Vec<u8>,
    /// Encoded frames (with length prefixes) waiting for the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already been written.
    wpos: usize,
    /// Set once the peer's read side is done: EOF observed, or the
    /// server decided to stop reading (answered a one-shot, Goodbye).
    pub read_closed: bool,
    /// Last moment any byte arrived — drives the mid-frame stall
    /// deadline.
    pub last_progress: Instant,
}

/// How much one `fill` call will read before yielding back to the loop,
/// so one firehose connection cannot starve its neighbors (poll is
/// level-triggered — leftovers re-report readable on the next
/// iteration).
const READ_QUANTUM: usize = 1 << 20;

impl Conn {
    /// Adopts an accepted stream: nonblocking, `TCP_NODELAY` (pipelined
    /// small frames + Nagle + delayed ACK cost ~40 ms/frame).
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            read_closed: false,
            last_progress: Instant::now(),
        })
    }

    /// The descriptor for the poll set.
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads whatever the socket has (up to one quantum) and returns
    /// every *complete* frame body reassembled so far, oldest first.
    /// A clean EOF sets [`Conn::read_closed`]; EOF in the middle of a
    /// frame is an error (the stream's framing is unrecoverable).
    ///
    /// # Errors
    ///
    /// Fatal socket errors, a length prefix beyond `max_frame`, or a
    /// mid-frame EOF. The connection should be dropped on any of them.
    pub fn fill(&mut self, max_frame: u32) -> io::Result<Vec<Vec<u8>>> {
        let mut chunk = [0u8; 16 << 10];
        let mut budget = READ_QUANTUM;
        while budget > 0 {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    if !self.rbuf.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_progress = Instant::now();
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.extract_frames(max_frame)
    }

    fn extract_frames(&mut self, max_frame: u32) -> io::Result<Vec<Vec<u8>>> {
        let mut frames = Vec::new();
        let mut at = 0usize;
        while self.rbuf.len() - at >= 4 {
            let len = u32::from_be_bytes([
                self.rbuf[at],
                self.rbuf[at + 1],
                self.rbuf[at + 2],
                self.rbuf[at + 3],
            ]);
            if len > max_frame {
                self.rbuf.drain(..at);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds MAX_FRAME"),
                ));
            }
            let total = 4 + len as usize;
            if self.rbuf.len() - at < total {
                break;
            }
            frames.push(self.rbuf[at + 4..at + total].to_vec());
            at += total;
        }
        if at > 0 {
            self.rbuf.drain(..at);
        }
        Ok(frames)
    }

    /// True while a frame is partially received — the state the
    /// mid-frame inactivity deadline applies to. Between frames an idle
    /// session may sit forever.
    pub fn mid_frame(&self) -> bool {
        !self.rbuf.is_empty()
    }

    /// Appends one outbound frame (length prefix + body) to the write
    /// buffer. Never blocks and never fails; the buffer's growth is
    /// bounded by the caller's admission control plus the high-water
    /// pushback in `server.rs`.
    pub fn queue_frame(&mut self, body: &[u8]) {
        self.wbuf
            .extend_from_slice(&(body.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(body);
    }

    /// Drains as much of the write buffer as the socket accepts right
    /// now.
    ///
    /// # Errors
    ///
    /// Fatal socket errors (the peer is gone; drop the connection).
    pub fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= 64 << 10 {
            // Compact occasionally so a long-lived slow consumer doesn't
            // pin already-written bytes forever.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Reads and throws away whatever the socket has — the read mode of
    /// a connection that is done (one-shot answered, Goodbye received)
    /// but must keep draining so closing with unread bytes in the
    /// receive buffer doesn't RST the reply away. Returns `Ok(true)`
    /// once the peer's EOF arrives (safe to close immediately).
    ///
    /// # Errors
    ///
    /// Never — socket errors at this stage are as final as EOF and are
    /// folded into `Ok(true)`.
    pub fn discard(&mut self) -> io::Result<bool> {
        let mut sink = [0u8; 16 << 10];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(true);
                }
                Ok(_) => self.last_progress = Instant::now(),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_closed = true;
                    return Ok(true);
                }
            }
        }
    }

    /// Half-closes the write side (FIN after the last flushed byte), the
    /// first step of a graceful close.
    pub fn shutdown_write(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }

    /// Bytes queued and not yet accepted by the socket — the quantity
    /// the high-water mark compares against.
    pub fn buffered(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// True when the poll set should include `POLLOUT` for this
    /// connection.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_and_collapses() {
        let mut pipe = WakePipe::new().expect("wake pipe");
        let tx = pipe.notifier().expect("notifier");
        notify(&tx);
        notify(&tx);
        notify(&tx);
        let mut fds = [PollFd {
            fd: pipe.fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).expect("poll");
        assert_eq!(n, 1, "wake byte reported readable");
        pipe.drain();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0, "drained pipe is quiet");
    }

    #[test]
    fn frames_reassemble_across_partial_reads() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let mut conn = Conn::new(server_side).expect("conn");

        // Two frames, the second split across writes.
        peer.write_all(&3u32.to_be_bytes()).unwrap();
        peer.write_all(b"abc").unwrap();
        peer.write_all(&5u32.to_be_bytes()).unwrap();
        peer.write_all(b"he").unwrap();
        peer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let frames = conn.fill(1 << 20).expect("fill");
        assert_eq!(frames, vec![b"abc".to_vec()]);
        assert!(conn.mid_frame(), "second frame partially buffered");

        peer.write_all(b"llo").unwrap();
        peer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let frames = conn.fill(1 << 20).expect("fill");
        assert_eq!(frames, vec![b"hello".to_vec()]);
        assert!(!conn.mid_frame());

        // Oversized length prefix is a protocol error.
        peer.write_all(&u32::MAX.to_be_bytes()).unwrap();
        peer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(conn.fill(1 << 20).is_err(), "garbage length rejected");
    }

    #[test]
    fn queue_and_flush_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let peer = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let mut conn = Conn::new(server_side).expect("conn");

        conn.queue_frame(b"pong");
        assert!(conn.wants_write());
        assert_eq!(conn.buffered(), 8);
        conn.flush().expect("flush");
        assert!(!conn.wants_write());

        let mut peer = peer;
        peer.set_read_timeout(Some(Duration::from_secs(1))).unwrap();
        let body = crate::proto::read_frame(&mut peer).expect("frame");
        assert_eq!(body, b"pong");
    }
}
