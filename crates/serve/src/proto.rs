//! The eel-serve wire protocol: length-prefixed frames over TCP.
//!
//! Every message is a 4-byte big-endian length followed by that many
//! body bytes. Bodies are versioned by a leading byte so the format can
//! grow without breaking old clients; two versions exist:
//!
//! * **Version 1** (single-shot): a connection carries exactly one
//!   request and one response.
//! * **Version 2** (session): the first frame is a `Hello` handshake;
//!   the connection then carries many *tagged* requests which the
//!   server answers out of order as workers finish, until `Goodbye`.
//!   See [`SessionFrame`] / [`SessionReply`].
//!
//! Request body:
//!
//! ```text
//! u8 version (=1) | u16 op length | op (utf-8) | u8 payload kind
//!   kind 0: u32 length | inline WEF bytes
//!   kind 1: u32 length | utf-8 path on the SERVER's filesystem
//!   kind 2: u32 wef length | inline WEF bytes |
//!           u32 script length | utf-8 edit script
//! ```
//!
//! Kind 2 carries the `edit` op's two inputs — the image and the
//! command script — so the result can be content-addressed by
//! `(image hash, script hash)`. It is an additive extension like the
//! disk tier: old servers reject the unknown kind byte cleanly.
//!
//! Response body:
//!
//! ```text
//! u8 version (=1) | u8 status (0 ok / 1 error / 2 busy) |
//!   u8 tier (0 computed / 1 memory / 2 disk) | u32 length | body bytes |
//!   [u32 fragment hits | u32 fragment total] |
//!   [u8 discovery (0 symbols / 1 inferred) [u8 machine (WEF tag)]]
//! ```
//!
//! `tier` reports where the result came from: `0` is a fresh
//! computation, `1` the in-memory content-addressed cache (an LRU hit,
//! or a join onto an identical in-flight request), `2` the on-disk
//! spill tier. Value `2` was added with the disk tier; the byte was
//! previously a 0/1 "cached" flag, so the meaning of `0` and `1` is
//! unchanged and the protocol version stays 1.
//!
//! The trailing fragment-accounting pair is another additive extension:
//! a *computed* response may append how many of the image's routines
//! were served from the per-routine fragment cache (`hits`) out of how
//! many the op decomposed into (`total`). Old decoders stop at the body
//! and never see the extension; new decoders treat a body with nothing
//! after it as "no fragment accounting" (`None`), so both directions
//! interoperate and the protocol version stays 1.
//!
//! The discovery byte and the machine byte are two further additive
//! extensions: an op that analyzed an image appends how its routine set
//! was found, and — immediately after, never alone — the WEF machine
//! tag of the analyzed image (`eel_exe::Machine::to_byte`), so clients
//! can report which backend served the result. `remaining()` after the
//! body disambiguates: ≥8 bytes start with the fragment pair; then one
//! trailing byte is discovery, two are discovery + machine. The full
//! byte-level specification, including a worked hex example, lives in
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};

/// Protocol version byte for single-shot (one request per connection)
/// exchanges.
pub const VERSION: u8 = 1;

/// Protocol version byte for pipelined session connections. Added by
/// the additive-extension path: version-1 bodies are untouched, and a
/// server that predates sessions rejects the unknown version byte
/// cleanly instead of misparsing.
pub const SESSION_VERSION: u8 = 2;

/// Upper bound on a frame body; larger frames are a protocol error (a
/// defense against garbage length prefixes, not a tuning knob).
pub const MAX_FRAME: u32 = 64 << 20;

/// How a request names its WEF executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The WEF image bytes travel inline with the request.
    Inline(Vec<u8>),
    /// A path the *server* reads (client and server share a filesystem).
    Path(String),
    /// The `edit` op's inputs: inline WEF bytes plus the command script
    /// to run against them (see `eel_edit`).
    Edit {
        /// The executable to edit.
        wef: Vec<u8>,
        /// The `eeledit` command script.
        script: String,
    },
}

impl Payload {
    /// An empty inline payload, for operations that take none
    /// (`ping`, `metrics`, `shutdown`).
    pub fn none() -> Payload {
        Payload::Inline(Vec::new())
    }
}

/// One request: an operation name plus the executable it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Operation name (`disasm`, `cfg-summary`, `liveness`, `instrument`,
    /// `stat`, `metrics`, `ping`, `shutdown`).
    pub op: String,
    /// The executable being analyzed.
    pub payload: Payload,
}

/// Which tier of the server's cache served a successful response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Computed fresh for this request (a miss of every tier).
    Computed,
    /// Served from the in-memory LRU, or joined onto an identical
    /// in-flight computation.
    Memory,
    /// Loaded from the on-disk spill tier (and promoted back into the
    /// LRU, so the next identical request reports [`CacheTier::Memory`]).
    Disk,
}

impl CacheTier {
    /// True when the result was served without recomputation — any tier
    /// but [`CacheTier::Computed`].
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheTier::Computed)
    }

    fn to_byte(self) -> u8 {
        match self {
            CacheTier::Computed => 0,
            CacheTier::Memory => 1,
            CacheTier::Disk => 2,
        }
    }

    fn from_byte(b: u8) -> Option<CacheTier> {
        match b {
            0 => Some(CacheTier::Computed),
            1 => Some(CacheTier::Memory),
            2 => Some(CacheTier::Disk),
            _ => None,
        }
    }
}

/// How an analyzed image's routine set was discovered — the wire-level
/// mirror of `eel_core::DiscoverySource`, carried as a trailing
/// extension on successful responses so clients of a stripped image
/// know its routine names are synthetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discovery {
    /// Routines came from the image's symbol table (§3.1 refinement).
    Symbols,
    /// The image was symbol-less; routines came from `eel-strip`'s
    /// inference rules.
    Inferred,
}

impl Discovery {
    /// The spelling ops print in `stat` bodies and tools print in logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Discovery::Symbols => "symbols",
            Discovery::Inferred => "inferred",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            Discovery::Symbols => 0,
            Discovery::Inferred => 1,
        }
    }

    /// `None` for bytes from a future peer — decoding stays tolerant so
    /// the extension can grow without a version bump.
    fn from_byte(b: u8) -> Option<Discovery> {
        match b {
            0 => Some(Discovery::Symbols),
            1 => Some(Discovery::Inferred),
            _ => None,
        }
    }
}

/// One response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded; `body` is its rendered result (text for
    /// the analysis ops, WEF bytes for `instrument`).
    Ok {
        /// Which cache tier served the result.
        tier: CacheTier,
        /// The result.
        body: Vec<u8>,
        /// Per-routine fragment-cache accounting for a computed result:
        /// `(hits, total)` — how many routines were stitched from cached
        /// fragments out of how many the op decomposed into. `None` when
        /// the result came from a whole-image cache tier (no
        /// decomposition ran), the op does not decompose, or the peer
        /// predates the extension.
        fragments: Option<(u32, u32)>,
        /// How the analyzed image's routines were discovered: from its
        /// symbol table, or (for a stripped image) by `eel-strip`'s
        /// inference rules. `None` when the op never analyzed an image
        /// or the peer predates the extension.
        discovery: Option<Discovery>,
        /// The machine the analyzed image targets (its WEF header tag),
        /// so clients can report which backend served the result. Rides
        /// the wire only when `discovery` does — the machine byte is
        /// encoded immediately after the discovery byte, which is what
        /// keeps the trailing-extension lengths unambiguous. `None`
        /// when the op never analyzed an image or the peer predates the
        /// extension.
        machine: Option<eel_exe::Machine>,
    },
    /// The operation failed; the message says why.
    Err(String),
    /// The server's bounded request queue is full — back off and retry.
    Busy,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one length-prefixed frame body.
///
/// # Errors
///
/// I/O failures, or a length prefix beyond [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O failures, or a body beyond [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME as usize {
        return Err(bad(format!(
            "frame of {} bytes exceeds MAX_FRAME",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

impl Request {
    /// Appends the versionless field encoding (`op length | op | kind |
    /// payload`) — shared by the v1 body and v2 tagged frames.
    fn encode_fields(&self, out: &mut Vec<u8>) {
        let op = self.op.as_bytes();
        out.extend_from_slice(&(op.len() as u16).to_be_bytes());
        out.extend_from_slice(op);
        match &self.payload {
            Payload::Inline(b) => {
                out.push(0);
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
            Payload::Path(p) => {
                out.push(1);
                out.extend_from_slice(&(p.len() as u32).to_be_bytes());
                out.extend_from_slice(p.as_bytes());
            }
            Payload::Edit { wef, script } => {
                out.push(2);
                out.extend_from_slice(&(wef.len() as u32).to_be_bytes());
                out.extend_from_slice(wef);
                out.extend_from_slice(&(script.len() as u32).to_be_bytes());
                out.extend_from_slice(script.as_bytes());
            }
        }
    }

    fn decode_fields(c: &mut Cursor<'_>) -> io::Result<Request> {
        let op_len = c.u16("op length")? as usize;
        let op = String::from_utf8(c.take(op_len, "op")?.to_vec())
            .map_err(|_| bad("op is not utf-8"))?;
        let kind = c.u8("payload kind")?;
        let payload = match kind {
            0 => {
                let len = c.u32("payload length")? as usize;
                Payload::Inline(c.take(len, "payload")?.to_vec())
            }
            1 => {
                let len = c.u32("payload length")? as usize;
                Payload::Path(
                    String::from_utf8(c.take(len, "payload")?.to_vec())
                        .map_err(|_| bad("payload path is not utf-8"))?,
                )
            }
            2 => {
                let wef_len = c.u32("wef length")? as usize;
                let wef = c.take(wef_len, "wef")?.to_vec();
                let script_len = c.u32("script length")? as usize;
                let script = String::from_utf8(c.take(script_len, "script")?.to_vec())
                    .map_err(|_| bad("edit script is not utf-8"))?;
                Payload::Edit { wef, script }
            }
            k => return Err(bad(format!("unknown payload kind {k}"))),
        };
        Ok(Request { op, payload })
    }

    /// Serializes to a (version 1) frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.op.len());
        out.push(VERSION);
        self.encode_fields(&mut out);
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies, bad versions, or non-UTF-8
    /// names.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != VERSION {
            return Err(bad(format!("unsupported protocol version {version}")));
        }
        Request::decode_fields(&mut c)
    }
}

impl Response {
    /// Appends the versionless field encoding (`status | tier | length |
    /// body`) — shared by the v1 body and v2 tagged frames.
    fn encode_fields(&self, out: &mut Vec<u8>) {
        type Fields<'a> = (
            u8,
            u8,
            &'a [u8],
            Option<(u32, u32)>,
            Option<Discovery>,
            Option<eel_exe::Machine>,
        );
        let (status, tier, body, fragments, discovery, machine): Fields<'_> = match self {
            Response::Ok {
                tier,
                body,
                fragments,
                discovery,
                machine,
            } => (0, tier.to_byte(), body, *fragments, *discovery, *machine),
            Response::Err(msg) => (1, 0, msg.as_bytes(), None, None, None),
            Response::Busy => (2, 0, &[], None, None, None),
        };
        out.push(status);
        out.push(tier);
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
        // Trailing extensions, only ever after a successful body: old
        // decoders stop at the body length and never read them. The
        // fragment pair (8 bytes) and the discovery byte (1 byte) are
        // each independently optional — the decoder tells them apart by
        // how many bytes remain, so `fragments: None` with
        // `discovery: Some` encodes as a lone trailing byte. The
        // machine byte rides only behind a discovery byte (both are set
        // from the same analysis), so a lone trailing byte is always
        // discovery and a trailing pair is discovery + machine.
        if status == 0 {
            if let Some((hits, total)) = fragments {
                out.extend_from_slice(&hits.to_be_bytes());
                out.extend_from_slice(&total.to_be_bytes());
            }
            if let Some(d) = discovery {
                out.push(d.to_byte());
                if let Some(m) = machine {
                    out.push(m.to_byte());
                }
            }
        }
    }

    fn decode_fields(c: &mut Cursor<'_>) -> io::Result<Response> {
        let status = c.u8("status")?;
        let tier_byte = c.u8("cache tier")?;
        let len = c.u32("body length")? as usize;
        let bytes = c.take(len, "body")?.to_vec();
        // The trailing extensions: a frame from a peer that predates
        // them simply ends at the body. The fragment pair is 8 bytes,
        // the discovery flag 1 byte; `remaining()` disambiguates a lone
        // discovery byte from a fragment pair.
        let fragments = if status == 0 && c.remaining() >= 8 {
            Some((c.u32("fragment hits")?, c.u32("fragment total")?))
        } else {
            None
        };
        let mut machine = None;
        let discovery = if status == 0 && c.remaining() >= 1 {
            // An unknown byte is a future peer's extension, not an
            // error — decode stays tolerant.
            let d = Discovery::from_byte(c.u8("discovery")?);
            // The machine tag only ever follows a discovery byte; an
            // unknown byte (a future machine) decodes as `None`.
            if c.remaining() >= 1 {
                machine = eel_exe::Machine::from_byte(c.u8("machine")?);
            }
            d
        } else {
            None
        };
        Ok(match status {
            0 => Response::Ok {
                tier: CacheTier::from_byte(tier_byte)
                    .ok_or_else(|| bad(format!("unknown cache tier {tier_byte}")))?,
                body: bytes,
                fragments,
                discovery,
                machine,
            },
            1 => Response::Err(String::from_utf8_lossy(&bytes).into_owned()),
            2 => Response::Busy,
            s => return Err(bad(format!("unknown response status {s}"))),
        })
    }

    /// Serializes to a (version 1) frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(VERSION);
        self.encode_fields(&mut out);
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies or unknown status codes.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != VERSION {
            return Err(bad(format!("unsupported protocol version {version}")));
        }
        Response::decode_fields(&mut c)
    }
}

/// A client→server frame on a version-2 session connection.
///
/// The first frame on the connection must be [`SessionFrame::Hello`];
/// after the server's [`SessionReply::HelloAck`] the client may keep up
/// to the granted window of tagged requests in flight. Frames the
/// server cannot admit (window overflow) are answered per-frame with a
/// tagged [`Response::Busy`]; the connection survives.
///
/// ```text
/// Hello:    u8 version (=2) | u8 0x00 | u32 requested window
/// Request:  u8 version (=2) | u8 0x01 | u64 id | <request fields>
/// Goodbye:  u8 version (=2) | u8 0x02
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFrame {
    /// Opens the session, requesting an in-flight window (0 = server
    /// default). The server replies with the window it actually grants.
    Hello {
        /// Requested maximum number of unanswered requests.
        window: u32,
    },
    /// One tagged request. `id` is chosen by the client and echoed on
    /// the matching [`SessionReply::Tagged`]; reusing an id while it is
    /// in flight is a client error (the responses are indistinguishable).
    Request {
        /// Client-chosen correlation id.
        id: u64,
        /// The request itself, identical to a v1 body's fields.
        request: Request,
    },
    /// Ends the session. The server finishes in-flight requests, writes
    /// their replies, and closes the connection.
    Goodbye,
}

impl SessionFrame {
    /// Serializes to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(SESSION_VERSION);
        match self {
            SessionFrame::Hello { window } => {
                out.push(0x00);
                out.extend_from_slice(&window.to_be_bytes());
            }
            SessionFrame::Request { id, request } => {
                out.push(0x01);
                out.extend_from_slice(&id.to_be_bytes());
                request.encode_fields(&mut out);
            }
            SessionFrame::Goodbye => out.push(0x02),
        }
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies, a non-session version byte,
    /// or an unknown frame kind.
    pub fn decode(body: &[u8]) -> io::Result<SessionFrame> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != SESSION_VERSION {
            return Err(bad(format!("not a session frame (version {version})")));
        }
        match c.u8("session frame kind")? {
            0x00 => Ok(SessionFrame::Hello {
                window: c.u32("window")?,
            }),
            0x01 => Ok(SessionFrame::Request {
                id: c.u64("request id")?,
                request: Request::decode_fields(&mut c)?,
            }),
            0x02 => Ok(SessionFrame::Goodbye),
            k => Err(bad(format!("unknown session frame kind {k:#04x}"))),
        }
    }
}

/// A server→client frame on a version-2 session connection.
///
/// ```text
/// HelloAck: u8 version (=2) | u8 0x80 | u32 granted window
/// Tagged:   u8 version (=2) | u8 0x81 | u64 id | <response fields>
/// ```
///
/// Replies carry the high bit in the kind byte so a frame's direction
/// is unambiguous in captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionReply {
    /// Accepts the session and grants an in-flight window (the
    /// requested window clamped to the server's configured maximum).
    HelloAck {
        /// Granted maximum number of unanswered requests.
        window: u32,
    },
    /// One tagged response; `id` echoes the request it answers. Tagged
    /// replies arrive in **completion** order, not submission order.
    Tagged {
        /// The correlation id from the matching request.
        id: u64,
        /// The response itself, identical to a v1 body's fields.
        response: Response,
    },
}

impl SessionReply {
    /// Serializes to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(SESSION_VERSION);
        match self {
            SessionReply::HelloAck { window } => {
                out.push(0x80);
                out.extend_from_slice(&window.to_be_bytes());
            }
            SessionReply::Tagged { id, response } => {
                out.push(0x81);
                out.extend_from_slice(&id.to_be_bytes());
                response.encode_fields(&mut out);
            }
        }
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies, a non-session version byte,
    /// or an unknown frame kind.
    pub fn decode(body: &[u8]) -> io::Result<SessionReply> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != SESSION_VERSION {
            return Err(bad(format!("not a session reply (version {version})")));
        }
        match c.u8("session reply kind")? {
            0x80 => Ok(SessionReply::HelloAck {
                window: c.u32("window")?,
            }),
            0x81 => Ok(SessionReply::Tagged {
                id: c.u64("request id")?,
                response: Response::decode_fields(&mut c)?,
            }),
            k => Err(bad(format!("unknown session reply kind {k:#04x}"))),
        }
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or_else(|| bad(format!("truncated frame while reading {what}")))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> io::Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        for payload in [
            Payload::Inline(vec![1, 2, 3]),
            Payload::Path("/tmp/a.wef".into()),
            Payload::none(),
            Payload::Edit {
                wef: vec![4, 5, 6, 7],
                script: "counter main\napply\n".into(),
            },
            Payload::Edit {
                wef: Vec::new(),
                script: String::new(),
            },
        ] {
            let req = Request {
                op: "cfg-summary".into(),
                payload,
            };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        for resp in [
            Response::Ok {
                tier: CacheTier::Memory,
                body: b"hello".to_vec(),
                fragments: None,
                discovery: None,
                machine: None,
            },
            Response::Ok {
                tier: CacheTier::Computed,
                body: Vec::new(),
                fragments: None,
                discovery: None,
                machine: None,
            },
            Response::Ok {
                tier: CacheTier::Disk,
                body: b"warm".to_vec(),
                fragments: None,
                discovery: Some(Discovery::Symbols),
                machine: Some(eel_exe::Machine::Mips),
            },
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"stitched".to_vec(),
                fragments: Some((7, 8)),
                discovery: Some(Discovery::Inferred),
                machine: Some(eel_exe::Machine::Sparc),
            },
            Response::Ok {
                tier: CacheTier::Computed,
                body: Vec::new(),
                fragments: Some((0, 0)),
                discovery: None,
                machine: None,
            },
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"bare".to_vec(),
                fragments: None,
                discovery: Some(Discovery::Inferred),
                machine: None,
            },
            Response::Err("nope".into()),
            Response::Busy,
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        assert!(
            Response::decode(&[1, 0, 9, 0, 0, 0, 0]).is_err(),
            "unknown cache tier rejected"
        );
    }

    #[test]
    fn fragment_accounting_is_a_trailing_extension() {
        // A frame from before the extension — body and nothing after —
        // decodes with no fragment accounting.
        let old = [1u8, 0, 0, 0, 0, 0, 2, b'o', b'k'];
        assert_eq!(
            Response::decode(&old).unwrap(),
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"ok".to_vec(),
                fragments: None,
                discovery: None,
                machine: None,
            }
        );
        // The extension also rides tagged session replies, where the
        // response fields likewise end the frame.
        let reply = SessionReply::Tagged {
            id: 9,
            response: Response::Ok {
                tier: CacheTier::Computed,
                body: b"x".to_vec(),
                fragments: Some((3, 5)),
                discovery: Some(Discovery::Inferred),
                machine: None,
            },
        };
        assert_eq!(SessionReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn discovery_is_a_trailing_extension() {
        // A fragments-only frame (pre-discovery peer): the 8 trailing
        // bytes are the pair, and discovery stays None.
        let enc = Response::Ok {
            tier: CacheTier::Computed,
            body: b"ok".to_vec(),
            fragments: Some((1, 2)),
            discovery: None,
            machine: None,
        }
        .encode();
        assert_eq!(enc.len(), 1 + 2 + 4 + 2 + 8);
        // A discovery-only frame encodes a lone trailing byte, which the
        // decoder tells apart from a fragment pair by length.
        let enc = Response::Ok {
            tier: CacheTier::Computed,
            body: b"ok".to_vec(),
            fragments: None,
            discovery: Some(Discovery::Symbols),
            machine: None,
        }
        .encode();
        assert_eq!(enc.len(), 1 + 2 + 4 + 2 + 1);
        assert_eq!(
            Response::decode(&enc).unwrap(),
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"ok".to_vec(),
                fragments: None,
                discovery: Some(Discovery::Symbols),
                machine: None,
            }
        );
        // A discovery byte from a future peer decodes as None rather
        // than an error — the extension stays additive.
        let mut future = enc;
        *future.last_mut().unwrap() = 9;
        assert_eq!(
            Response::decode(&future).unwrap(),
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"ok".to_vec(),
                fragments: None,
                discovery: None,
                machine: None,
            }
        );
        // Errors never carry either extension.
        assert_eq!(Discovery::Inferred.as_str(), "inferred");
        assert_eq!(Discovery::Symbols.as_str(), "symbols");
    }

    #[test]
    fn machine_is_a_trailing_extension() {
        use eel_exe::Machine;
        // The machine byte rides immediately after the discovery byte:
        // one extra trailing byte versus a discovery-only frame.
        let with = Response::Ok {
            tier: CacheTier::Computed,
            body: b"ok".to_vec(),
            fragments: None,
            discovery: Some(Discovery::Symbols),
            machine: Some(Machine::Mips),
        };
        let enc = with.encode();
        assert_eq!(enc.len(), 1 + 2 + 4 + 2 + 2);
        assert_eq!(Response::decode(&enc).unwrap(), with);
        // A machine without a discovery byte never encodes — the lone
        // trailing byte would be misread as discovery by old peers — so
        // the field quietly drops instead.
        let orphan = Response::Ok {
            tier: CacheTier::Computed,
            body: b"ok".to_vec(),
            fragments: None,
            discovery: None,
            machine: Some(Machine::Mips),
        }
        .encode();
        assert_eq!(orphan.len(), 1 + 2 + 4 + 2);
        // All three extensions together: pair, discovery, machine.
        let full = Response::Ok {
            tier: CacheTier::Memory,
            body: b"ok".to_vec(),
            fragments: Some((2, 3)),
            discovery: Some(Discovery::Inferred),
            machine: Some(Machine::Sparc),
        };
        let enc = full.encode();
        assert_eq!(enc.len(), 1 + 2 + 4 + 2 + 8 + 2);
        assert_eq!(Response::decode(&enc).unwrap(), full);
        // A machine byte from a future peer decodes as None, tolerantly.
        let mut future = enc;
        *future.last_mut().unwrap() = 0x7f;
        match Response::decode(&future).unwrap() {
            Response::Ok {
                discovery, machine, ..
            } => {
                assert_eq!(discovery, Some(Discovery::Inferred));
                assert_eq!(machine, None);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let req = Request {
            op: "stat".into(),
            payload: Payload::Inline(vec![0; 16]),
        };
        let enc = req.encode();
        for cut in 0..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Request::decode(&[9, 0, 0]).is_err(), "bad version");
        assert!(
            Response::decode(&[1, 7, 0, 0, 0, 0, 0]).is_err(),
            "bad status"
        );
        // Kind-2 (edit) payloads: every truncation point must be rejected,
        // including cuts inside the second (script) length field.
        let req = Request {
            op: "edit".into(),
            payload: Payload::Edit {
                wef: vec![0; 8],
                script: "apply".into(),
            },
        };
        let enc = req.encode();
        for cut in 0..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "edit cut at {cut}");
        }
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    #[test]
    fn session_frame_round_trip() {
        for frame in [
            SessionFrame::Hello { window: 32 },
            SessionFrame::Request {
                id: 0xDEAD_BEEF_0000_0001,
                request: Request {
                    op: "disasm".into(),
                    payload: Payload::Inline(vec![9, 8, 7]),
                },
            },
            SessionFrame::Request {
                id: 0,
                request: Request {
                    op: "stat".into(),
                    payload: Payload::Path("/tmp/x.wef".into()),
                },
            },
            SessionFrame::Goodbye,
        ] {
            assert_eq!(SessionFrame::decode(&frame.encode()).unwrap(), frame);
        }
    }

    #[test]
    fn session_reply_round_trip() {
        for reply in [
            SessionReply::HelloAck { window: 8 },
            SessionReply::Tagged {
                id: 42,
                response: Response::Ok {
                    tier: CacheTier::Disk,
                    body: b"out".to_vec(),
                    fragments: None,
                    discovery: Some(Discovery::Inferred),
                    machine: None,
                },
            },
            SessionReply::Tagged {
                id: u64::MAX,
                response: Response::Busy,
            },
            SessionReply::Tagged {
                id: 7,
                response: Response::Err("boom".into()),
            },
        ] {
            assert_eq!(SessionReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn session_frames_reject_v1_and_truncation() {
        // A v1 body is not a session frame, and vice versa.
        let v1 = Request {
            op: "ping".into(),
            payload: Payload::none(),
        }
        .encode();
        assert!(SessionFrame::decode(&v1).is_err(), "v1 body as session");
        let hello = SessionFrame::Hello { window: 4 }.encode();
        assert!(Request::decode(&hello).is_err(), "session frame as v1");

        let enc = SessionFrame::Request {
            id: 3,
            request: Request {
                op: "stat".into(),
                payload: Payload::Inline(vec![0; 8]),
            },
        }
        .encode();
        for cut in 0..enc.len() {
            assert!(SessionFrame::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        assert!(
            SessionFrame::decode(&[SESSION_VERSION, 0x7f]).is_err(),
            "unknown frame kind"
        );
        assert!(
            SessionReply::decode(&[SESSION_VERSION, 0x01, 0, 0, 0, 0]).is_err(),
            "request kind is not a reply kind"
        );
    }

    #[test]
    fn frame_round_trip_and_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"abc");

        let mut oversized = (MAX_FRAME + 1).to_be_bytes().to_vec();
        oversized.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut &oversized[..]).is_err());
    }
}
