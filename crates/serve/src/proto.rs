//! The eel-serve wire protocol: length-prefixed frames over TCP.
//!
//! Every message is a 4-byte big-endian length followed by that many
//! body bytes; a connection carries exactly one request and one response
//! (batch clients open one connection per item). Bodies are versioned by
//! a leading byte so the format can grow without breaking old clients.
//!
//! Request body:
//!
//! ```text
//! u8 version (=1) | u16 op length | op (utf-8) | u8 payload kind
//!   kind 0: u32 length | inline WEF bytes
//!   kind 1: u32 length | utf-8 path on the SERVER's filesystem
//! ```
//!
//! Response body:
//!
//! ```text
//! u8 version (=1) | u8 status (0 ok / 1 error / 2 busy) |
//!   u8 tier (0 computed / 1 memory / 2 disk) | u32 length | body bytes
//! ```
//!
//! `tier` reports where the result came from: `0` is a fresh
//! computation, `1` the in-memory content-addressed cache (an LRU hit,
//! or a join onto an identical in-flight request), `2` the on-disk
//! spill tier. Value `2` was added with the disk tier; the byte was
//! previously a 0/1 "cached" flag, so the meaning of `0` and `1` is
//! unchanged and the protocol version stays 1. The full byte-level
//! specification, including a worked hex example, lives in
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};

/// Protocol version byte.
pub const VERSION: u8 = 1;

/// Upper bound on a frame body; larger frames are a protocol error (a
/// defense against garbage length prefixes, not a tuning knob).
pub const MAX_FRAME: u32 = 64 << 20;

/// How a request names its WEF executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The WEF image bytes travel inline with the request.
    Inline(Vec<u8>),
    /// A path the *server* reads (client and server share a filesystem).
    Path(String),
}

impl Payload {
    /// An empty inline payload, for operations that take none
    /// (`ping`, `metrics`, `shutdown`).
    pub fn none() -> Payload {
        Payload::Inline(Vec::new())
    }
}

/// One request: an operation name plus the executable it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Operation name (`disasm`, `cfg-summary`, `liveness`, `instrument`,
    /// `stat`, `metrics`, `ping`, `shutdown`).
    pub op: String,
    /// The executable being analyzed.
    pub payload: Payload,
}

/// Which tier of the server's cache served a successful response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Computed fresh for this request (a miss of every tier).
    Computed,
    /// Served from the in-memory LRU, or joined onto an identical
    /// in-flight computation.
    Memory,
    /// Loaded from the on-disk spill tier (and promoted back into the
    /// LRU, so the next identical request reports [`CacheTier::Memory`]).
    Disk,
}

impl CacheTier {
    /// True when the result was served without recomputation — any tier
    /// but [`CacheTier::Computed`].
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheTier::Computed)
    }

    fn to_byte(self) -> u8 {
        match self {
            CacheTier::Computed => 0,
            CacheTier::Memory => 1,
            CacheTier::Disk => 2,
        }
    }

    fn from_byte(b: u8) -> Option<CacheTier> {
        match b {
            0 => Some(CacheTier::Computed),
            1 => Some(CacheTier::Memory),
            2 => Some(CacheTier::Disk),
            _ => None,
        }
    }
}

/// One response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded; `body` is its rendered result (text for
    /// the analysis ops, WEF bytes for `instrument`).
    Ok {
        /// Which cache tier served the result.
        tier: CacheTier,
        /// The result.
        body: Vec<u8>,
    },
    /// The operation failed; the message says why.
    Err(String),
    /// The server's bounded request queue is full — back off and retry.
    Busy,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one length-prefixed frame body.
///
/// # Errors
///
/// I/O failures, or a length prefix beyond [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O failures, or a body beyond [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME as usize {
        return Err(bad(format!(
            "frame of {} bytes exceeds MAX_FRAME",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

impl Request {
    /// Serializes to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let op = self.op.as_bytes();
        let (kind, bytes): (u8, &[u8]) = match &self.payload {
            Payload::Inline(b) => (0, b),
            Payload::Path(p) => (1, p.as_bytes()),
        };
        let mut out = Vec::with_capacity(8 + op.len() + bytes.len());
        out.push(VERSION);
        out.extend_from_slice(&(op.len() as u16).to_be_bytes());
        out.extend_from_slice(op);
        out.push(kind);
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(bytes);
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies, bad versions, or non-UTF-8
    /// names.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != VERSION {
            return Err(bad(format!("unsupported protocol version {version}")));
        }
        let op_len = c.u16("op length")? as usize;
        let op = String::from_utf8(c.take(op_len, "op")?.to_vec())
            .map_err(|_| bad("op is not utf-8"))?;
        let kind = c.u8("payload kind")?;
        let len = c.u32("payload length")? as usize;
        let bytes = c.take(len, "payload")?.to_vec();
        let payload = match kind {
            0 => Payload::Inline(bytes),
            1 => Payload::Path(
                String::from_utf8(bytes).map_err(|_| bad("payload path is not utf-8"))?,
            ),
            k => return Err(bad(format!("unknown payload kind {k}"))),
        };
        Ok(Request { op, payload })
    }
}

impl Response {
    /// Serializes to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let (status, tier, body): (u8, u8, &[u8]) = match self {
            Response::Ok { tier, body } => (0, tier.to_byte(), body),
            Response::Err(msg) => (1, 0, msg.as_bytes()),
            Response::Busy => (2, 0, &[]),
        };
        let mut out = Vec::with_capacity(7 + body.len());
        out.push(VERSION);
        out.push(status);
        out.push(tier);
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
        out
    }

    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for truncated bodies or unknown status codes.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let mut c = Cursor { body, at: 0 };
        let version = c.u8("version")?;
        if version != VERSION {
            return Err(bad(format!("unsupported protocol version {version}")));
        }
        let status = c.u8("status")?;
        let tier_byte = c.u8("cache tier")?;
        let len = c.u32("body length")? as usize;
        let bytes = c.take(len, "body")?.to_vec();
        Ok(match status {
            0 => Response::Ok {
                tier: CacheTier::from_byte(tier_byte)
                    .ok_or_else(|| bad(format!("unknown cache tier {tier_byte}")))?,
                body: bytes,
            },
            1 => Response::Err(String::from_utf8_lossy(&bytes).into_owned()),
            2 => Response::Busy,
            s => return Err(bad(format!("unknown response status {s}"))),
        })
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or_else(|| bad(format!("truncated frame while reading {what}")))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> io::Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        for payload in [
            Payload::Inline(vec![1, 2, 3]),
            Payload::Path("/tmp/a.wef".into()),
            Payload::none(),
        ] {
            let req = Request {
                op: "cfg-summary".into(),
                payload,
            };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        for resp in [
            Response::Ok {
                tier: CacheTier::Memory,
                body: b"hello".to_vec(),
            },
            Response::Ok {
                tier: CacheTier::Computed,
                body: Vec::new(),
            },
            Response::Ok {
                tier: CacheTier::Disk,
                body: b"warm".to_vec(),
            },
            Response::Err("nope".into()),
            Response::Busy,
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        assert!(
            Response::decode(&[1, 0, 9, 0, 0, 0, 0]).is_err(),
            "unknown cache tier rejected"
        );
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let req = Request {
            op: "stat".into(),
            payload: Payload::Inline(vec![0; 16]),
        };
        let enc = req.encode();
        for cut in 0..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Request::decode(&[9, 0, 0]).is_err(), "bad version");
        assert!(
            Response::decode(&[1, 7, 0, 0, 0, 0, 0]).is_err(),
            "bad status"
        );
    }

    #[test]
    fn frame_round_trip_and_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"abc");

        let mut oversized = (MAX_FRAME + 1).to_be_bytes().to_vec();
        oversized.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut &oversized[..]).is_err());
    }
}
