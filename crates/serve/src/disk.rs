//! The on-disk spill tier for the eel-serve result cache.
//!
//! `Ready` result entries from the in-memory LRU spill to a cache
//! directory, one file per `(content hash, op)`, so a daemon restart or
//! an LRU eviction costs a disk read instead of a re-analysis. The tier
//! is strictly a second chance: every lookup goes memory first, disk
//! second, compute last, and a disk hit is promoted back into the LRU by
//! the caller.
//!
//! Two entry populations share the directory and the byte budget:
//! whole-image results (`.eelc`, hash = image content hash) and
//! per-routine analysis fragments (`.eelf`, ops prefixed `frag.`, hash =
//! routine content key). The format below is identical for both; only
//! the suffix differs, so operators can size each population at a
//! glance.
//!
//! **Entry format** (all integers big-endian):
//!
//! ```text
//! offset size  field
//! 0      4     magic "EELC"
//! 4      2     format version (= DISK_FORMAT_VERSION)
//! 6      2     op length N
//! 8      8     FNV-1a content hash of the WEF image
//! 16     8     FNV-1a checksum of the payload
//! 24     4     payload length M
//! 28     N     op name (utf-8)
//! 28+N   M     payload (the rendered op result)
//! ```
//!
//! A file whose magic, version, op, hash, length, or checksum does not
//! match what the filename promises is *stale or corrupt*: it is counted
//! (`serve.cache.disk.corrupt`), deleted, and treated as a miss, so the
//! entry is recomputed and rewritten in the current format. Truncated
//! files (a crash mid-write of some future non-atomic writer) fail the
//! length check the same way.
//!
//! **Crash safety**: entries are written to a `.tmp` sibling, fsynced,
//! then renamed into place — readers never observe a half-written entry
//! under the final name. Leftover `.tmp` files from a previous crash are
//! swept on open.
//!
//! **Budget**: after each write a janitor prunes the directory
//! oldest-first (by modification time) until the total is within the
//! byte budget; the just-written entry always survives, mirroring the
//! in-memory LRU's "newest insertion is never the victim" rule.
//!
//! **Degraded mode**: if the directory cannot be created or a write
//! fails, the tier warns to stderr once, flips itself off, and the
//! server keeps serving memory-only — a broken disk must never take the
//! service down.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Instant, SystemTime};

use crate::cache::content_hash;

/// Version of the on-disk entry format. Bump it whenever the header or
/// payload encoding changes; readers ignore (and rewrite) entries
/// carrying any other version.
pub const DISK_FORMAT_VERSION: u16 = 1;

/// Magic bytes opening every cache entry file.
const MAGIC: [u8; 4] = *b"EELC";

/// Fixed header length in front of the op name and payload.
const HEADER_LEN: usize = 28;

/// Filename suffix for committed whole-image result entries; anything
/// the janitor and the scanner don't recognize is ignored.
const ENTRY_SUFFIX: &str = ".eelc";

/// Filename suffix for per-routine fragment sidecars (ops carrying the
/// `frag.` prefix, keyed by routine content key instead of image hash).
/// A distinct suffix keeps the two populations visible to operators —
/// `ls *.eelf` shows exactly the fragment tier — while the janitor and
/// budget treat both uniformly.
const FRAGMENT_SUFFIX: &str = ".eelf";

/// The on-disk suffix an op's entries are committed under.
fn suffix_for(op: &str) -> &'static str {
    if op.starts_with("frag.") {
        FRAGMENT_SUFFIX
    } else {
        ENTRY_SUFFIX
    }
}

/// Is this filename a committed cache entry (either population)?
fn is_entry_name(name: &str) -> bool {
    name.ends_with(ENTRY_SUFFIX) || name.ends_with(FRAGMENT_SUFFIX)
}

/// The disk tier. One instance per server, shared across workers; all
/// methods take `&self` and are safe to call concurrently (the worst
/// race is two workers writing the same content-addressed entry, which
/// is idempotent by construction).
pub struct DiskCache {
    dir: PathBuf,
    budget: u64,
    /// Set once a fatal I/O error flips the tier off.
    degraded: AtomicBool,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory with a byte budget.
    ///
    /// Never fails: an unusable directory yields a degraded instance
    /// that answers every load with `None` and drops every store, after
    /// warning once on stderr — the server keeps serving memory-only.
    pub fn open(dir: impl Into<PathBuf>, budget: u64) -> DiskCache {
        let cache = DiskCache {
            dir: dir.into(),
            budget,
            degraded: AtomicBool::new(false),
        };
        if let Err(e) = cache.prepare_dir() {
            cache.degrade(&format!(
                "cannot open cache dir {}: {e}",
                cache.dir.display()
            ));
        }
        cache
    }

    fn prepare_dir(&self) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        // Sweep temp files a crashed writer left behind, then publish the
        // initial retained size.
        let mut total = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if is_entry_name(&name) {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        eel_obs::gauge("serve.cache.disk.bytes").set(total as i64);
        Ok(())
    }

    /// The cache directory this tier spills into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Has a fatal I/O error flipped the tier off?
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Warns once, then silences the tier for the rest of the process.
    fn degrade(&self, why: &str) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!("eelserved: disk cache disabled, serving memory-only: {why}");
        }
    }

    fn entry_path(&self, hash: u64, op: &str) -> PathBuf {
        self.dir.join(format!("{hash:016x}.{op}{}", suffix_for(op)))
    }

    /// Looks up `(hash, op)`. `Some` is a validated payload
    /// (`serve.cache.disk.hit`); `None` is a miss
    /// (`serve.cache.disk.miss`), which includes stale/corrupt entries
    /// (`serve.cache.disk.corrupt` additionally increments and the file
    /// is deleted so the recompute rewrites it cleanly).
    pub fn load(&self, hash: u64, op: &str) -> Option<Vec<u8>> {
        if self.is_degraded() {
            return None;
        }
        let started = Instant::now();
        let path = self.entry_path(hash, op);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                eel_obs::counter!("serve.cache.disk.miss").add(1);
                return None;
            }
        };
        match decode_entry(&bytes, hash, op) {
            Some(payload) => {
                eel_obs::counter!("serve.cache.disk.hit").add(1);
                eel_obs::histogram("serve.latency.disk.load")
                    .record(started.elapsed().as_micros() as u64);
                Some(payload)
            }
            None => {
                eel_obs::counter!("serve.cache.disk.corrupt").add(1);
                eel_obs::counter!("serve.cache.disk.miss").add(1);
                let _ = fs::remove_file(&path);
                self.publish_bytes();
                None
            }
        }
    }

    /// Spills `(hash, op) → payload`, then prunes the directory to the
    /// byte budget. A no-op if the entry already exists (entries are
    /// content-addressed, so same key means same payload) or the tier is
    /// degraded. A write failure degrades the tier instead of erroring:
    /// the result is already in memory and the response must not fail on
    /// a full disk.
    pub fn store(&self, hash: u64, op: &str, payload: &[u8]) {
        if self.is_degraded() {
            return;
        }
        let path = self.entry_path(hash, op);
        if path.exists() {
            return;
        }
        let started = Instant::now();
        if let Err(e) = self.write_entry(&path, hash, op, payload) {
            self.degrade(&format!("cannot write {}: {e}", path.display()));
            return;
        }
        eel_obs::counter!("serve.cache.disk.write").add(1);
        eel_obs::histogram("serve.latency.disk.spill").record(started.elapsed().as_micros() as u64);
        self.prune(&path);
    }

    /// Temp-file + fsync + rename, so a crash leaves either the old
    /// state or the new entry — never a torn file under the final name.
    fn write_entry(&self, path: &Path, hash: u64, op: &str, payload: &[u8]) -> io::Result<()> {
        let tmp = self
            .dir
            .join(format!("{hash:016x}.{op}.tmp{}", std::process::id()));
        let mut file = fs::File::create(&tmp)?;
        let result = file
            .write_all(&encode_entry(hash, op, payload))
            .and_then(|()| file.sync_all())
            .and_then(|()| {
                drop(file);
                fs::rename(&tmp, path)
            });
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Oldest-first janitor: deletes committed entries (never `keep`, the
    /// entry just written) until the directory is within budget, and
    /// refreshes the `serve.cache.disk.bytes` gauge.
    fn prune(&self, keep: &Path) {
        let mut entries = match self.scan() {
            Ok(e) => e,
            Err(_) => return,
        };
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total > self.budget {
            entries.sort_by_key(|e| e.mtime);
            for e in &entries {
                if total <= self.budget {
                    break;
                }
                if e.path == keep {
                    continue;
                }
                if fs::remove_file(&e.path).is_ok() {
                    eel_obs::counter!("serve.cache.disk.evict").add(1);
                    total -= e.len;
                }
            }
        }
        eel_obs::gauge("serve.cache.disk.bytes").set(total as i64);
    }

    /// Re-publishes the retained-size gauge from a directory scan.
    fn publish_bytes(&self) {
        if let Ok(entries) = self.scan() {
            let total: u64 = entries.iter().map(|e| e.len).sum();
            eel_obs::gauge("serve.cache.disk.bytes").set(total as i64);
        }
    }

    /// Bytes currently retained on disk (a fresh scan, for tests and the
    /// janitor — the gauge is the cheap read path).
    pub fn bytes(&self) -> u64 {
        self.scan()
            .map(|e| e.iter().map(|e| e.len).sum())
            .unwrap_or(0)
    }

    /// Number of committed entries on disk.
    pub fn len(&self) -> usize {
        self.scan().map(|e| e.len()).unwrap_or(0)
    }

    /// Is the directory empty of committed entries?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn scan(&self) -> io::Result<Vec<ScannedEntry>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !is_entry_name(&entry.file_name().to_string_lossy()) {
                continue;
            }
            let meta = entry.metadata()?;
            out.push(ScannedEntry {
                path: entry.path(),
                len: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }
}

struct ScannedEntry {
    path: PathBuf,
    len: u64,
    mtime: SystemTime,
}

/// Serializes one cache entry (header + op + payload).
fn encode_entry(hash: u64, op: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + op.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&DISK_FORMAT_VERSION.to_be_bytes());
    out.extend_from_slice(&(op.len() as u16).to_be_bytes());
    out.extend_from_slice(&hash.to_be_bytes());
    out.extend_from_slice(&content_hash(payload).to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(op.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an entry file against the `(hash, op)` its name promised
/// and returns the payload, or `None` for anything stale, torn, or
/// corrupt: wrong magic, other format version, mismatched op/hash,
/// truncated or over-long body, or a payload failing its checksum.
fn decode_entry(bytes: &[u8], hash: u64, op: &str) -> Option<Vec<u8>> {
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
        return None;
    }
    let version = u16::from_be_bytes([bytes[4], bytes[5]]);
    if version != DISK_FORMAT_VERSION {
        return None;
    }
    let op_len = u16::from_be_bytes([bytes[6], bytes[7]]) as usize;
    let file_hash = u64::from_be_bytes(bytes[8..16].try_into().ok()?);
    let checksum = u64::from_be_bytes(bytes[16..24].try_into().ok()?);
    let payload_len = u32::from_be_bytes(bytes[24..28].try_into().ok()?) as usize;
    if bytes.len() != HEADER_LEN + op_len + payload_len
        || file_hash != hash
        || &bytes[HEADER_LEN..HEADER_LEN + op_len] != op.as_bytes()
    {
        return None;
    }
    let payload = &bytes[HEADER_LEN + op_len..];
    if content_hash(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eel-disk-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_round_trip() {
        let payload = b"routines: 5";
        let enc = encode_entry(0xdead_beef, "stat", payload);
        assert_eq!(
            decode_entry(&enc, 0xdead_beef, "stat").as_deref(),
            Some(&payload[..])
        );
        // Every possible truncation is rejected, never a panic.
        for cut in 0..enc.len() {
            assert_eq!(
                decode_entry(&enc[..cut], 0xdead_beef, "stat"),
                None,
                "cut {cut}"
            );
        }
        // Wrong key coordinates are stale, not served.
        assert_eq!(decode_entry(&enc, 0xdead_beef, "disasm"), None);
        assert_eq!(decode_entry(&enc, 0xdead_beee, "stat"), None);
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut enc = encode_entry(7, "stat", b"some rendered result");
        let last = enc.len() - 1;
        enc[last] ^= 0xff;
        assert_eq!(decode_entry(&enc, 7, "stat"), None);
    }

    #[test]
    fn future_format_version_is_stale() {
        let mut enc = encode_entry(7, "stat", b"body");
        enc[4..6].copy_from_slice(&(DISK_FORMAT_VERSION + 1).to_be_bytes());
        assert_eq!(decode_entry(&enc, 7, "stat"), None);
    }

    #[test]
    fn store_load_and_corruption_on_disk() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::open(&dir, 1 << 20);
        assert!(!cache.is_degraded());
        assert_eq!(cache.load(1, "stat"), None, "empty dir misses");
        cache.store(1, "stat", b"alpha");
        assert_eq!(cache.load(1, "stat").as_deref(), Some(&b"alpha"[..]));
        assert_eq!(cache.len(), 1);

        // Corrupt the payload in place: the next load rejects, deletes,
        // and a re-store rewrites cleanly.
        let path = cache.entry_path(1, "stat");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load(1, "stat"), None);
        assert!(!path.exists(), "corrupt entry deleted");
        cache.store(1, "stat", b"alpha");
        assert_eq!(cache.load(1, "stat").as_deref(), Some(&b"alpha"[..]));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn janitor_prunes_oldest_first_keeping_newest() {
        let dir = tmp_dir("janitor");
        let payload = vec![7u8; 64];
        // Budget fits two 64-byte payloads (plus headers) but not three.
        let entry_len = encode_entry(0, "stat", &payload).len() as u64;
        let cache = DiskCache::open(&dir, 2 * entry_len);
        cache.store(1, "stat", &payload);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(2, "stat", &payload);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(3, "stat", &payload);
        assert!(cache.bytes() <= 2 * entry_len);
        assert_eq!(cache.load(1, "stat"), None, "oldest pruned");
        assert!(cache.load(2, "stat").is_some());
        assert!(cache.load(3, "stat").is_some(), "newest always survives");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fragment_ops_commit_under_the_eelf_suffix() {
        let dir = tmp_dir("fragments");
        let cache = DiskCache::open(&dir, 1 << 20);
        cache.store(0x42, "frag.disasm", b"  0x00010000:  nop\n");
        cache.store(0x42, "disasm", b"whole image body");
        let frag = cache.entry_path(0x42, "frag.disasm");
        assert!(
            frag.to_string_lossy().ends_with(".eelf"),
            "fragment sidecars are .eelf files"
        );
        assert!(cache
            .entry_path(0x42, "disasm")
            .to_string_lossy()
            .ends_with(".eelc"));
        // Both populations round-trip and count toward the budget scan.
        assert_eq!(
            cache.load(0x42, "frag.disasm").as_deref(),
            Some(&b"  0x00010000:  nop\n"[..])
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unusable_directory_degrades_quietly() {
        let dir = tmp_dir("degraded");
        fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        fs::write(&blocker, b"not a directory").unwrap();
        let cache = DiskCache::open(blocker.join("sub"), 1 << 20);
        assert!(cache.is_degraded());
        cache.store(1, "stat", b"dropped");
        assert_eq!(cache.load(1, "stat"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_files_swept_on_open() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stray = dir.join("0000000000000001.stat.tmp999");
        fs::write(&stray, b"torn write").unwrap();
        let cache = DiskCache::open(&dir, 1 << 20);
        assert!(!stray.exists(), "crash leftovers removed");
        assert!(cache.is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
