//! Client-side consistent-hash routing across a fleet of eel-serve
//! shards.
//!
//! A cluster is just N independent daemons; nothing changes on the wire
//! or between servers. The client hashes each request's *image* (the
//! same content hash the server caches under) onto a ring of virtual
//! nodes — [`VNODES_PER_SHARD`] points per shard, placed by hashing
//! `"addr|vnode"` — and sends the request to the shard owning the first
//! point at or clockwise of the key. The placement is therefore:
//!
//! * **deterministic** — every client with the same shard list routes
//!   the same image to the same shard, independent of list order,
//!   process, or time;
//! * **cache-local** — one image's whole op family (`disasm`, `stat`,
//!   `instrument`, edits, …) lands on one shard, whose memory/disk/
//!   fragment caches stay hot for its slice of the keyspace;
//! * **stable under resizing** — vnodes move only the keys adjacent to
//!   the points a joining/leaving shard owns, ~1/N of the space.
//!
//! Failover is the ring's natural successor order: a shard that cannot
//! be reached is skipped and the request goes to the next *distinct*
//! shard clockwise, logged and counted under `serve.cluster.failover`.
//! Results stay byte-identical wherever they land — every shard runs the
//! same deterministic analyses, a mis-placed request only costs a cache
//! miss. Routing is entirely client-side (`docs/PROTOCOL.md`): a v1 or
//! session peer cannot tell a cluster client from a direct one.

use crate::cache::content_hash;
use crate::client::{Backoff, Client};
use crate::proto::{Payload, Request, Response};
use std::io;
use std::time::Duration;

/// Virtual nodes per shard on the hash ring. 64 keeps the largest /
/// smallest arc ratio low (typically <1.5× at 3 shards) while the ring
/// stays a few hundred entries — binary-searchable in nanoseconds.
pub const VNODES_PER_SHARD: usize = 64;

/// How many times a BUSY one-shot is resubmitted (with jittered backoff)
/// before the BUSY is handed to the caller.
const BUSY_RETRIES: u32 = 5;

/// Finalizer (splitmix64) applied to every hash before it goes on the
/// ring. FNV-1a diffuses *low* bits well but short inputs (paths, tiny
/// images, vnode labels) leave the high bits — which dominate ring
/// ordering — in a narrow band; without this mix a ring's arcs and the
/// keys routed at it can all cluster on one shard.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash routing client over N eel-serve shards.
///
/// Cheap to clone; holds no connections between one-shot requests (like
/// [`Client`]); [`ClusterClient::batch`] holds one session per shard for
/// the duration of the batch.
#[derive(Debug, Clone)]
pub struct ClusterClient {
    shards: Vec<Client>,
    addrs: Vec<String>,
    /// `(point, shard)` sorted by point — the ring.
    ring: Vec<(u64, usize)>,
}

impl ClusterClient {
    /// A cluster client for a list of shard addresses. Ring placement
    /// depends only on the *set* of addresses (the list is sorted
    /// first), so differently ordered configs route identically.
    ///
    /// # Panics
    ///
    /// With an empty address list — a cluster of zero shards routes
    /// nothing.
    pub fn connect(addrs: impl IntoIterator<Item = impl Into<String>>) -> ClusterClient {
        let mut addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        assert!(!addrs.is_empty(), "cluster needs at least one shard");
        addrs.sort();
        addrs.dedup();
        let mut ring = Vec::with_capacity(addrs.len() * VNODES_PER_SHARD);
        for (shard, addr) in addrs.iter().enumerate() {
            for v in 0..VNODES_PER_SHARD {
                ring.push((mix(content_hash(format!("{addr}|{v}").as_bytes())), shard));
            }
        }
        ring.sort_unstable();
        let shards = addrs.iter().map(Client::connect).collect();
        ClusterClient {
            shards,
            addrs,
            ring,
        }
    }

    /// Replaces the per-request socket timeout on every shard client.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> ClusterClient {
        self.shards = self
            .shards
            .into_iter()
            .map(|c| c.with_timeout(timeout))
            .collect();
        self
    }

    /// The shard addresses, in ring-construction (sorted) order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The routing key of a request: the content hash of the image it
    /// operates on — [`Payload::Inline`] hashes the WEF bytes (the
    /// server's cache key for it), [`Payload::Edit`] hashes the WEF
    /// being edited, [`Payload::Path`] hashes the path string (the
    /// client never reads the file; a path names one image, so one
    /// shard's ops cache stays hot for it). Payload-less control ops
    /// hash the op name, pinning them arbitrarily-but-deterministically.
    pub fn routing_key(req: &Request) -> u64 {
        match &req.payload {
            Payload::Inline(b) if b.is_empty() => content_hash(req.op.as_bytes()),
            Payload::Inline(b) => content_hash(b),
            Payload::Path(p) => content_hash(p.as_bytes()),
            Payload::Edit { wef, .. } => content_hash(wef),
        }
    }

    /// The shard a request routes to: the owner of the first ring point
    /// at or clockwise of the routing key.
    pub fn shard_for(&self, req: &Request) -> usize {
        self.shard_at(Self::routing_key(req))
    }

    fn shard_at(&self, key: u64) -> usize {
        let point = mix(key);
        let at = self.ring.partition_point(|&(p, _)| p < point);
        self.ring[at % self.ring.len()].1
    }

    /// Every distinct shard in ring order starting at the key's owner —
    /// element 0 is the primary, the rest is the failover chain.
    fn successors(&self, key: u64) -> Vec<usize> {
        let point = mix(key);
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let mut order = Vec::with_capacity(self.shards.len());
        for i in 0..self.ring.len() {
            let shard = self.ring[(start + i) % self.ring.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// Sends one request to its shard, failing over clockwise around
    /// the ring when a shard is unreachable; BUSY is resubmitted with
    /// jittered backoff before failing over. Deterministic: a healthy
    /// primary always serves its own keys.
    ///
    /// # Errors
    ///
    /// The last shard's error once every shard in the chain has failed.
    pub fn request(&self, req: &Request) -> io::Result<Response> {
        let chain = self.successors(Self::routing_key(req));
        let mut last_err: Option<io::Error> = None;
        for (hop, shard) in chain.into_iter().enumerate() {
            match self.shards[shard].request_with_retry(req, BUSY_RETRIES) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if hop + 1 < self.shards.len() {
                        eel_obs::counter!("serve.cluster.failover").add(1);
                        eprintln!(
                            "eel-cluster: shard {} unreachable ({e}), failing over",
                            self.addrs[shard]
                        );
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one shard attempted"))
    }

    /// Convenience: routes `op` on `payload`.
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::request`].
    pub fn op(&self, op: &str, payload: Payload) -> io::Result<Response> {
        self.request(&Request {
            op: op.into(),
            payload,
        })
    }

    /// Runs a payload-less control op (`ping`, `metrics`, `shutdown`)
    /// on **every** shard — control is fleet-wide, not routable — and
    /// returns `(addr, result)` per shard in address order. Unreachable
    /// shards report their error; the healthy rest still answer.
    pub fn control_each(&self, op: &str) -> Vec<(String, io::Result<Response>)> {
        self.addrs
            .iter()
            .zip(&self.shards)
            .map(|(addr, client)| (addr.clone(), client.control(op)))
            .collect()
    }

    /// Runs `requests` through per-shard pipelined sessions — one
    /// session per involved shard, executed concurrently — and returns
    /// the responses **in request order**, exactly like
    /// [`Client::batch`]. A shard that cannot be reached fails its
    /// group over to the ring successors (re-opening the session
    /// there); responses stay byte-identical because every shard
    /// computes the same results.
    ///
    /// # Errors
    ///
    /// The first group whose entire failover chain failed.
    pub fn batch(&self, requests: &[Request], window: u32) -> io::Result<Vec<Response>> {
        // Group request indices by primary shard, preserving order
        // within each group.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut keys = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let key = Self::routing_key(req);
            keys.push(key);
            groups[self.shard_at(key)].push(i);
        }
        let mut responses: Vec<Option<Response>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        let slots = Mutexed::new(&mut responses);
        std::thread::scope(|scope| -> io::Result<()> {
            let mut handles = Vec::new();
            for (shard, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let slots = &slots;
                let keys = &keys;
                handles.push(scope.spawn(move || -> io::Result<()> {
                    let reqs: Vec<Request> = group.iter().map(|&i| requests[i].clone()).collect();
                    let answers = self.batch_group(shard, keys[group[0]], &reqs, window)?;
                    let mut slots = slots.lock();
                    for (&i, resp) in group.iter().zip(answers) {
                        slots[i] = Some(resp);
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("cluster batch thread panicked")?;
            }
            Ok(())
        })?;
        Ok(responses
            .into_iter()
            .map(|r| r.expect("all responses filled"))
            .collect())
    }

    /// One shard group's batch, with ring-successor failover and a
    /// paced retry against a shard that is merely saturated.
    fn batch_group(
        &self,
        primary: usize,
        key: u64,
        reqs: &[Request],
        window: u32,
    ) -> io::Result<Vec<Response>> {
        let mut backoff = Backoff::new(Duration::from_millis(5), Duration::from_millis(250));
        let chain = {
            let mut c = self.successors(key);
            // The group was keyed by the primary; make sure it leads
            // even if key sat exactly on a boundary.
            c.retain(|&s| s != primary);
            c.insert(0, primary);
            c
        };
        let mut last_err: Option<io::Error> = None;
        for (hop, shard) in chain.into_iter().enumerate() {
            match self.shards[shard].batch(reqs, window) {
                Ok(r) => return Ok(r),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && hop == 0 => {
                    // The primary answered BUSY at the accept edge: it
                    // is alive but saturated. One paced retry before
                    // abandoning its warm caches.
                    backoff.sleep();
                    match self.shards[shard].batch(reqs, window) {
                        Ok(r) => return Ok(r),
                        Err(e2) => {
                            eel_obs::counter!("serve.cluster.failover").add(1);
                            eprintln!(
                                "eel-cluster: shard {} unavailable ({e2}), failing over",
                                self.addrs[shard]
                            );
                            last_err = Some(e2);
                        }
                    }
                    let _ = e;
                }
                Err(e) => {
                    if hop + 1 < self.shards.len() {
                        eel_obs::counter!("serve.cluster.failover").add(1);
                        eprintln!(
                            "eel-cluster: shard {} unreachable ({e}), failing over",
                            self.addrs[shard]
                        );
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one shard attempted"))
    }
}

/// A minimal named wrapper so the scoped batch threads share the
/// response slots without exposing `Mutex` plumbing in the signatures.
struct Mutexed<T>(std::sync::Mutex<T>);

impl<T> Mutexed<T> {
    fn new(v: T) -> Mutexed<T> {
        Mutexed(std::sync::Mutex::new(v))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("cluster batch slots poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: &[u8]) -> Request {
        Request {
            op: "stat".into(),
            payload: Payload::Inline(bytes.to_vec()),
        }
    }

    #[test]
    fn routing_is_deterministic_and_order_independent() {
        let a = ClusterClient::connect(["h1:1", "h2:2", "h3:3"]);
        let b = ClusterClient::connect(["h3:3", "h1:1", "h2:2"]);
        for n in 0u32..200 {
            let r = req(&n.to_be_bytes());
            assert_eq!(
                a.addrs()[a.shard_for(&r)],
                b.addrs()[b.shard_for(&r)],
                "image {n} routes to the same shard regardless of config order"
            );
        }
    }

    #[test]
    fn every_op_on_one_image_shares_a_shard() {
        let c = ClusterClient::connect(["h1:1", "h2:2", "h3:3"]);
        let wef = b"pretend-wef-image".to_vec();
        let stat = req(&wef);
        let disasm = Request {
            op: "disasm".into(),
            payload: Payload::Inline(wef.clone()),
        };
        let edit = Request {
            op: "edit".into(),
            payload: Payload::Edit {
                wef,
                script: "count edges".into(),
            },
        };
        let home = c.shard_for(&stat);
        assert_eq!(home, c.shard_for(&disasm));
        assert_eq!(home, c.shard_for(&edit), "edit routes by the wef it edits");
    }

    #[test]
    fn ring_spreads_keys_over_all_shards() {
        let c = ClusterClient::connect(["h1:1", "h2:2", "h3:3"]);
        let mut counts = [0usize; 3];
        for n in 0u32..3000 {
            counts[c.shard_at(content_hash(&n.to_be_bytes()))] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                n > 3000 / 3 / 3,
                "shard {shard} owns a degenerate slice: {counts:?}"
            );
        }
    }

    #[test]
    fn successors_visit_every_shard_once() {
        let c = ClusterClient::connect(["h1:1", "h2:2", "h3:3", "h4:4"]);
        for n in 0u32..50 {
            let mut chain = c.successors(content_hash(&n.to_be_bytes()));
            assert_eq!(chain.len(), 4);
            chain.sort_unstable();
            assert_eq!(chain, vec![0, 1, 2, 3]);
        }
    }
}
