//! A blocking client for the eel-serve protocol.
//!
//! Two modes:
//!
//! * **One-shot** ([`Client::request`]): one connection per request,
//!   which keeps the server's bounded queue an honest measure of
//!   outstanding work.
//! * **Session** ([`Client::open_session`]): one connection carries many
//!   tagged requests, answered out of order as the server's workers
//!   finish; [`Client::batch`] wraps a whole request list in a
//!   sliding-window pipeline.
//!
//! A successful [`Response::Ok`] carries the [`crate::CacheTier`] that
//! served it (`Computed`, `Memory`, or `Disk`), so batch drivers and
//! scripts can tell a warm restart (disk hits) from a cold one
//! (recomputation) without scraping server metrics. The wire format is
//! documented in `docs/PROTOCOL.md`.

use crate::proto::{
    read_frame, write_frame, Payload, Request, Response, SessionFrame, SessionReply,
};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Capped exponential backoff with full jitter over the upper half of
/// each step — the shared retry pacing for every BUSY path (one-shot
/// resubmits, [`Client::batch`] window races, cluster failover).
///
/// Attempt `n` draws a delay uniformly from `[step/2, step]` where
/// `step = min(base << n, cap)`, so concurrent clients that got BUSY
/// together don't resubmit together, and no delay ever exceeds `cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base` and never exceeding `cap`, seeded
    /// from the clock and pid so independent processes jitter apart.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e37_79b9);
        Backoff::with_seed(base, cap, clock ^ (u64::from(std::process::id()) << 32))
    }

    /// A deterministically seeded backoff (tests).
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base).max(Duration::from_micros(1)),
            attempt: 0,
            rng: seed | 1, // xorshift must not start at 0
        }
    }

    fn rng_next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The next delay: attempt `n` is jittered over
    /// `[min(base·2ⁿ, cap)/2, min(base·2ⁿ, cap)]`.
    pub fn next_delay(&mut self) -> Duration {
        let step = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let span = (step / 2).as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            self.rng_next() % (span + 1)
        };
        step / 2 + Duration::from_nanos(jitter)
    }

    /// Sleeps for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Rewinds to the first step, for reuse after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// A client handle — just an address plus an I/O timeout; each request
/// opens its own connection, so one handle is freely shared across
/// threads.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Option<Duration>,
}

impl Client {
    /// A client for a server address (e.g. `127.0.0.1:7099`), with a
    /// 30-second I/O timeout.
    pub fn connect(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Replaces the per-request socket timeout (`None` blocks forever).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Connection, I/O, timeout, or protocol-decoding failures. A
    /// [`Response::Busy`] or [`Response::Err`] is a *successful* exchange
    /// and comes back as `Ok`.
    pub fn request(&self, req: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        write_frame(&mut stream, &req.encode())?;
        let body = read_frame(&mut stream)?;
        Response::decode(&body)
    }

    /// Sends one request, transparently resubmitting on
    /// [`Response::Busy`] with jittered exponential backoff, up to
    /// `max_retries` resubmits. The final BUSY (budget exhausted) is
    /// returned as a normal response, like [`Client::request`] would.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn request_with_retry(&self, req: &Request, max_retries: u32) -> io::Result<Response> {
        let mut backoff = Backoff::new(Duration::from_millis(5), Duration::from_millis(500));
        let mut attempts = 0;
        loop {
            let resp = self.request(req)?;
            if !matches!(resp, Response::Busy) || attempts >= max_retries {
                return Ok(resp);
            }
            attempts += 1;
            backoff.sleep();
        }
    }

    /// Convenience: sends `op` with `payload`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn op(&self, op: &str, payload: Payload) -> io::Result<Response> {
        self.request(&Request {
            op: op.into(),
            payload,
        })
    }

    /// Convenience: a payload-less control request (`ping`, `metrics`,
    /// `shutdown`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn control(&self, op: &str) -> io::Result<Response> {
        self.op(op, Payload::none())
    }

    /// Convenience: the write path. Ships `wef` plus an edit `script`
    /// and returns the server's response, whose `Ok` body is the edited
    /// WEF image.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn edit(&self, wef: Vec<u8>, script: impl Into<String>) -> io::Result<Response> {
        self.op(
            "edit",
            Payload::Edit {
                wef,
                script: script.into(),
            },
        )
    }

    /// Opens a pipelined session: connects, sends `Hello` (a `window`
    /// of 0 requests the server's default), and waits for the
    /// `HelloAck`.
    ///
    /// # Errors
    ///
    /// Connection/I-O failures; `ConnectionRefused` when the server's
    /// accept queue answered with a v1 BUSY instead of admitting the
    /// session (back off and retry, as for a one-shot BUSY); or
    /// `InvalidData` when the peer does not speak the session protocol
    /// (a pre-session server rejects the version byte).
    pub fn open_session(&self, window: u32) -> io::Result<Session> {
        let mut stream = TcpStream::connect(&self.addr)?;
        // Pipelined small frames + Nagle + delayed ACK = 40ms stalls;
        // sessions are latency-bound, so flush segments eagerly.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        write_frame(&mut stream, &SessionFrame::Hello { window }.encode())?;
        let body = read_frame(&mut stream)?;
        match SessionReply::decode(&body) {
            Ok(SessionReply::HelloAck { window }) => Ok(Session {
                stream,
                window,
                next_id: 0,
            }),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            )),
            // Not a session reply: a full accept queue answers with a
            // plain v1 BUSY before the handshake is even read.
            Err(e) => match Response::decode(&body) {
                Ok(Response::Busy) => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "server busy: accept queue full",
                )),
                _ => Err(e),
            },
        }
    }

    /// Runs `requests` through one session with a sliding in-flight
    /// window, returning the responses **in request order**. A tagged
    /// BUSY (in-flight window overflow — only possible when the client
    /// races the window) is retried transparently under the shared
    /// jittered [`Backoff`].
    ///
    /// # Errors
    ///
    /// As [`Client::open_session`], plus any mid-session I/O failure.
    pub fn batch(&self, requests: &[Request], window: u32) -> io::Result<Vec<Response>> {
        let mut session = self.open_session(window)?;
        let window = session.window() as usize;
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut id_to_index = std::collections::HashMap::new();
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(50));
        let mut next = 0usize;
        let mut done = 0usize;
        while done < requests.len() {
            while next < requests.len() && id_to_index.len() < window {
                let id = session.submit(&requests[next])?;
                id_to_index.insert(id, next);
                next += 1;
            }
            let (id, response) = session.recv()?;
            let Some(index) = id_to_index.remove(&id) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown request id {id}"),
                ));
            };
            if matches!(response, Response::Busy) {
                // Window overflow: pace the resubmit so a racing window
                // doesn't become a BUSY livelock.
                backoff.sleep();
                let id = session.submit(&requests[index])?;
                id_to_index.insert(id, index);
                continue;
            }
            backoff.reset();
            responses[index] = Some(response);
            done += 1;
        }
        session.goodbye()?;
        Ok(responses
            .into_iter()
            .map(|r| r.expect("all responses filled"))
            .collect())
    }
}

/// One pipelined session connection (protocol version 2): submit many
/// tagged requests, receive tagged responses in **completion** order.
///
/// The session itself is deliberately low-level — [`Session::submit`]
/// and [`Session::recv`] map one-to-one onto wire frames, and keeping
/// more than [`Session::window`] requests in flight earns per-request
/// BUSY replies. [`Client::batch`] layers the bookkeeping (window
/// tracking, reordering, BUSY retry) on top.
#[derive(Debug)]
pub struct Session {
    stream: TcpStream,
    window: u32,
    next_id: u64,
}

impl Session {
    /// The in-flight window the server granted at the handshake.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Sends one tagged request without waiting for its response;
    /// returns the id that the matching [`Session::recv`] will carry.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn submit(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &SessionFrame::Request {
                id,
                request: request.clone(),
            }
            .encode(),
        )?;
        Ok(id)
    }

    /// Receives the next tagged response, whichever request it answers.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed reply frame.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        let body = read_frame(&mut self.stream)?;
        match SessionReply::decode(&body)? {
            SessionReply::Tagged { id, response } => Ok((id, response)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected tagged response, got {other:?}"),
            )),
        }
    }

    /// Ends the session politely. The server finishes anything still in
    /// flight before closing; call after the last [`Session::recv`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn goodbye(&mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &SessionFrame::Goodbye.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_stay_inside_jitter_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut backoff = Backoff::with_seed(base, cap, 0xfeed_beef);
        for attempt in 0u32..20 {
            let step = base
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(cap);
            let d = backoff.next_delay();
            assert!(
                d >= step / 2 && d <= step,
                "attempt {attempt}: {d:?} outside [{:?}, {step:?}]",
                step / 2
            );
        }
    }

    #[test]
    fn backoff_never_exceeds_cap() {
        let cap = Duration::from_millis(80);
        let mut backoff = Backoff::with_seed(Duration::from_millis(1), cap, 42);
        for _ in 0..64 {
            assert!(backoff.next_delay() <= cap);
        }
        // Deep in the schedule every delay sits in the cap's upper half.
        assert!(backoff.next_delay() >= cap / 2);
    }

    #[test]
    fn backoff_jitters_and_resets() {
        let base = Duration::from_millis(16);
        let cap = Duration::from_secs(1);
        let mut a = Backoff::with_seed(base, cap, 1);
        let mut b = Backoff::with_seed(base, cap, 2);
        let seq_a: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let seq_b: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(seq_a, seq_b, "different seeds draw different jitter");

        a.reset();
        let first_again = a.next_delay();
        assert!(
            first_again <= base,
            "reset rewinds to the first step, got {first_again:?}"
        );
    }
}
