//! A blocking client for the eel-serve protocol: one connection per
//! request, which keeps the server's bounded queue an honest measure of
//! outstanding work.
//!
//! A successful [`Response::Ok`] carries the [`crate::CacheTier`] that
//! served it (`Computed`, `Memory`, or `Disk`), so batch drivers and
//! scripts can tell a warm restart (disk hits) from a cold one
//! (recomputation) without scraping server metrics. The wire format is
//! documented in `docs/PROTOCOL.md`.

use crate::proto::{read_frame, write_frame, Payload, Request, Response};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// A client handle — just an address plus an I/O timeout; each request
/// opens its own connection, so one handle is freely shared across
/// threads.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Option<Duration>,
}

impl Client {
    /// A client for a server address (e.g. `127.0.0.1:7099`), with a
    /// 30-second I/O timeout.
    pub fn connect(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Replaces the per-request socket timeout (`None` blocks forever).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Connection, I/O, timeout, or protocol-decoding failures. A
    /// [`Response::Busy`] or [`Response::Err`] is a *successful* exchange
    /// and comes back as `Ok`.
    pub fn request(&self, req: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        write_frame(&mut stream, &req.encode())?;
        let body = read_frame(&mut stream)?;
        Response::decode(&body)
    }

    /// Convenience: sends `op` with `payload`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn op(&self, op: &str, payload: Payload) -> io::Result<Response> {
        self.request(&Request {
            op: op.into(),
            payload,
        })
    }

    /// Convenience: a payload-less control request (`ping`, `metrics`,
    /// `shutdown`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn control(&self, op: &str) -> io::Result<Response> {
        self.op(op, Payload::none())
    }
}
