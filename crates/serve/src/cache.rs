//! A content-addressed, single-flight LRU cache.
//!
//! The server's artifacts (parsed [`eel_core::Analysis`] objects, rendered
//! operation results) are deterministic functions of the input bytes, so
//! they are keyed by content hash and shared freely. Two properties
//! matter under concurrency:
//!
//! * **Single-flight**: when an identical request arrives while the first
//!   one is still computing, the newcomer blocks on the in-flight slot and
//!   receives the shared result instead of starting a duplicate
//!   computation.
//! * **Byte budget**: entries carry a cost; when the total exceeds the
//!   budget the least-recently-used entries are evicted (the most recent
//!   insertion always survives, even if it alone exceeds the budget, so
//!   a hot oversized artifact still dedupes).
//! * **Cost-weighted eviction**: entries also carry a [`CostClass`].
//!   Recomputing a `stat` or `cfg-summary` costs about as much as
//!   reloading it from disk, while `disasm`/`instrument` redo the whole
//!   per-routine CFG pipeline — so when the budget forces a choice, the
//!   [`CostClass::Cheap`] entries go first (in LRU order among
//!   themselves) and [`CostClass::Expensive`] ones only after every
//!   cheap entry is gone.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Condvar, Mutex};

/// 64-bit FNV-1a over a byte slice: the cache's content address. Not
/// cryptographic — this dedupes cooperative clients, it does not defend
/// against adversarial collisions.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How expensive an entry is to recompute, relative to reloading it
/// from the disk tier. Decides eviction order under budget pressure:
/// cheap entries are sacrificed before expensive ones regardless of
/// recency (the newest insertion is always spared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Recompute ≈ disk reload (`stat`, `cfg-summary`, `liveness`):
    /// caching saves little, so these yield budget first.
    Cheap,
    /// Recompute ≫ disk reload (`disasm`, `instrument`, parsed
    /// analyses): the entries the budget exists to protect.
    Expensive,
}

enum Slot<V> {
    /// Someone is computing this entry; waiters sleep on the condvar.
    InFlight,
    /// Computed, resident, costing `cost` bytes of the budget.
    Ready {
        value: V,
        cost: usize,
        class: CostClass,
    },
}

struct Inner<K, V> {
    slots: HashMap<K, Slot<V>>,
    /// Ready keys, least recently used at the front.
    order: VecDeque<K>,
    bytes: usize,
}

/// The cache. `V` is cloned out on every hit, so in practice it is an
/// `Arc` (or a small `Result` wrapping one).
pub struct SingleFlightLru<K: Eq + Hash + Clone, V: Clone> {
    budget: usize,
    inner: Mutex<Inner<K, V>>,
    ready: Condvar,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlightLru<K, V> {
    /// An empty cache with a byte budget.
    pub fn new(budget: usize) -> SingleFlightLru<K, V> {
        SingleFlightLru {
            budget,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Returns the cached value for `key`, or runs `compute` to fill it.
    /// `compute` returns the value plus its budget cost in bytes. The
    /// boolean is `true` when the value was served without running
    /// `compute` here — an LRU hit or a join onto an in-flight
    /// computation.
    ///
    /// If `compute` panics, the in-flight slot is cleared and waiters
    /// retry, so one poisoned request cannot wedge the cache.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> (V, usize)) -> (V, bool) {
        let (value, hit, _evicted) = self.get_or_compute_with_evicted(key, compute);
        (value, hit)
    }

    /// As [`SingleFlightLru::get_or_compute`], but also hands back the
    /// entries this insertion evicted, so the caller can demote them to a
    /// slower tier (eel-serve spills them to the disk cache) instead of
    /// discarding the work. The evicted list is empty on a hit or an
    /// in-flight join; it is collected under the lock but returned for
    /// processing outside it, so demotion I/O never blocks other
    /// requests.
    ///
    /// New entries default to [`CostClass::Expensive`]; use
    /// [`SingleFlightLru::get_or_compute_classed`] to say otherwise.
    pub fn get_or_compute_with_evicted(
        &self,
        key: K,
        compute: impl FnOnce() -> (V, usize),
    ) -> (V, bool, Vec<(K, V)>) {
        self.get_or_compute_classed(key, || {
            let (value, cost) = compute();
            (value, cost, CostClass::Expensive)
        })
    }

    /// As [`SingleFlightLru::get_or_compute_with_evicted`], with the
    /// compute closure also declaring the entry's recompute
    /// [`CostClass`], which steers eviction order under budget pressure.
    pub fn get_or_compute_classed(
        &self,
        key: K,
        compute: impl FnOnce() -> (V, usize, CostClass),
    ) -> (V, bool, Vec<(K, V)>) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready { value, .. }) => {
                    let value = value.clone();
                    let pos = inner.order.iter().position(|k| *k == key);
                    if let Some(pos) = pos {
                        let k = inner.order.remove(pos).expect("position in range");
                        inner.order.push_back(k);
                    }
                    return (value, true, Vec::new());
                }
                Some(Slot::InFlight) => {
                    inner = self.ready.wait(inner).expect("cache lock poisoned");
                }
                None => break,
            }
        }
        inner.slots.insert(key.clone(), Slot::InFlight);
        drop(inner);

        struct ClearOnPanic<'a, K: Eq + Hash + Clone, V: Clone> {
            cache: &'a SingleFlightLru<K, V>,
            key: K,
            armed: bool,
        }
        impl<K: Eq + Hash + Clone, V: Clone> Drop for ClearOnPanic<'_, K, V> {
            fn drop(&mut self) {
                if self.armed {
                    let mut inner = self.cache.inner.lock().expect("cache lock poisoned");
                    inner.slots.remove(&self.key);
                    self.cache.ready.notify_all();
                }
            }
        }
        let mut guard = ClearOnPanic {
            cache: self,
            key: key.clone(),
            armed: true,
        };
        let (value, cost, class) = compute();
        guard.armed = false;

        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.slots.insert(
            key.clone(),
            Slot::Ready {
                value: value.clone(),
                cost,
                class,
            },
        );
        inner.order.push_back(key);
        inner.bytes += cost;
        let evicted = Self::evict_over_budget(&mut inner, self.budget);
        self.ready.notify_all();
        (value, false, evicted)
    }

    /// Evicts until the budget holds (the newest entry is always
    /// spared): cheap entries first in LRU order among themselves, then
    /// expensive ones oldest-first. Returns the victims for demotion.
    fn evict_over_budget(inner: &mut Inner<K, V>, budget: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        while inner.bytes > budget && inner.order.len() > 1 {
            let candidates = inner.order.len() - 1;
            let victim_pos = inner
                .order
                .iter()
                .take(candidates)
                .position(|k| {
                    matches!(
                        inner.slots.get(k),
                        Some(Slot::Ready {
                            class: CostClass::Cheap,
                            ..
                        })
                    )
                })
                .unwrap_or(0);
            let victim = inner
                .order
                .remove(victim_pos)
                .expect("victim position in range");
            if let Some(Slot::Ready { value, cost, .. }) = inner.slots.remove(&victim) {
                inner.bytes -= cost;
                evicted.push((victim, value));
            }
        }
        evicted
    }

    /// A plain non-blocking lookup: clones the value out and refreshes
    /// the key's LRU position if ready; returns `None` otherwise —
    /// including for a key that is merely in flight (this never waits).
    /// The fragment tier probes with this inside another entry's
    /// single-flight compute, where blocking would risk deadlock.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.slots.get(key) {
            Some(Slot::Ready { value, .. }) => {
                let value = value.clone();
                let pos = inner.order.iter().position(|k| k == key);
                if let Some(pos) = pos {
                    let k = inner.order.remove(pos).expect("position in range");
                    inner.order.push_back(k);
                }
                Some(value)
            }
            _ => None,
        }
    }

    /// A plain insertion (no single-flight protocol): stores the value,
    /// replacing any previous *ready* entry under the key, and returns
    /// what the insertion evicted for demotion. If the key is in flight
    /// the insertion yields — the computing thread publishes its own
    /// result momentarily, the same last-writer-wins outcome. Fragment
    /// writes use this: they happen *inside* a whole-image entry's
    /// compute, where joining the single-flight protocol would
    /// self-deadlock (fragment keys never go through
    /// [`SingleFlightLru::get_or_compute`], so in practice the in-flight
    /// arm never triggers for them).
    pub fn insert(&self, key: K, value: V, cost: usize, class: CostClass) -> Vec<(K, V)> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let old_cost = match inner.slots.get(&key) {
            Some(Slot::InFlight) => return Vec::new(),
            Some(Slot::Ready { cost, .. }) => Some(*cost),
            None => None,
        };
        if let Some(old_cost) = old_cost {
            // Replace in place: budget swaps the old cost for the new;
            // LRU position refreshes.
            inner.bytes -= old_cost;
            let pos = inner.order.iter().position(|k| *k == key);
            if let Some(pos) = pos {
                let k = inner.order.remove(pos).expect("position in range");
                inner.order.push_back(k);
            }
        } else {
            inner.order.push_back(key.clone());
        }
        inner.slots.insert(key, Slot::Ready { value, cost, class });
        inner.bytes += cost;
        Self::evict_over_budget(&mut inner, self.budget)
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").bytes
    }

    /// Number of resident (ready) entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").order.len()
    }

    /// Is the cache empty of resident entries?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn hit_after_miss() {
        let cache: SingleFlightLru<u64, Arc<String>> = SingleFlightLru::new(1 << 20);
        let (v, hit) = cache.get_or_compute(1, || (Arc::new("a".into()), 8));
        assert!(!hit);
        assert_eq!(*v, "a");
        let (v, hit) = cache.get_or_compute(1, || unreachable!("must not recompute"));
        assert!(hit);
        assert_eq!(*v, "a");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 8);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        cache.get_or_compute(1, || (1, 40));
        cache.get_or_compute(2, || (2, 40));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_compute(1, || unreachable!());
        cache.get_or_compute(3, || (3, 40));
        assert!(cache.bytes() <= 100);
        let (_, hit1) = cache.get_or_compute(1, || (1, 40));
        let (_, hit2) = cache.get_or_compute(2, || (2, 40));
        assert!(hit1, "recently touched entry survived");
        assert!(!hit2, "LRU entry was evicted");
    }

    #[test]
    fn oversized_entry_still_resident() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(10);
        cache.get_or_compute(1, || (1, 1000));
        let (_, hit) = cache.get_or_compute(1, || unreachable!());
        assert!(hit, "newest entry survives even over budget");
    }

    #[test]
    fn single_flight_dedupes_concurrent_computes() {
        let cache: Arc<SingleFlightLru<u64, u64>> = Arc::new(SingleFlightLru::new(1 << 20));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut joined = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            joined.push(std::thread::spawn(move || {
                cache.get_or_compute(7, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    (99, 8)
                })
            }));
        }
        let results: Vec<(u64, bool)> = joined.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.iter().all(|(v, _)| *v == 99));
        assert_eq!(
            results.iter().filter(|(_, hit)| !hit).count(),
            1,
            "exactly one miss; the rest joined or hit"
        );
    }

    #[test]
    fn panic_in_compute_releases_waiters() {
        let cache: Arc<SingleFlightLru<u64, u64>> = Arc::new(SingleFlightLru::new(1 << 20));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(5, || panic!("boom"))
            }));
            assert!(result.is_err());
        });
        panicker.join().unwrap();
        // The slot must be clear: a later request computes fresh.
        let (v, hit) = cache.get_or_compute(5, || (42, 8));
        assert!(!hit);
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_hands_back_demotable_entries() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        cache.get_or_compute(1, || (11, 60));
        let (_, hit, evicted) = cache.get_or_compute_with_evicted(1, || unreachable!());
        assert!(hit);
        assert!(evicted.is_empty(), "hits evict nothing");
        let (_, _, evicted) = cache.get_or_compute_with_evicted(2, || (22, 60));
        assert_eq!(evicted, vec![(1, 11)], "victim returned for demotion");
        assert!(cache.bytes() <= 100);
    }

    #[test]
    fn cheap_entries_evicted_before_older_expensive_ones() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        // Oldest entry is expensive; two cheap entries follow.
        cache.get_or_compute_classed(1, || (11, 30, CostClass::Expensive));
        cache.get_or_compute_classed(2, || (22, 30, CostClass::Cheap));
        cache.get_or_compute_classed(3, || (33, 30, CostClass::Cheap));
        // +30 overflows by 20: a strict LRU would evict key 1, but
        // cost-weighting sacrifices the LRU *cheap* entry (key 2).
        let (_, _, evicted) = cache.get_or_compute_classed(4, || (44, 30, CostClass::Expensive));
        assert_eq!(evicted, vec![(2, 22)], "cheapest-class LRU victim first");
        let (_, hit1) = cache.get_or_compute(1, || unreachable!());
        assert!(hit1, "older expensive entry outlived the cheap one");
    }

    #[test]
    fn expensive_entries_evict_in_lru_order_once_cheap_exhausted() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        cache.get_or_compute_classed(1, || (11, 40, CostClass::Expensive));
        cache.get_or_compute_classed(2, || (22, 40, CostClass::Cheap));
        // Overflow by 60: the cheap entry goes first, then the oldest
        // expensive one; the new insertion survives.
        let (_, _, evicted) = cache.get_or_compute_classed(3, || (33, 80, CostClass::Expensive));
        assert_eq!(evicted, vec![(2, 22), (1, 11)]);
        let (_, hit3) = cache.get_or_compute(3, || unreachable!());
        assert!(hit3, "newest entry always spared");
    }

    #[test]
    fn newest_cheap_entry_is_spared_even_over_budget() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(10);
        let (_, _, evicted) = cache.get_or_compute_classed(1, || (11, 1000, CostClass::Cheap));
        assert!(evicted.is_empty());
        let (_, hit) = cache.get_or_compute(1, || unreachable!());
        assert!(hit, "sole entry survives regardless of class");
    }

    #[test]
    fn get_is_nonblocking_and_touches_lru() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        assert_eq!(cache.get(&1), None, "absent key misses");
        cache.insert(1, 11, 40, CostClass::Cheap);
        cache.insert(2, 22, 40, CostClass::Cheap);
        assert_eq!(cache.get(&1), Some(11));
        // The get refreshed 1's recency, so overflowing evicts 2 first.
        let evicted = cache.insert(3, 33, 40, CostClass::Cheap);
        assert_eq!(evicted, vec![(2, 22)]);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), None);
    }

    #[test]
    fn get_misses_on_in_flight_key_instead_of_waiting() {
        let cache: Arc<SingleFlightLru<u64, u64>> = Arc::new(SingleFlightLru::new(100));
        let peer = Arc::clone(&cache);
        let worker = std::thread::spawn(move || {
            peer.get_or_compute(7, || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                (99, 8)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(15));
        // The compute is still running: a plain get must return
        // immediately rather than join the single-flight wait.
        assert_eq!(cache.get(&7), None);
        worker.join().unwrap();
        assert_eq!(cache.get(&7), Some(99));
    }

    #[test]
    fn insert_replaces_in_place_and_swaps_budget() {
        let cache: SingleFlightLru<u64, u64> = SingleFlightLru::new(100);
        cache.insert(1, 11, 60, CostClass::Cheap);
        assert_eq!(cache.bytes(), 60);
        let evicted = cache.insert(1, 12, 90, CostClass::Cheap);
        assert!(evicted.is_empty(), "replacement swaps cost, no eviction");
        assert_eq!(cache.bytes(), 90);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1), Some(12));
    }

    #[test]
    fn insert_yields_to_in_flight_compute() {
        let cache: Arc<SingleFlightLru<u64, u64>> = Arc::new(SingleFlightLru::new(100));
        let peer = Arc::clone(&cache);
        let worker = std::thread::spawn(move || {
            peer.get_or_compute(7, || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                (99, 8)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(15));
        let evicted = cache.insert(7, 1, 8, CostClass::Cheap);
        assert!(evicted.is_empty());
        worker.join().unwrap();
        // The in-flight compute's publication wins.
        assert_eq!(cache.get(&7), Some(99));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn content_hash_distinguishes_and_is_stable() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"a"), content_hash(b"b"));
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
    }
}
