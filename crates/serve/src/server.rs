//! The eel-serve daemon: acceptor, bounded queue, worker pool, caches.
//!
//! One acceptor thread pulls connections off the listener and pushes them
//! onto a bounded queue; when the queue is full it answers [`Response::Busy`]
//! itself and drops the connection — explicit backpressure instead of an
//! unbounded backlog. A pool of worker threads (default: one per core)
//! drains the queue; a request that waited in the queue longer than the
//! configured timeout is answered with a timeout error rather than served
//! stale. Results flow through two content-addressed, single-flight LRU
//! caches: one for [`Analysis`] artifacts keyed by image hash, one for
//! rendered operation results keyed by (image hash, op).
//!
//! With `cache_dir` set the result cache grows a disk tier
//! ([`crate::disk::DiskCache`]): memory misses consult the directory
//! before computing (a hit is promoted back into the LRU), computed
//! results spill through, and LRU evictions demote instead of discard —
//! so a daemon restart serves warm from disk with zero re-analysis.
//!
//! A connection whose first frame carries the session version byte is
//! handed to the session mux instead of the single-shot path: the
//! worker becomes the frame reader, executor threads drain admitted
//! requests, and a dedicated writer thread owns the write half so
//! replies leave in completion order without interleaving. The
//! in-flight window doubles as backpressure against slow consumers —
//! the writer's bounded channel can only ever hold `window` replies.
//!
//! Everything is instrumented through eel-obs: `serve.requests`,
//! `serve.cache.hit` / `serve.cache.miss` (the *memory* tier),
//! `serve.cache.disk.{hit,miss,write,evict,corrupt}` and the
//! `serve.cache.disk.bytes` gauge (the disk tier), `serve.busy`,
//! `serve.errors`, `serve.timeouts`, the `serve.queue.depth` gauge,
//! per-op `serve.latency.<op>` histograms (microseconds) plus
//! `serve.latency.disk.{load,spill}`, per-op
//! `serve.ops.<op>.computed` counters that count *actual* computations —
//! the single-flight and warm-restart evidence — and the session-mode
//! series `serve.session.{opened,closed,requests,busy}` with the
//! `serve.session.inflight` gauge.

use crate::cache::{content_hash, SingleFlightLru};
use crate::disk::DiskCache;
use crate::ops::{recompute_cost, run_edit, run_op_fragments, FragmentTier, CACHED_OPS};
use crate::proto::{
    read_frame, write_frame, CacheTier, Discovery, Payload, Request, Response, SessionFrame,
    SessionReply, MAX_FRAME, SESSION_VERSION,
};
use eel_core::Analysis;
use eel_exe::Image;
use std::collections::VecDeque;
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Bounded queue depth; connections beyond this get [`Response::Busy`].
    pub queue_depth: usize,
    /// LRU byte budget, split evenly between the analysis and result
    /// caches.
    pub cache_bytes: usize,
    /// Per-request budget: both the socket read/write timeout and the
    /// maximum time a request may wait in the queue.
    pub timeout: Duration,
    /// Directory for the on-disk result-cache spill tier; `None` (the
    /// default) keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the disk tier (only meaningful with `cache_dir`);
    /// a janitor prunes the directory oldest-first past this.
    pub disk_bytes: u64,
    /// Maximum in-flight window granted to a session connection; a
    /// client's requested window is clamped to this. Requests beyond
    /// the granted window are answered per-frame with
    /// [`Response::Busy`] (the connection survives).
    pub session_window: u32,
    /// Executor threads per session connection (capped at the granted
    /// window); 0 means one per available core.
    pub session_workers: usize,
    /// Threads for the per-routine parallel CFG fan-out inside one
    /// request. 1 pins analysis sequential; 0 adapts — each request
    /// gets roughly `cores / active requests` threads, so a lone
    /// request uses the whole machine and a full pipeline degrades to
    /// one thread each (inter-request parallelism already saturates the
    /// cores). Any other value is used as-is.
    pub analysis_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            timeout: Duration::from_secs(10),
            cache_dir: None,
            disk_bytes: 256 << 20,
            session_window: 32,
            session_workers: 0,
            analysis_threads: 0,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }
    }
}

type CachedAnalysis = Result<Arc<Analysis>, String>;
type CachedResult = Result<Arc<Vec<u8>>, String>;

struct Shared {
    config: ServerConfig,
    local_addr: SocketAddr,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    stop: AtomicBool,
    /// Requests currently executing (v1 and session alike); the
    /// denominator of the adaptive intra-request thread split.
    active_requests: AtomicUsize,
    analyses: SingleFlightLru<u64, CachedAnalysis>,
    results: SingleFlightLru<(u64, String), CachedResult>,
    /// The optional spill tier under the results cache.
    disk: Option<DiskCache>,
}

/// A running eel-serve daemon. Dropping it shuts it down and joins every
/// thread.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the acceptor and worker threads.
    ///
    /// If eel-obs is off, summary mode is switched on: a service without
    /// its metrics is flying blind, and the `metrics` op must have
    /// something to render.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if !eel_obs::enabled() {
            eel_obs::set_mode(eel_obs::Mode::Summary);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = config.effective_workers();
        let half = (config.cache_bytes / 2).max(1);
        let disk = config
            .cache_dir
            .as_ref()
            .map(|dir| DiskCache::open(dir, config.disk_bytes));
        let shared = Arc::new(Shared {
            local_addr,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            active_requests: AtomicUsize::new(0),
            analyses: SingleFlightLru::new(half),
            results: SingleFlightLru::new(half),
            disk,
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eelserved-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(worker_count);
        for k in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eelserved-worker-{k}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Signals shutdown: stops accepting, lets workers drain the queue,
    /// wakes everything up. Does not block; pair with [`Server::wait`] or
    /// drop.
    pub fn shutdown(&self) {
        self.shared.request_stop();
    }

    /// Blocks until every thread has exited (after [`Server::shutdown`],
    /// a client `shutdown` request, or a fatal accept error).
    ///
    /// # Panics
    ///
    /// Propagates a worker or acceptor panic, so tests fail loudly if a
    /// thread died.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn request_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the acceptor's blocking accept() with a throwaway
            // connection; it re-checks the flag on wake.
            let _ = TcpStream::connect(self.local_addr);
        }
        self.queue_ready.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = listener.accept();
        if shared.stopping() {
            return;
        }
        let Ok((stream, _)) = conn else {
            // Fatal listener error: stop the whole server rather than
            // spinning on a dead socket.
            shared.request_stop();
            return;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.config.timeout));
        let _ = stream.set_write_timeout(Some(shared.config.timeout));
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            eel_obs::counter!("serve.busy").add(1);
            // Backpressure costs no worker time: a throwaway thread
            // writes BUSY, then drains the unread request before closing
            // — closing with bytes still in the receive buffer would RST
            // the connection and race the client out of the BUSY frame.
            std::thread::spawn(move || write_then_drain(stream, &Response::Busy));
            continue;
        }
        queue.push_back((stream, Instant::now()));
        eel_obs::gauge("serve.queue.depth").set(queue.len() as i64);
        drop(queue);
        shared.queue_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        let (stream, enqueued) = loop {
            if let Some(item) = queue.pop_front() {
                eel_obs::gauge("serve.queue.depth").set(queue.len() as i64);
                break item;
            }
            if shared.stopping() {
                return;
            }
            queue = shared.queue_ready.wait(queue).expect("queue lock poisoned");
        };
        drop(queue);
        serve_connection(shared, stream, enqueued);
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, enqueued: Instant) {
    let waited = enqueued.elapsed();
    if waited >= shared.config.timeout {
        eel_obs::counter!("serve.timeouts").add(1);
        let resp = Response::Err(format!(
            "request timed out after {}ms in queue",
            waited.as_millis()
        ));
        // The request was never read; drain it before closing so the
        // reply is not lost to a connection reset.
        write_then_drain(stream, &resp);
        return;
    }
    let first = match read_frame(&mut stream) {
        Ok(b) => b,
        Err(e) => {
            eel_obs::counter!("serve.errors").add(1);
            let _ = write_frame(
                &mut stream,
                &Response::Err(format!("bad request: {e}")).encode(),
            );
            return;
        }
    };
    // The version byte picks the connection's mode: version 2 opens a
    // pipelined session, anything else is a one-shot v1 exchange
    // (including unknown versions, which Request::decode rejects with a
    // clean error a v1 client can render).
    if first.first() == Some(&SESSION_VERSION) {
        serve_session(shared, stream, &first);
        return;
    }
    let resp = match Request::decode(&first) {
        Ok(req) => handle_request(shared, &req),
        Err(e) => Response::Err(format!("bad request: {e}")),
    };
    if matches!(resp, Response::Err(_)) {
        eel_obs::counter!("serve.errors").add(1);
    }
    let _ = write_frame(&mut stream, &resp.encode());
}

/// Runs one pipelined session connection: this worker thread becomes the
/// session's frame reader, a pool of executor threads runs the tagged
/// requests, and a single writer thread serializes the out-of-order
/// replies onto the socket.
///
/// Backpressure is layered: the reader answers frames beyond the granted
/// in-flight window with a per-frame tagged [`Response::Busy`] (the
/// connection survives), and the writer's bounded channel blocks
/// executors when the client reads replies slower than it submits work —
/// a slow consumer stalls its own session, never the server.
///
/// On server shutdown the reader stops consuming frames; every request
/// already admitted is finished and its reply written before the
/// connection closes.
fn serve_session(shared: &Shared, stream: TcpStream, first: &[u8]) {
    let granted = match SessionFrame::decode(first) {
        Ok(SessionFrame::Hello { window }) => {
            let requested = if window == 0 {
                shared.config.session_window
            } else {
                window
            };
            requested.clamp(1, shared.config.session_window.max(1))
        }
        _ => {
            eel_obs::counter!("serve.errors").add(1);
            let mut stream = stream;
            let _ = write_frame(
                &mut stream,
                &SessionReply::Tagged {
                    id: 0,
                    response: Response::Err("session must open with Hello".into()),
                }
                .encode(),
            );
            return;
        }
    };
    eel_obs::counter!("serve.session.opened").add(1);

    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut read_half = stream;
    // Short poll interval so the reader notices server shutdown while
    // parked in read(); the real inactivity budget is enforced per
    // partial frame in read_session_frame.
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(250)));

    // Writer: the single owner of the socket's write half. The bound is
    // the window — once the client lets `granted` finished replies pile
    // up unread, executors block on send() instead of buffering
    // unboundedly.
    let (reply_tx, reply_rx) = mpsc::sync_channel::<SessionReply>(granted as usize);
    let writer = std::thread::Builder::new()
        .name("eelserved-session-writer".into())
        .spawn(move || {
            let mut stream = write_half;
            while let Ok(reply) = reply_rx.recv() {
                if write_frame(&mut stream, &reply.encode()).is_err() {
                    // Client gone: drain remaining replies so executors
                    // never block on a dead socket.
                    while reply_rx.recv().is_ok() {}
                    return;
                }
            }
        });
    let Ok(writer) = writer else { return };
    if reply_tx
        .send(SessionReply::HelloAck { window: granted })
        .is_err()
    {
        let _ = writer.join();
        return;
    }

    let in_flight = Arc::new(AtomicUsize::new(0));
    let (job_tx, job_rx) = mpsc::channel::<(u64, Request)>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let executor_count = (if shared.config.session_workers > 0 {
        shared.config.session_workers
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    })
    .min(granted as usize)
    .max(1);
    std::thread::scope(|scope| {
        for _ in 0..executor_count {
            let job_rx = Arc::clone(&job_rx);
            let reply_tx = reply_tx.clone();
            let in_flight = Arc::clone(&in_flight);
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("job lock poisoned").recv();
                let Ok((id, req)) = job else { return };
                let response = handle_request(shared, &req);
                if matches!(response, Response::Err(_)) {
                    eel_obs::counter!("serve.errors").add(1);
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
                eel_obs::gauge("serve.session.inflight")
                    .set(in_flight.load(Ordering::SeqCst) as i64);
                if reply_tx
                    .send(SessionReply::Tagged { id, response })
                    .is_err()
                {
                    return;
                }
            });
        }

        loop {
            let frame = match read_session_frame(&mut read_half, shared) {
                Ok(Some(body)) => body,
                // Clean EOF, Goodbye-less disconnect, or server shutdown.
                Ok(None) => break,
                Err(_) => break,
            };
            match SessionFrame::decode(&frame) {
                Ok(SessionFrame::Request { id, request }) => {
                    if in_flight.load(Ordering::SeqCst) >= granted as usize {
                        // Window overflow: per-frame BUSY, connection
                        // survives. Mirrors the v1 accept-queue BUSY.
                        eel_obs::counter!("serve.session.busy").add(1);
                        if reply_tx
                            .send(SessionReply::Tagged {
                                id,
                                response: Response::Busy,
                            })
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    eel_obs::counter!("serve.session.requests").add(1);
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    eel_obs::gauge("serve.session.inflight")
                        .set(in_flight.load(Ordering::SeqCst) as i64);
                    if job_tx.send((id, request)).is_err() {
                        break;
                    }
                }
                Ok(SessionFrame::Goodbye) => break,
                Ok(SessionFrame::Hello { .. }) => {
                    let _ = reply_tx.send(SessionReply::Tagged {
                        id: 0,
                        response: Response::Err("duplicate Hello".into()),
                    });
                }
                Err(e) => {
                    // A malformed frame poisons the stream (framing may
                    // be lost); answer and close.
                    eel_obs::counter!("serve.errors").add(1);
                    let _ = reply_tx.send(SessionReply::Tagged {
                        id: 0,
                        response: Response::Err(format!("bad session frame: {e}")),
                    });
                    break;
                }
            }
        }
        // Closing the job channel lets executors drain admitted work and
        // exit; their replies still flow through the writer.
        drop(job_tx);
    });
    drop(reply_tx);
    let _ = writer.join();
    eel_obs::counter!("serve.session.closed").add(1);
}

/// Reads one length-prefixed frame on a session connection, polling so
/// shutdown is noticed promptly. Returns `Ok(None)` on a clean EOF
/// between frames or when the server is stopping; a *partial* frame that
/// stalls past the configured request timeout is an error (the stream's
/// framing is unrecoverable at that point).
fn read_session_frame(stream: &mut TcpStream, shared: &Shared) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_exact_or_stop(stream, &mut len, shared, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    if !read_exact_or_stop(stream, &mut body, shared, false)? {
        return Ok(None);
    }
    Ok(Some(body))
}

/// Fills `buf` from the socket, tolerating read-timeout wakeups. Returns
/// `Ok(false)` when the server is stopping, or on clean EOF with nothing
/// read (only when `idle_ok` — i.e. at a frame boundary, where a client
/// hanging up without Goodbye is unremarkable). While idle between
/// frames the wait is unbounded (sessions are persistent); once any byte
/// of a frame has arrived, `config.timeout` of inactivity is an error.
fn read_exact_or_stop(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_ok: bool,
) -> io::Result<bool> {
    let mut at = 0;
    let mut last_progress = Instant::now();
    while at < buf.len() {
        if shared.stopping() {
            return Ok(false);
        }
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                if at == 0 && idle_ok {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                at += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let mid_frame = !idle_ok || at > 0;
                if mid_frame && last_progress.elapsed() >= shared.config.timeout {
                    return Err(e);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle_request(shared: &Shared, req: &Request) -> Response {
    eel_obs::counter!("serve.requests").add(1);
    struct ActiveGuard<'a>(&'a Shared);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.active_requests.fetch_sub(1, Ordering::SeqCst);
        }
    }
    shared.active_requests.fetch_add(1, Ordering::SeqCst);
    let _active = ActiveGuard(shared);
    let started = Instant::now();
    let resp = match req.op.as_str() {
        "ping" => Response::Ok {
            tier: CacheTier::Computed,
            body: b"pong".to_vec(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        "metrics" => Response::Ok {
            tier: CacheTier::Computed,
            body: render_metrics().into_bytes(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        "shutdown" => {
            shared.request_stop();
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"shutting down".to_vec(),
                fragments: None,
                discovery: None,
                machine: None,
            }
        }
        "edit" => cached_edit(shared, &req.payload),
        op if CACHED_OPS.contains(&op) => cached_op(shared, op, &req.payload),
        other => Response::Err(format!("unknown op {other:?}")),
    };
    eel_obs::histogram(&format!("serve.latency.{}", req.op))
        .record(started.elapsed().as_micros() as u64);
    resp
}

fn cached_op(shared: &Shared, op: &str, payload: &Payload) -> Response {
    let bytes = match payload {
        Payload::Inline(b) => b.clone(),
        Payload::Path(p) => match std::fs::read(p) {
            Ok(b) => b,
            Err(e) => return Response::Err(format!("cannot read {p}: {e}")),
        },
        Payload::Edit { .. } => {
            return Response::Err(format!("op {op:?} does not take an edit payload"))
        }
    };
    let hash = content_hash(&bytes);
    // Fragment accounting, the discovery source, and the machine tag
    // ride out of the compute closure through cells: all stay `None`
    // whenever a whole-image tier answered and the analysis never ran.
    // (A cached `stat` body still reports its discovery and machine
    // lines — both are part of the rendered result — so only the
    // wire-level annotation goes quiet on cache hits.)
    let frag_stats = std::cell::Cell::new(None);
    let disc = std::cell::Cell::new(None);
    let mach = std::cell::Cell::new(None);
    let resp = cached_result(shared, hash, op, op, || {
        let threads = analysis_threads(shared);
        let tier = SharedFragmentTier { shared };
        analyze(shared, hash, &bytes).and_then(|a| {
            disc.set(Some(match a.discovery() {
                eel_core::DiscoverySource::Symbols => Discovery::Symbols,
                eel_core::DiscoverySource::Inferred => Discovery::Inferred,
            }));
            mach.set(Some(a.machine()));
            run_op_fragments(op, &a, threads, &tier).map(|(body, stats)| {
                if stats.total > 0 {
                    eel_obs::counter!("serve.cache.fragment.hit").add(u64::from(stats.hits));
                    eel_obs::counter!("serve.cache.fragment.miss")
                        .add(u64::from(stats.total - stats.hits));
                    frag_stats.set(Some((stats.hits, stats.total)));
                }
                body
            })
        })
    });
    match resp {
        Response::Ok { tier, body, .. } => Response::Ok {
            tier,
            body,
            fragments: frag_stats.get(),
            discovery: disc.get(),
            machine: mach.get(),
        },
        other => other,
    }
}

/// The per-routine fragment tier backing [`run_op_fragments`], layered
/// over the same storage as whole-image results: fragments live in the
/// shared result LRU under `(routine_key, "frag.<op>")` and spill to the
/// disk tier as `.eelf` sidecars. Loads and stores happen *inside* a
/// whole-image entry's single-flight compute, so they use the cache's
/// non-blocking [`SingleFlightLru::get`] / [`SingleFlightLru::insert`]
/// surface — joining the single-flight protocol here would self-deadlock.
struct SharedFragmentTier<'a> {
    shared: &'a Shared,
}

impl SharedFragmentTier<'_> {
    fn cache_key(key: u64, op: &str) -> (u64, String) {
        (key, format!("frag.{op}"))
    }
}

impl FragmentTier for SharedFragmentTier<'_> {
    fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
        let cache_key = Self::cache_key(key, op);
        if let Some(Ok(body)) = self.shared.results.get(&cache_key) {
            return Some(body.to_vec());
        }
        // Memory missed: the disk tier gets a chance, and a hit is
        // promoted into the LRU like any whole-image disk hit.
        let disk = self.shared.disk.as_ref()?;
        let body = Arc::new(disk.load(key, &cache_key.1)?);
        let class = recompute_cost(&cache_key.1);
        let evicted =
            self.shared
                .results
                .insert(cache_key, Ok(Arc::clone(&body)), body.len(), class);
        demote_evicted(self.shared, evicted);
        Some(body.to_vec())
    }

    fn store(&self, key: u64, op: &str, bytes: &[u8]) {
        eel_obs::counter!("serve.cache.fragment.write").add(1);
        let cache_key = Self::cache_key(key, op);
        let class = recompute_cost(&cache_key.1);
        if let Some(disk) = &self.shared.disk {
            // Write-through, like whole-image results: a restart serves
            // warm fragments without waiting for an eviction.
            disk.store(key, &cache_key.1, bytes);
        }
        let evicted =
            self.shared
                .results
                .insert(cache_key, Ok(Arc::new(bytes.to_vec())), bytes.len(), class);
        demote_evicted(self.shared, evicted);
    }
}

/// Demotes a batch of LRU victims to the disk tier (outside the cache
/// lock) instead of discarding the work; evicted fragments additionally
/// count under `serve.cache.fragment.evict`. Content addressing makes
/// the store a cheap existence check for anything already spilled.
fn demote_evicted(shared: &Shared, evicted: Vec<((u64, String), CachedResult)>) {
    for ((h, op), value) in evicted {
        if op.starts_with("frag.") {
            eel_obs::counter!("serve.cache.fragment.evict").add(1);
        }
        if let (Some(disk), Ok(body)) = (&shared.disk, value) {
            disk.store(h, &op, &body);
        }
    }
}

/// The write path: a kind-2 payload carries `(wef, script)`; the result
/// is content-addressed by `(image_hash, "edit-{script_hash}")`, so
/// repeating the same patch fleet-wide is a cache hit on every tier.
fn cached_edit(shared: &Shared, payload: &Payload) -> Response {
    let Payload::Edit { wef, script } = payload else {
        return Response::Err("edit requires a kind-2 payload (wef bytes + script)".into());
    };
    let hash = content_hash(wef);
    let script_hash = content_hash(script.as_bytes());
    let op_key = format!("edit-{script_hash:016x}");
    cached_result(shared, hash, &op_key, "edit", || {
        analyze(shared, hash, wef).and_then(|a| run_edit(&a, script))
    })
}

/// The shared cache plumbing for every op that flows through the
/// content-addressed LRU: memory first, then the disk spill tier, then
/// `compute` — with write-through, victim demotion, and hit/miss
/// accounting. `op_key` addresses the cache entry; `metric_op` names the
/// op in `serve.ops.{metric_op}.computed`.
fn cached_result(
    shared: &Shared,
    hash: u64,
    op_key: &str,
    metric_op: &str,
    compute: impl FnOnce() -> Result<Vec<u8>, String>,
) -> Response {
    let key = (hash, op_key.to_string());
    let class = recompute_cost(op_key);
    let mut from_disk = false;
    let (result, hit, evicted) = shared.results.get_or_compute_classed(key, || {
        // Memory missed; the disk tier gets a chance before we pay for a
        // computation. A disk hit is promoted into the LRU by virtue of
        // being this closure's return value.
        if let Some(disk) = &shared.disk {
            if let Some(body) = disk.load(hash, op_key) {
                from_disk = true;
                let cost = body.len();
                return (Ok(Arc::new(body)), cost, class);
            }
        }
        eel_obs::counter(&format!("serve.ops.{metric_op}.computed")).add(1);
        let computed = compute().map(Arc::new);
        if let (Some(disk), Ok(body)) = (&shared.disk, &computed) {
            // Write-through: the entry survives a restart even if it is
            // never evicted. Errors stay memory-only — they may be
            // transient (an unreadable path) and are cheap to rebuild.
            disk.store(hash, op_key, body);
        }
        let cost = match &computed {
            Ok(body) => body.len(),
            Err(msg) => msg.len(),
        };
        (computed, cost, class)
    });
    demote_evicted(shared, evicted);
    if hit {
        eel_obs::counter!("serve.cache.hit").add(1);
    } else {
        eel_obs::counter!("serve.cache.miss").add(1);
    }
    let tier = if hit {
        CacheTier::Memory
    } else if from_disk {
        CacheTier::Disk
    } else {
        CacheTier::Computed
    };
    match result {
        Ok(body) => Response::Ok {
            tier,
            body: body.to_vec(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        Err(msg) => Response::Err(msg),
    }
}

/// Resolves the per-request analysis thread count: the configured value,
/// or — when 0 (auto) — the cores split evenly over the requests
/// currently executing, so intra-request parallelism fills idle cores
/// without oversubscribing a busy pipeline.
fn analysis_threads(shared: &Shared) -> usize {
    match shared.config.analysis_threads {
        0 => {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            let active = shared.active_requests.load(Ordering::SeqCst).max(1);
            (cores / active).max(1)
        }
        n => n,
    }
}

/// Loads + analyzes an image through the analysis cache, so the five ops
/// over one executable share a single discovery pass.
fn analyze(shared: &Shared, hash: u64, bytes: &[u8]) -> Result<Arc<Analysis>, String> {
    let (analysis, _hit) = shared.analyses.get_or_compute(hash, || {
        let computed = Image::from_bytes(bytes)
            .map_err(|e| format!("bad WEF image: {e}"))
            .and_then(|image| {
                Analysis::compute(Arc::new(image)).map_err(|e| format!("analysis failed: {e}"))
            })
            .map(Arc::new);
        let cost = match &computed {
            Ok(a) => a.approx_bytes(),
            Err(msg) => msg.len(),
        };
        (computed, cost)
    });
    analysis
}

/// Replies on a connection whose request was never read, then drains the
/// unread bytes before closing. Closing with data still in the receive
/// buffer makes the kernel send RST, which can discard the reply before
/// the client reads it — this is how BUSY and queue-timeout replies stay
/// deliverable.
fn write_then_drain(mut stream: TcpStream, resp: &Response) {
    use std::io::Read as _;
    let _ = write_frame(&mut stream, &resp.encode());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Renders the metrics registry as stable `kind name value` lines — what
/// the `metrics` op returns and eelctl prints.
fn render_metrics() -> String {
    let mut snap = eel_obs::MetricsSnapshot::capture();
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&format!("counter {} {}\n", c.name, c.value));
    }
    for g in &snap.gauges {
        out.push_str(&format!("gauge {} {}\n", g.name, g.value));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram {name} count={} sum={} max={}\n",
            h.count, h.sum, h.max
        ));
    }
    out
}
