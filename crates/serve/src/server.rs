//! The eel-serve daemon: a readiness-driven reactor, a fixed executor
//! pool, caches.
//!
//! One reactor thread owns every connection: a nonblocking listener and
//! all accepted sockets are multiplexed through `poll(2)` (see
//! [`crate::reactor`]), with per-connection read buffers reassembling
//! length-prefixed frames and per-connection bounded write buffers
//! draining as sockets accept bytes. Decoded requests — one-shot v1 and
//! tagged session frames alike — are handed to a fixed pool of executor
//! threads over a channel; finished replies come back through a
//! completion queue plus a wake byte, and the reactor serializes them
//! onto the right socket. An idle connection therefore costs a file
//! descriptor and two buffers, not threads: the thread budget is
//! `1 + executors`, independent of connection count.
//!
//! Backpressure is layered and all of it lives in the reactor:
//!
//! * v1 admission — more than `queue_depth` decoded one-shot requests
//!   waiting for executors answers [`Response::Busy`] at decode time
//!   (counted under both `serve.busy` and `serve.conn.busy`); an
//!   admitted request that waits in the channel past the configured
//!   timeout is answered with a timeout error rather than served stale;
//! * session windows — frames beyond the granted in-flight window get a
//!   per-frame tagged [`Response::Busy`] and the connection survives;
//! * slow consumers — a connection whose write buffer grows past
//!   `write_hwm` stops being read (its `POLLIN` is withheld, counted
//!   under `serve.reactor.pushback`) until the client drains it below
//!   half the mark, so a stalled reader stalls only its own session.
//!
//! Results flow through two content-addressed, single-flight LRU caches:
//! one for [`Analysis`] artifacts keyed by image hash, one for rendered
//! operation results keyed by (image hash, op). With `cache_dir` set the
//! result cache grows a disk tier ([`crate::disk::DiskCache`]): memory
//! misses consult the directory before computing (a hit is promoted back
//! into the LRU), computed results spill through, and LRU evictions
//! demote instead of discard — so a daemon restart serves warm from disk
//! with zero re-analysis.
//!
//! Everything is instrumented through eel-obs: `serve.requests`,
//! `serve.cache.hit` / `serve.cache.miss` (the *memory* tier),
//! `serve.cache.disk.{hit,miss,write,evict,corrupt}` and the
//! `serve.cache.disk.bytes` gauge (the disk tier), `serve.busy` and
//! `serve.conn.busy`, `serve.errors`, `serve.timeouts`, the
//! `serve.queue.depth` gauge, per-op `serve.latency.<op>` histograms
//! (microseconds) plus `serve.latency.disk.{load,spill}`, per-op
//! `serve.ops.<op>.computed` counters that count *actual* computations —
//! the single-flight and warm-restart evidence — the session-mode series
//! `serve.session.{opened,closed,requests,busy}` with the
//! `serve.session.inflight` gauge, and the event-loop series
//! `serve.reactor.conns` (gauge) / `serve.reactor.pushback`.

use crate::cache::{content_hash, SingleFlightLru};
use crate::disk::DiskCache;
use crate::ops::{recompute_cost, run_edit, run_op_fragments, FragmentTier, CACHED_OPS};
use crate::proto::{
    CacheTier, Discovery, Payload, Request, Response, SessionFrame, SessionReply, MAX_FRAME,
    SESSION_VERSION,
};
use crate::reactor::{
    notify, poll_fds, Conn, PollFd, WakePipe, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT,
};
use eel_core::Analysis;
use eel_exe::Image;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Executor threads; 0 means one per available core. (The pool is
    /// shared by one-shot and session requests; see
    /// [`ServerConfig::session_workers`].)
    pub workers: usize,
    /// Bounded admission depth for one-shot requests; decoded requests
    /// beyond this many waiting for executors get [`Response::Busy`].
    pub queue_depth: usize,
    /// LRU byte budget, split evenly between the analysis and result
    /// caches.
    pub cache_bytes: usize,
    /// Per-request budget: the deadline for a connection's first frame,
    /// the mid-frame inactivity limit, and the maximum time an admitted
    /// one-shot request may wait for an executor.
    pub timeout: Duration,
    /// Directory for the on-disk result-cache spill tier; `None` (the
    /// default) keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the disk tier (only meaningful with `cache_dir`);
    /// a janitor prunes the directory oldest-first past this.
    pub disk_bytes: u64,
    /// Maximum in-flight window granted to a session connection; a
    /// client's requested window is clamped to this. Requests beyond
    /// the granted window are answered per-frame with
    /// [`Response::Busy`] (the connection survives).
    pub session_window: u32,
    /// Floor on the executor pool when session traffic is expected; the
    /// pool is `max(workers, session_workers)` threads. 0 defers to
    /// `workers`. (Historically the per-session executor count; the
    /// pool is shared now, but the knob keeps its spirit: how much
    /// session parallelism the daemon should sustain.)
    pub session_workers: usize,
    /// Threads for the per-routine parallel CFG fan-out inside one
    /// request. 1 pins analysis sequential; 0 adapts — each request
    /// gets roughly `cores / active requests` threads, so a lone
    /// request uses the whole machine and a full pipeline degrades to
    /// one thread each (inter-request parallelism already saturates the
    /// cores). Any other value is used as-is.
    pub analysis_threads: usize,
    /// Per-connection write-buffer high-water mark in bytes: past this
    /// the reactor stops reading from the connection until the client
    /// drains replies below half the mark.
    pub write_hwm: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            timeout: Duration::from_secs(10),
            cache_dir: None,
            disk_bytes: 256 << 20,
            session_window: 32,
            session_workers: 0,
            analysis_threads: 0,
            write_hwm: 4 << 20,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }
    }

    /// The executor pool size: the larger of the worker and
    /// session-worker knobs, floored at 2 so one slow request can never
    /// wedge `ping` on a single-core box.
    fn executor_pool(&self) -> usize {
        self.effective_workers().max(self.session_workers).max(2)
    }
}

type CachedAnalysis = Result<Arc<Analysis>, String>;
type CachedResult = Result<Arc<Vec<u8>>, String>;

/// A (slot, generation) handle naming one connection across the
/// executor boundary; a completion whose generation no longer matches
/// the slot's is for a connection that already died and is dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Token {
    slot: usize,
    gen: u64,
}

/// One unit of work handed to the executor pool.
enum Work {
    /// A one-shot v1 request; `enqueued` drives the stale-in-queue
    /// timeout.
    V1 {
        token: Token,
        req: Request,
        enqueued: Instant,
    },
    /// A tagged session request.
    Session { token: Token, id: u64, req: Request },
}

/// A finished reply traveling back from an executor to the reactor:
/// the already-encoded frame body, addressed by connection token.
struct Done {
    token: Token,
    frame: Vec<u8>,
}

struct Shared {
    config: ServerConfig,
    local_addr: SocketAddr,
    stop: AtomicBool,
    /// Requests currently executing (v1 and session alike); the
    /// denominator of the adaptive intra-request thread split.
    active_requests: AtomicUsize,
    /// Admitted one-shot requests waiting for (or held by the channel
    /// ahead of) an executor — the v1 admission-control quantity.
    queued_jobs: AtomicUsize,
    /// Replies finished by executors, waiting for the reactor to drain
    /// them onto sockets.
    completions: Mutex<Vec<Done>>,
    /// Write half of the reactor's wake pipe; executors and
    /// [`Shared::request_stop`] poke it to interrupt a parked poll.
    wake_tx: TcpStream,
    analyses: SingleFlightLru<u64, CachedAnalysis>,
    results: SingleFlightLru<(u64, String), CachedResult>,
    /// The optional spill tier under the results cache.
    disk: Option<DiskCache>,
}

/// A running eel-serve daemon. Dropping it shuts it down and joins every
/// thread.
pub struct Server {
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the reactor and executor threads.
    ///
    /// If eel-obs is off, summary mode is switched on: a service without
    /// its metrics is flying blind, and the `metrics` op must have
    /// something to render.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if !eel_obs::enabled() {
            eel_obs::set_mode(eel_obs::Mode::Summary);
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let wake = WakePipe::new()?;
        let wake_tx = wake.notifier()?;
        let pool = config.executor_pool();
        let half = (config.cache_bytes / 2).max(1);
        let disk = config
            .cache_dir
            .as_ref()
            .map(|dir| DiskCache::open(dir, config.disk_bytes));
        let shared = Arc::new(Shared {
            local_addr,
            stop: AtomicBool::new(false),
            active_requests: AtomicUsize::new(0),
            queued_jobs: AtomicUsize::new(0),
            completions: Mutex::new(Vec::new()),
            wake_tx,
            analyses: SingleFlightLru::new(half),
            results: SingleFlightLru::new(half),
            disk,
            config,
        });

        let (job_tx, job_rx) = mpsc::channel::<Work>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut executors = Vec::with_capacity(pool);
        for k in 0..pool {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            executors.push(
                std::thread::Builder::new()
                    .name(format!("eelserved-exec-{k}"))
                    .spawn(move || executor_loop(&shared, &job_rx))?,
            );
        }
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eelserved-reactor".into())
                .spawn(move || Reactor::new(&shared, listener, wake, job_tx).run())?
        };
        Ok(Server {
            shared,
            reactor: Some(reactor),
            executors,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Signals shutdown: stops accepting, finishes every admitted
    /// request, flushes replies. Does not block; pair with
    /// [`Server::wait`] or drop.
    pub fn shutdown(&self) {
        self.shared.request_stop();
    }

    /// Blocks until every thread has exited (after [`Server::shutdown`],
    /// a client `shutdown` request, or a fatal accept error).
    ///
    /// # Panics
    ///
    /// Propagates a reactor or executor panic, so tests fail loudly if a
    /// thread died.
    pub fn wait(mut self) {
        if let Some(r) = self.reactor.take() {
            r.join().expect("reactor thread panicked");
        }
        for w in self.executors.drain(..) {
            w.join().expect("executor thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_stop();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.executors.drain(..) {
            let _ = w.join();
        }
    }
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        notify(&self.wake_tx);
    }
}

/// How long a fully answered connection gets to hit EOF (or at least
/// quiesce) after our FIN before it is closed anyway.
const CLOSE_DRAIN: Duration = Duration::from_millis(500);

/// Per-connection protocol state, driven entirely by the reactor thread.
enum ConnState {
    /// No complete first frame yet; `accepted` drives the first-frame
    /// deadline.
    Greeting { accepted: Instant },
    /// A one-shot exchange; `pending` is the submitted-but-unanswered
    /// job count (0 or 1).
    V1 { pending: usize },
    /// A pipelined session.
    Session {
        granted: u32,
        in_flight: usize,
        /// Goodbye received, peer EOF, stream error, or server shutdown:
        /// no new frames are admitted and the connection closes once
        /// `in_flight` drains.
        draining: bool,
    },
}

struct ConnEntry {
    conn: Conn,
    state: ConnState,
    /// Keep reading (so close doesn't RST queued replies away) but
    /// ignore the bytes.
    discard_input: bool,
    /// For Greeting/V1: close once all replies are queued and flushed.
    close_when_done: bool,
    /// Reads withheld by the write-buffer high-water mark.
    paused: bool,
    /// Write side FIN'd; drop at EOF or at this deadline.
    closing: Option<Instant>,
    /// Socket is broken; reap on the next cleanup pass.
    dead: bool,
}

impl ConnEntry {
    /// All protocol work finished — nothing pending, no reply to wait
    /// for — so the connection may begin its graceful close.
    fn work_done(&self) -> bool {
        match self.state {
            ConnState::Greeting { .. } => self.close_when_done,
            ConnState::V1 { pending } => self.close_when_done && pending == 0,
            ConnState::Session {
                in_flight,
                draining,
                ..
            } => draining && in_flight == 0,
        }
    }
}

struct Reactor<'a> {
    shared: &'a Shared,
    listener: Option<TcpListener>,
    wake: WakePipe,
    job_tx: mpsc::Sender<Work>,
    conns: Vec<Option<ConnEntry>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    /// Jobs submitted to executors whose completions have not yet been
    /// drained; shutdown waits for this to hit zero.
    outstanding: usize,
    /// Sum of session `in_flight` across live connections — the
    /// `serve.session.inflight` gauge.
    total_inflight: usize,
    open_conns: usize,
    shutting_down: bool,
}

impl<'a> Reactor<'a> {
    fn new(
        shared: &'a Shared,
        listener: TcpListener,
        wake: WakePipe,
        job_tx: mpsc::Sender<Work>,
    ) -> Reactor<'a> {
        Reactor {
            shared,
            listener: Some(listener),
            wake,
            job_tx,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            outstanding: 0,
            total_inflight: 0,
            open_conns: 0,
            shutting_down: false,
        }
    }

    fn run(mut self) {
        loop {
            if self.shared.stopping() && !self.shutting_down {
                self.begin_shutdown();
            }
            self.drain_completions();
            self.reap_deadlines();
            self.cleanup();
            if self.shutting_down && self.outstanding == 0 && self.open_conns == 0 {
                return;
            }
            let (mut fds, listener_at, conn_at) = self.build_pollset();
            let timeout = self
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            match poll_fds(&mut fds, timeout) {
                Ok(_) => {}
                Err(_) => {
                    // A failing poll on our own fd set is unrecoverable;
                    // shut the daemon down instead of spinning.
                    self.shared.request_stop();
                    continue;
                }
            }
            self.wake.drain();
            if let Some(at) = listener_at {
                if fds[at].revents != 0 {
                    self.accept_new();
                }
            }
            for (at, slot) in conn_at {
                let revents = fds[at].revents;
                if revents != 0 {
                    self.handle_conn_event(slot, revents);
                }
            }
        }
    }

    /// Stop accepting, stop admitting new frames everywhere, let
    /// admitted work finish and replies flush.
    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        self.listener = None;
        for entry in self.conns.iter_mut().flatten() {
            entry.discard_input = true;
            match entry.state {
                // Never sent a complete request: nothing owed, close.
                ConnState::Greeting { .. } => entry.close_when_done = true,
                // The pending reply (if any) still gets delivered.
                ConnState::V1 { .. } => entry.close_when_done = true,
                ConnState::Session {
                    ref mut draining, ..
                } => *draining = true,
            }
        }
    }

    fn build_pollset(&self) -> (Vec<PollFd>, Option<usize>, Vec<(usize, usize)>) {
        let mut fds = vec![PollFd {
            fd: self.wake.fd(),
            events: POLLIN,
            revents: 0,
        }];
        let listener_at = self.listener.as_ref().map(|l| {
            use std::os::fd::AsRawFd as _;
            fds.push(PollFd {
                fd: l.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            fds.len() - 1
        });
        let mut conn_at = Vec::with_capacity(self.open_conns);
        for (slot, entry) in self.conns.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let mut events = 0i16;
            if !entry.conn.read_closed && (entry.discard_input || !entry.paused) {
                events |= POLLIN;
            }
            if entry.conn.wants_write() {
                events |= POLLOUT;
            }
            if events == 0 {
                continue;
            }
            fds.push(PollFd {
                fd: entry.conn.fd(),
                events,
                revents: 0,
            });
            conn_at.push((fds.len() - 1, slot));
        }
        (fds, listener_at, conn_at)
    }

    /// The soonest of: first-frame deadlines, mid-frame stall deadlines,
    /// and close-drain deadlines. `None` parks poll indefinitely (the
    /// wake pipe covers completions and shutdown).
    fn next_deadline(&self) -> Option<Instant> {
        let timeout = self.shared.config.timeout;
        let mut soonest: Option<Instant> = None;
        let mut consider = |d: Instant| {
            soonest = Some(match soonest {
                Some(s) if s <= d => s,
                _ => d,
            });
        };
        for entry in self.conns.iter().flatten() {
            if let Some(d) = entry.closing {
                consider(d);
            }
            if entry.discard_input {
                continue;
            }
            match entry.state {
                ConnState::Greeting { accepted } if !entry.close_when_done => {
                    consider(accepted + timeout);
                }
                ConnState::Session { .. } if entry.conn.mid_frame() => {
                    consider(entry.conn.last_progress + timeout);
                }
                _ => {}
            }
        }
        soonest
    }

    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        let timeout = self.shared.config.timeout;
        for slot in 0..self.conns.len() {
            let Some(mut entry) = self.conns[slot].take() else {
                continue;
            };
            if let Some(d) = entry.closing {
                if now >= d {
                    entry.dead = true;
                }
            }
            if !entry.dead && !entry.discard_input {
                match entry.state {
                    ConnState::Greeting { accepted }
                        if !entry.close_when_done && now >= accepted + timeout =>
                    {
                        eel_obs::counter!("serve.errors").add(1);
                        self.queue_reply(
                            &mut entry,
                            &Response::Err("bad request: timed out waiting for request".into())
                                .encode(),
                        );
                        entry.close_when_done = true;
                        entry.discard_input = true;
                    }
                    ConnState::Session {
                        ref mut draining, ..
                    } if entry.conn.mid_frame() && now >= entry.conn.last_progress + timeout => {
                        // A frame stalled mid-transfer: the stream's
                        // framing is unrecoverable. Finish in-flight
                        // work, then close.
                        *draining = true;
                        entry.discard_input = true;
                    }
                    _ => {}
                }
            }
            self.put_back(slot, entry);
        }
    }

    /// Initiates graceful closes for finished connections and reaps dead
    /// ones.
    fn cleanup(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(entry) = self.conns[slot].as_mut() else {
                continue;
            };
            if !entry.dead && entry.work_done() && !entry.conn.wants_write() {
                if entry.conn.read_closed {
                    entry.dead = true;
                } else if entry.closing.is_none() {
                    entry.conn.shutdown_write();
                    entry.closing = Some(now + CLOSE_DRAIN);
                }
            }
            if entry.dead {
                let entry = self.conns[slot].take().expect("slot checked above");
                self.drop_conn(slot, entry);
            }
        }
    }

    fn insert_conn(&mut self, conn: Conn) {
        let entry = ConnEntry {
            conn,
            state: ConnState::Greeting {
                accepted: Instant::now(),
            },
            discard_input: false,
            close_when_done: false,
            paused: false,
            closing: None,
            dead: false,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.conns[s] = Some(entry);
                s
            }
            None => {
                self.conns.push(Some(entry));
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let _ = slot;
        self.open_conns += 1;
        eel_obs::gauge("serve.reactor.conns").set(self.open_conns as i64);
    }

    fn drop_conn(&mut self, slot: usize, entry: ConnEntry) {
        if let ConnState::Session { in_flight, .. } = entry.state {
            // Jobs still running for this connection will complete and
            // be discarded by the token generation check.
            self.total_inflight -= in_flight;
            eel_obs::gauge("serve.session.inflight").set(self.total_inflight as i64);
            eel_obs::counter!("serve.session.closed").add(1);
        }
        self.gens[slot] += 1;
        self.free.push(slot);
        self.open_conns -= 1;
        eel_obs::gauge("serve.reactor.conns").set(self.open_conns as i64);
    }

    fn put_back(&mut self, slot: usize, entry: ConnEntry) {
        if entry.dead {
            self.drop_conn(slot, entry);
        } else {
            self.conns[slot] = Some(entry);
        }
    }

    fn accept_new(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        self.insert_conn(conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                    ) => {}
                Err(_) => {
                    // Fatal listener error: stop the whole server rather
                    // than spinning on a dead socket.
                    self.shared.request_stop();
                    return;
                }
            }
        }
    }

    fn handle_conn_event(&mut self, slot: usize, revents: i16) {
        let Some(mut entry) = self.conns[slot].take() else {
            return;
        };
        let token = Token {
            slot,
            gen: self.gens[slot],
        };
        if revents & (POLLERR | POLLNVAL) != 0 {
            entry.dead = true;
            self.put_back(slot, entry);
            return;
        }
        if revents & (POLLIN | POLLHUP) != 0 {
            self.handle_readable(&mut entry, token);
        }
        if revents & POLLOUT != 0 && !entry.dead {
            self.flush_entry(&mut entry);
        }
        self.put_back(slot, entry);
    }

    fn handle_readable(&mut self, entry: &mut ConnEntry, token: Token) {
        if entry.discard_input {
            let _ = entry.conn.discard();
            return;
        }
        match entry.conn.fill(MAX_FRAME) {
            Ok(frames) => {
                for body in frames {
                    if !self.process_frame(entry, token, &body) {
                        break;
                    }
                }
                if entry.conn.read_closed && !entry.discard_input {
                    self.peer_eof(entry);
                }
            }
            Err(e) => self.input_error(entry, &e),
        }
    }

    /// Clean EOF at a frame boundary: a client hanging up without
    /// Goodbye is unremarkable.
    fn peer_eof(&mut self, entry: &mut ConnEntry) {
        entry.discard_input = true;
        match entry.state {
            ConnState::Greeting { .. } => entry.close_when_done = true,
            ConnState::V1 { .. } => entry.close_when_done = true,
            ConnState::Session {
                ref mut draining, ..
            } => *draining = true,
        }
    }

    /// The read stream is broken: mid-frame EOF, an oversized length
    /// prefix, or a socket error. Greeting connections get the v1-style
    /// error reply; everything else finishes what it owes and closes.
    fn input_error(&mut self, entry: &mut ConnEntry, e: &io::Error) {
        entry.discard_input = true;
        match entry.state {
            ConnState::Greeting { .. } => {
                eel_obs::counter!("serve.errors").add(1);
                self.queue_reply(
                    &mut *entry,
                    &Response::Err(format!("bad request: {e}")).encode(),
                );
                entry.close_when_done = true;
            }
            ConnState::V1 { .. } => entry.close_when_done = true,
            ConnState::Session {
                ref mut draining, ..
            } => *draining = true,
        }
    }

    /// Advances one connection's protocol state machine by one inbound
    /// frame. Returns false when no further frames should be processed
    /// from this batch (mode decided, connection draining, …).
    fn process_frame(&mut self, entry: &mut ConnEntry, token: Token, body: &[u8]) -> bool {
        match entry.state {
            ConnState::Greeting { .. } => self.greeting_frame(entry, token, body),
            // One-shot connections consume exactly one frame; anything
            // extra is discarded.
            ConnState::V1 { .. } => false,
            ConnState::Session { .. } => self.session_frame(entry, token, body),
        }
    }

    /// The connection's first frame picks its mode: the session version
    /// byte opens a pipelined session, anything else is a one-shot v1
    /// exchange (including unknown versions, which `Request::decode`
    /// rejects with a clean error a v1 client can render).
    fn greeting_frame(&mut self, entry: &mut ConnEntry, token: Token, body: &[u8]) -> bool {
        if body.first() == Some(&SESSION_VERSION) {
            match SessionFrame::decode(body) {
                Ok(SessionFrame::Hello { window }) => {
                    let cap = self.shared.config.session_window;
                    let requested = if window == 0 { cap } else { window };
                    let granted = requested.clamp(1, cap.max(1));
                    entry.state = ConnState::Session {
                        granted,
                        in_flight: 0,
                        draining: false,
                    };
                    eel_obs::counter!("serve.session.opened").add(1);
                    self.queue_reply(entry, &SessionReply::HelloAck { window: granted }.encode());
                    true
                }
                _ => {
                    eel_obs::counter!("serve.errors").add(1);
                    self.queue_reply(
                        entry,
                        &SessionReply::Tagged {
                            id: 0,
                            response: Response::Err("session must open with Hello".into()),
                        }
                        .encode(),
                    );
                    entry.close_when_done = true;
                    entry.discard_input = true;
                    false
                }
            }
        } else {
            match Request::decode(body) {
                Ok(req) => {
                    if self.shared.queued_jobs.load(Ordering::SeqCst)
                        >= self.shared.config.queue_depth
                    {
                        // Admission overflow: explicit backpressure
                        // instead of an unbounded backlog, at the cost
                        // of one decoded frame.
                        eel_obs::counter!("serve.busy").add(1);
                        eel_obs::counter!("serve.conn.busy").add(1);
                        self.queue_reply(entry, &Response::Busy.encode());
                        entry.close_when_done = true;
                        entry.discard_input = true;
                        return false;
                    }
                    let depth = self.shared.queued_jobs.fetch_add(1, Ordering::SeqCst) + 1;
                    eel_obs::gauge("serve.queue.depth").set(depth as i64);
                    entry.state = ConnState::V1 { pending: 1 };
                    entry.discard_input = true;
                    self.outstanding += 1;
                    let _ = self.job_tx.send(Work::V1 {
                        token,
                        req,
                        enqueued: Instant::now(),
                    });
                    false
                }
                Err(e) => {
                    eel_obs::counter!("serve.errors").add(1);
                    self.queue_reply(entry, &Response::Err(format!("bad request: {e}")).encode());
                    entry.close_when_done = true;
                    entry.discard_input = true;
                    false
                }
            }
        }
    }

    fn session_frame(&mut self, entry: &mut ConnEntry, token: Token, body: &[u8]) -> bool {
        let ConnState::Session {
            granted, in_flight, ..
        } = entry.state
        else {
            return false;
        };
        match SessionFrame::decode(body) {
            Ok(SessionFrame::Request { id, request }) => {
                if in_flight >= granted as usize {
                    // Window overflow: per-frame BUSY, connection
                    // survives. Mirrors the v1 admission BUSY.
                    eel_obs::counter!("serve.session.busy").add(1);
                    self.queue_reply(
                        entry,
                        &SessionReply::Tagged {
                            id,
                            response: Response::Busy,
                        }
                        .encode(),
                    );
                    return true;
                }
                eel_obs::counter!("serve.session.requests").add(1);
                if let ConnState::Session {
                    ref mut in_flight, ..
                } = entry.state
                {
                    *in_flight += 1;
                }
                self.total_inflight += 1;
                eel_obs::gauge("serve.session.inflight").set(self.total_inflight as i64);
                self.outstanding += 1;
                let _ = self.job_tx.send(Work::Session {
                    token,
                    id,
                    req: request,
                });
                true
            }
            Ok(SessionFrame::Goodbye) => {
                if let ConnState::Session {
                    ref mut draining, ..
                } = entry.state
                {
                    *draining = true;
                }
                entry.discard_input = true;
                false
            }
            Ok(SessionFrame::Hello { .. }) => {
                self.queue_reply(
                    entry,
                    &SessionReply::Tagged {
                        id: 0,
                        response: Response::Err("duplicate Hello".into()),
                    }
                    .encode(),
                );
                true
            }
            Err(e) => {
                // A malformed frame poisons the stream (framing may be
                // lost); answer, finish in-flight work, close.
                eel_obs::counter!("serve.errors").add(1);
                self.queue_reply(
                    entry,
                    &SessionReply::Tagged {
                        id: 0,
                        response: Response::Err(format!("bad session frame: {e}")),
                    }
                    .encode(),
                );
                if let ConnState::Session {
                    ref mut draining, ..
                } = entry.state
                {
                    *draining = true;
                }
                entry.discard_input = true;
                false
            }
        }
    }

    fn drain_completions(&mut self) {
        let done = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completions lock poisoned"),
        );
        for d in done {
            self.outstanding -= 1;
            if self.gens[d.token.slot] != d.token.gen {
                continue; // connection died while the job ran
            }
            let Some(mut entry) = self.conns[d.token.slot].take() else {
                continue;
            };
            match entry.state {
                ConnState::V1 { ref mut pending } => {
                    *pending -= 1;
                    entry.close_when_done = true;
                }
                ConnState::Session {
                    ref mut in_flight, ..
                } => {
                    *in_flight -= 1;
                    self.total_inflight -= 1;
                    eel_obs::gauge("serve.session.inflight").set(self.total_inflight as i64);
                }
                ConnState::Greeting { .. } => {}
            }
            self.queue_reply(&mut entry, &d.frame);
            self.put_back(d.token.slot, entry);
        }
    }

    /// Queues an outbound frame and eagerly flushes; applies the
    /// high-water-mark pause/resume transitions.
    fn queue_reply(&mut self, entry: &mut ConnEntry, frame: &[u8]) {
        entry.conn.queue_frame(frame);
        self.flush_entry(entry);
    }

    fn flush_entry(&mut self, entry: &mut ConnEntry) {
        if entry.conn.flush().is_err() {
            entry.dead = true;
            return;
        }
        let hwm = self.shared.config.write_hwm.max(1);
        if !entry.paused && entry.conn.buffered() > hwm {
            entry.paused = true;
            eel_obs::counter!("serve.reactor.pushback").add(1);
        } else if entry.paused && entry.conn.buffered() <= hwm / 2 {
            entry.paused = false;
        }
    }
}

fn executor_loop(shared: &Shared, job_rx: &Mutex<mpsc::Receiver<Work>>) {
    loop {
        let work = {
            let rx = job_rx.lock().expect("job lock poisoned");
            rx.recv()
        };
        let Ok(work) = work else { return };
        let done = match work {
            Work::V1 {
                token,
                req,
                enqueued,
            } => {
                let depth = shared.queued_jobs.fetch_sub(1, Ordering::SeqCst) - 1;
                eel_obs::gauge("serve.queue.depth").set(depth as i64);
                let waited = enqueued.elapsed();
                let resp = if waited >= shared.config.timeout {
                    eel_obs::counter!("serve.timeouts").add(1);
                    Response::Err(format!(
                        "request timed out after {}ms in queue",
                        waited.as_millis()
                    ))
                } else {
                    let resp = handle_request(shared, &req);
                    if matches!(resp, Response::Err(_)) {
                        eel_obs::counter!("serve.errors").add(1);
                    }
                    resp
                };
                Done {
                    token,
                    frame: resp.encode(),
                }
            }
            Work::Session { token, id, req } => {
                let response = handle_request(shared, &req);
                if matches!(response, Response::Err(_)) {
                    eel_obs::counter!("serve.errors").add(1);
                }
                Done {
                    token,
                    frame: SessionReply::Tagged { id, response }.encode(),
                }
            }
        };
        shared
            .completions
            .lock()
            .expect("completions lock poisoned")
            .push(done);
        notify(&shared.wake_tx);
    }
}

fn handle_request(shared: &Shared, req: &Request) -> Response {
    eel_obs::counter!("serve.requests").add(1);
    struct ActiveGuard<'a>(&'a Shared);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.active_requests.fetch_sub(1, Ordering::SeqCst);
        }
    }
    shared.active_requests.fetch_add(1, Ordering::SeqCst);
    let _active = ActiveGuard(shared);
    let started = Instant::now();
    let resp = match req.op.as_str() {
        "ping" => Response::Ok {
            tier: CacheTier::Computed,
            body: b"pong".to_vec(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        "metrics" => Response::Ok {
            tier: CacheTier::Computed,
            body: render_metrics().into_bytes(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        "shutdown" => {
            shared.request_stop();
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"shutting down".to_vec(),
                fragments: None,
                discovery: None,
                machine: None,
            }
        }
        "edit" => cached_edit(shared, &req.payload),
        op if CACHED_OPS.contains(&op) => cached_op(shared, op, &req.payload),
        other => Response::Err(format!("unknown op {other:?}")),
    };
    eel_obs::histogram(&format!("serve.latency.{}", req.op))
        .record(started.elapsed().as_micros() as u64);
    resp
}

fn cached_op(shared: &Shared, op: &str, payload: &Payload) -> Response {
    let bytes = match payload {
        Payload::Inline(b) => b.clone(),
        Payload::Path(p) => match std::fs::read(p) {
            Ok(b) => b,
            Err(e) => return Response::Err(format!("cannot read {p}: {e}")),
        },
        Payload::Edit { .. } => {
            return Response::Err(format!("op {op:?} does not take an edit payload"))
        }
    };
    let hash = content_hash(&bytes);
    // Fragment accounting, the discovery source, and the machine tag
    // ride out of the compute closure through cells: all stay `None`
    // whenever a whole-image tier answered and the analysis never ran.
    // (A cached `stat` body still reports its discovery and machine
    // lines — both are part of the rendered result — so only the
    // wire-level annotation goes quiet on cache hits.)
    let frag_stats = std::cell::Cell::new(None);
    let disc = std::cell::Cell::new(None);
    let mach = std::cell::Cell::new(None);
    let resp = cached_result(shared, hash, op, op, || {
        let threads = analysis_threads(shared);
        let tier = SharedFragmentTier { shared };
        analyze(shared, hash, &bytes).and_then(|a| {
            disc.set(Some(match a.discovery() {
                eel_core::DiscoverySource::Symbols => Discovery::Symbols,
                eel_core::DiscoverySource::Inferred => Discovery::Inferred,
            }));
            mach.set(Some(a.machine()));
            run_op_fragments(op, &a, threads, &tier).map(|(body, stats)| {
                if stats.total > 0 {
                    eel_obs::counter!("serve.cache.fragment.hit").add(u64::from(stats.hits));
                    eel_obs::counter!("serve.cache.fragment.miss")
                        .add(u64::from(stats.total - stats.hits));
                    frag_stats.set(Some((stats.hits, stats.total)));
                }
                body
            })
        })
    });
    match resp {
        Response::Ok { tier, body, .. } => Response::Ok {
            tier,
            body,
            fragments: frag_stats.get(),
            discovery: disc.get(),
            machine: mach.get(),
        },
        other => other,
    }
}

/// The per-routine fragment tier backing [`run_op_fragments`], layered
/// over the same storage as whole-image results: fragments live in the
/// shared result LRU under `(routine_key, "frag.<op>")` and spill to the
/// disk tier as `.eelf` sidecars. Loads and stores happen *inside* a
/// whole-image entry's single-flight compute, so they use the cache's
/// non-blocking [`SingleFlightLru::get`] / [`SingleFlightLru::insert`]
/// surface — joining the single-flight protocol here would self-deadlock.
struct SharedFragmentTier<'a> {
    shared: &'a Shared,
}

impl SharedFragmentTier<'_> {
    fn cache_key(key: u64, op: &str) -> (u64, String) {
        (key, format!("frag.{op}"))
    }
}

impl FragmentTier for SharedFragmentTier<'_> {
    fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
        let cache_key = Self::cache_key(key, op);
        if let Some(Ok(body)) = self.shared.results.get(&cache_key) {
            return Some(body.to_vec());
        }
        // Memory missed: the disk tier gets a chance, and a hit is
        // promoted into the LRU like any whole-image disk hit.
        let disk = self.shared.disk.as_ref()?;
        let body = Arc::new(disk.load(key, &cache_key.1)?);
        let class = recompute_cost(&cache_key.1);
        let evicted =
            self.shared
                .results
                .insert(cache_key, Ok(Arc::clone(&body)), body.len(), class);
        demote_evicted(self.shared, evicted);
        Some(body.to_vec())
    }

    fn store(&self, key: u64, op: &str, bytes: &[u8]) {
        eel_obs::counter!("serve.cache.fragment.write").add(1);
        let cache_key = Self::cache_key(key, op);
        let class = recompute_cost(&cache_key.1);
        if let Some(disk) = &self.shared.disk {
            // Write-through, like whole-image results: a restart serves
            // warm fragments without waiting for an eviction.
            disk.store(key, &cache_key.1, bytes);
        }
        let evicted =
            self.shared
                .results
                .insert(cache_key, Ok(Arc::new(bytes.to_vec())), bytes.len(), class);
        demote_evicted(self.shared, evicted);
    }
}

/// Demotes a batch of LRU victims to the disk tier (outside the cache
/// lock) instead of discarding the work; evicted fragments additionally
/// count under `serve.cache.fragment.evict`. Content addressing makes
/// the store a cheap existence check for anything already spilled.
fn demote_evicted(shared: &Shared, evicted: Vec<((u64, String), CachedResult)>) {
    for ((h, op), value) in evicted {
        if op.starts_with("frag.") {
            eel_obs::counter!("serve.cache.fragment.evict").add(1);
        }
        if let (Some(disk), Ok(body)) = (&shared.disk, value) {
            disk.store(h, &op, &body);
        }
    }
}

/// The write path: a kind-2 payload carries `(wef, script)`; the result
/// is content-addressed by `(image_hash, "edit-{script_hash}")`, so
/// repeating the same patch fleet-wide is a cache hit on every tier.
fn cached_edit(shared: &Shared, payload: &Payload) -> Response {
    let Payload::Edit { wef, script } = payload else {
        return Response::Err("edit requires a kind-2 payload (wef bytes + script)".into());
    };
    let hash = content_hash(wef);
    let script_hash = content_hash(script.as_bytes());
    let op_key = format!("edit-{script_hash:016x}");
    cached_result(shared, hash, &op_key, "edit", || {
        analyze(shared, hash, wef).and_then(|a| run_edit(&a, script))
    })
}

/// The shared cache plumbing for every op that flows through the
/// content-addressed LRU: memory first, then the disk spill tier, then
/// `compute` — with write-through, victim demotion, and hit/miss
/// accounting. `op_key` addresses the cache entry; `metric_op` names the
/// op in `serve.ops.{metric_op}.computed`.
fn cached_result(
    shared: &Shared,
    hash: u64,
    op_key: &str,
    metric_op: &str,
    compute: impl FnOnce() -> Result<Vec<u8>, String>,
) -> Response {
    let key = (hash, op_key.to_string());
    let class = recompute_cost(op_key);
    let mut from_disk = false;
    let (result, hit, evicted) = shared.results.get_or_compute_classed(key, || {
        // Memory missed; the disk tier gets a chance before we pay for a
        // computation. A disk hit is promoted into the LRU by virtue of
        // being this closure's return value.
        if let Some(disk) = &shared.disk {
            if let Some(body) = disk.load(hash, op_key) {
                from_disk = true;
                let cost = body.len();
                return (Ok(Arc::new(body)), cost, class);
            }
        }
        eel_obs::counter(&format!("serve.ops.{metric_op}.computed")).add(1);
        let computed = compute().map(Arc::new);
        if let (Some(disk), Ok(body)) = (&shared.disk, &computed) {
            // Write-through: the entry survives a restart even if it is
            // never evicted. Errors stay memory-only — they may be
            // transient (an unreadable path) and are cheap to rebuild.
            disk.store(hash, op_key, body);
        }
        let cost = match &computed {
            Ok(body) => body.len(),
            Err(msg) => msg.len(),
        };
        (computed, cost, class)
    });
    demote_evicted(shared, evicted);
    if hit {
        eel_obs::counter!("serve.cache.hit").add(1);
    } else {
        eel_obs::counter!("serve.cache.miss").add(1);
    }
    let tier = if hit {
        CacheTier::Memory
    } else if from_disk {
        CacheTier::Disk
    } else {
        CacheTier::Computed
    };
    match result {
        Ok(body) => Response::Ok {
            tier,
            body: body.to_vec(),
            fragments: None,
            discovery: None,
            machine: None,
        },
        Err(msg) => Response::Err(msg),
    }
}

/// Resolves the per-request analysis thread count: the configured value,
/// or — when 0 (auto) — the cores split evenly over the requests
/// currently executing, so intra-request parallelism fills idle cores
/// without oversubscribing a busy pipeline.
fn analysis_threads(shared: &Shared) -> usize {
    match shared.config.analysis_threads {
        0 => {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            let active = shared.active_requests.load(Ordering::SeqCst).max(1);
            (cores / active).max(1)
        }
        n => n,
    }
}

/// Loads + analyzes an image through the analysis cache, so the five ops
/// over one executable share a single discovery pass.
fn analyze(shared: &Shared, hash: u64, bytes: &[u8]) -> Result<Arc<Analysis>, String> {
    let (analysis, _hit) = shared.analyses.get_or_compute(hash, || {
        let computed = Image::from_bytes(bytes)
            .map_err(|e| format!("bad WEF image: {e}"))
            .and_then(|image| {
                Analysis::compute(Arc::new(image)).map_err(|e| format!("analysis failed: {e}"))
            })
            .map(Arc::new);
        let cost = match &computed {
            Ok(a) => a.approx_bytes(),
            Err(msg) => msg.len(),
        };
        (computed, cost)
    });
    analysis
}

/// Renders the metrics registry as stable `kind name value` lines — what
/// the `metrics` op returns and eelctl prints.
fn render_metrics() -> String {
    let mut snap = eel_obs::MetricsSnapshot::capture();
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&format!("counter {} {}\n", c.name, c.value));
    }
    for g in &snap.gauges {
        out.push_str(&format!("gauge {} {}\n", g.name, g.value));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram {name} count={} sum={} max={}\n",
            h.count, h.sum, h.max
        ));
    }
    out
}
