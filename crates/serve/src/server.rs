//! The eel-serve daemon: acceptor, bounded queue, worker pool, caches.
//!
//! One acceptor thread pulls connections off the listener and pushes them
//! onto a bounded queue; when the queue is full it answers [`Response::Busy`]
//! itself and drops the connection — explicit backpressure instead of an
//! unbounded backlog. A pool of worker threads (default: one per core)
//! drains the queue; a request that waited in the queue longer than the
//! configured timeout is answered with a timeout error rather than served
//! stale. Results flow through two content-addressed, single-flight LRU
//! caches: one for [`Analysis`] artifacts keyed by image hash, one for
//! rendered operation results keyed by (image hash, op).
//!
//! With `cache_dir` set the result cache grows a disk tier
//! ([`crate::disk::DiskCache`]): memory misses consult the directory
//! before computing (a hit is promoted back into the LRU), computed
//! results spill through, and LRU evictions demote instead of discard —
//! so a daemon restart serves warm from disk with zero re-analysis.
//!
//! Everything is instrumented through eel-obs: `serve.requests`,
//! `serve.cache.hit` / `serve.cache.miss` (the *memory* tier),
//! `serve.cache.disk.{hit,miss,write,evict,corrupt}` and the
//! `serve.cache.disk.bytes` gauge (the disk tier), `serve.busy`,
//! `serve.errors`, `serve.timeouts`, the `serve.queue.depth` gauge,
//! per-op `serve.latency.<op>` histograms (microseconds) plus
//! `serve.latency.disk.{load,spill}`, and per-op
//! `serve.ops.<op>.computed` counters that count *actual* computations —
//! the single-flight and warm-restart evidence.

use crate::cache::{content_hash, SingleFlightLru};
use crate::disk::DiskCache;
use crate::ops::{run_op, CACHED_OPS};
use crate::proto::{read_frame, write_frame, CacheTier, Payload, Request, Response};
use eel_core::Analysis;
use eel_exe::Image;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Bounded queue depth; connections beyond this get [`Response::Busy`].
    pub queue_depth: usize,
    /// LRU byte budget, split evenly between the analysis and result
    /// caches.
    pub cache_bytes: usize,
    /// Per-request budget: both the socket read/write timeout and the
    /// maximum time a request may wait in the queue.
    pub timeout: Duration,
    /// Directory for the on-disk result-cache spill tier; `None` (the
    /// default) keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the disk tier (only meaningful with `cache_dir`);
    /// a janitor prunes the directory oldest-first past this.
    pub disk_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            timeout: Duration::from_secs(10),
            cache_dir: None,
            disk_bytes: 256 << 20,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }
    }
}

type CachedAnalysis = Result<Arc<Analysis>, String>;
type CachedResult = Result<Arc<Vec<u8>>, String>;

struct Shared {
    config: ServerConfig,
    local_addr: SocketAddr,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    stop: AtomicBool,
    analyses: SingleFlightLru<u64, CachedAnalysis>,
    results: SingleFlightLru<(u64, String), CachedResult>,
    /// The optional spill tier under the results cache.
    disk: Option<DiskCache>,
}

/// A running eel-serve daemon. Dropping it shuts it down and joins every
/// thread.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the acceptor and worker threads.
    ///
    /// If eel-obs is off, summary mode is switched on: a service without
    /// its metrics is flying blind, and the `metrics` op must have
    /// something to render.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if !eel_obs::enabled() {
            eel_obs::set_mode(eel_obs::Mode::Summary);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = config.effective_workers();
        let half = (config.cache_bytes / 2).max(1);
        let disk = config
            .cache_dir
            .as_ref()
            .map(|dir| DiskCache::open(dir, config.disk_bytes));
        let shared = Arc::new(Shared {
            local_addr,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            analyses: SingleFlightLru::new(half),
            results: SingleFlightLru::new(half),
            disk,
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eelserved-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(worker_count);
        for k in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eelserved-worker-{k}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Signals shutdown: stops accepting, lets workers drain the queue,
    /// wakes everything up. Does not block; pair with [`Server::wait`] or
    /// drop.
    pub fn shutdown(&self) {
        self.shared.request_stop();
    }

    /// Blocks until every thread has exited (after [`Server::shutdown`],
    /// a client `shutdown` request, or a fatal accept error).
    ///
    /// # Panics
    ///
    /// Propagates a worker or acceptor panic, so tests fail loudly if a
    /// thread died.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn request_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the acceptor's blocking accept() with a throwaway
            // connection; it re-checks the flag on wake.
            let _ = TcpStream::connect(self.local_addr);
        }
        self.queue_ready.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = listener.accept();
        if shared.stopping() {
            return;
        }
        let Ok((stream, _)) = conn else {
            // Fatal listener error: stop the whole server rather than
            // spinning on a dead socket.
            shared.request_stop();
            return;
        };
        let _ = stream.set_read_timeout(Some(shared.config.timeout));
        let _ = stream.set_write_timeout(Some(shared.config.timeout));
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            eel_obs::counter!("serve.busy").add(1);
            // Backpressure costs no worker time: a throwaway thread
            // writes BUSY, then drains the unread request before closing
            // — closing with bytes still in the receive buffer would RST
            // the connection and race the client out of the BUSY frame.
            std::thread::spawn(move || write_then_drain(stream, &Response::Busy));
            continue;
        }
        queue.push_back((stream, Instant::now()));
        eel_obs::gauge("serve.queue.depth").set(queue.len() as i64);
        drop(queue);
        shared.queue_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        let (stream, enqueued) = loop {
            if let Some(item) = queue.pop_front() {
                eel_obs::gauge("serve.queue.depth").set(queue.len() as i64);
                break item;
            }
            if shared.stopping() {
                return;
            }
            queue = shared.queue_ready.wait(queue).expect("queue lock poisoned");
        };
        drop(queue);
        serve_connection(shared, stream, enqueued);
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, enqueued: Instant) {
    let waited = enqueued.elapsed();
    if waited >= shared.config.timeout {
        eel_obs::counter!("serve.timeouts").add(1);
        let resp = Response::Err(format!(
            "request timed out after {}ms in queue",
            waited.as_millis()
        ));
        // The request was never read; drain it before closing so the
        // reply is not lost to a connection reset.
        write_then_drain(stream, &resp);
        return;
    }
    let resp = match read_frame(&mut stream).and_then(|b| Request::decode(&b)) {
        Ok(req) => handle_request(shared, &req),
        Err(e) => Response::Err(format!("bad request: {e}")),
    };
    if matches!(resp, Response::Err(_)) {
        eel_obs::counter!("serve.errors").add(1);
    }
    let _ = write_frame(&mut stream, &resp.encode());
}

fn handle_request(shared: &Shared, req: &Request) -> Response {
    eel_obs::counter!("serve.requests").add(1);
    let started = Instant::now();
    let resp = match req.op.as_str() {
        "ping" => Response::Ok {
            tier: CacheTier::Computed,
            body: b"pong".to_vec(),
        },
        "metrics" => Response::Ok {
            tier: CacheTier::Computed,
            body: render_metrics().into_bytes(),
        },
        "shutdown" => {
            shared.request_stop();
            Response::Ok {
                tier: CacheTier::Computed,
                body: b"shutting down".to_vec(),
            }
        }
        op if CACHED_OPS.contains(&op) => cached_op(shared, op, &req.payload),
        other => Response::Err(format!("unknown op {other:?}")),
    };
    eel_obs::histogram(&format!("serve.latency.{}", req.op))
        .record(started.elapsed().as_micros() as u64);
    resp
}

fn cached_op(shared: &Shared, op: &str, payload: &Payload) -> Response {
    let bytes = match payload {
        Payload::Inline(b) => b.clone(),
        Payload::Path(p) => match std::fs::read(p) {
            Ok(b) => b,
            Err(e) => return Response::Err(format!("cannot read {p}: {e}")),
        },
    };
    let hash = content_hash(&bytes);
    let key = (hash, op.to_string());
    let mut from_disk = false;
    let (result, hit, evicted) = shared.results.get_or_compute_with_evicted(key, || {
        // Memory missed; the disk tier gets a chance before we pay for a
        // computation. A disk hit is promoted into the LRU by virtue of
        // being this closure's return value.
        if let Some(disk) = &shared.disk {
            if let Some(body) = disk.load(hash, op) {
                from_disk = true;
                let cost = body.len();
                return (Ok(Arc::new(body)), cost);
            }
        }
        eel_obs::counter(&format!("serve.ops.{op}.computed")).add(1);
        let computed = analyze(shared, hash, &bytes).and_then(|a| run_op(op, &a).map(Arc::new));
        if let (Some(disk), Ok(body)) = (&shared.disk, &computed) {
            // Write-through: the entry survives a restart even if it is
            // never evicted. Errors stay memory-only — they may be
            // transient (an unreadable path) and are cheap to rebuild.
            disk.store(hash, op, body);
        }
        let cost = match &computed {
            Ok(body) => body.len(),
            Err(msg) => msg.len(),
        };
        (computed, cost)
    });
    // Demote this insertion's LRU victims to disk (outside the cache
    // lock) instead of discarding the work. Content addressing makes
    // this a cheap existence check for anything already spilled.
    if let Some(disk) = &shared.disk {
        for ((h, evicted_op), value) in evicted {
            if let Ok(body) = value {
                disk.store(h, &evicted_op, &body);
            }
        }
    }
    if hit {
        eel_obs::counter!("serve.cache.hit").add(1);
    } else {
        eel_obs::counter!("serve.cache.miss").add(1);
    }
    let tier = if hit {
        CacheTier::Memory
    } else if from_disk {
        CacheTier::Disk
    } else {
        CacheTier::Computed
    };
    match result {
        Ok(body) => Response::Ok {
            tier,
            body: body.to_vec(),
        },
        Err(msg) => Response::Err(msg),
    }
}

/// Loads + analyzes an image through the analysis cache, so the five ops
/// over one executable share a single discovery pass.
fn analyze(shared: &Shared, hash: u64, bytes: &[u8]) -> Result<Arc<Analysis>, String> {
    let (analysis, _hit) = shared.analyses.get_or_compute(hash, || {
        let computed = Image::from_bytes(bytes)
            .map_err(|e| format!("bad WEF image: {e}"))
            .and_then(|image| {
                Analysis::compute(Arc::new(image)).map_err(|e| format!("analysis failed: {e}"))
            })
            .map(Arc::new);
        let cost = match &computed {
            Ok(a) => a.approx_bytes(),
            Err(msg) => msg.len(),
        };
        (computed, cost)
    });
    analysis
}

/// Replies on a connection whose request was never read, then drains the
/// unread bytes before closing. Closing with data still in the receive
/// buffer makes the kernel send RST, which can discard the reply before
/// the client reads it — this is how BUSY and queue-timeout replies stay
/// deliverable.
fn write_then_drain(mut stream: TcpStream, resp: &Response) {
    use std::io::Read as _;
    let _ = write_frame(&mut stream, &resp.encode());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Renders the metrics registry as stable `kind name value` lines — what
/// the `metrics` op returns and eelctl prints.
fn render_metrics() -> String {
    let mut snap = eel_obs::MetricsSnapshot::capture();
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&format!("counter {} {}\n", c.name, c.value));
    }
    for g in &snap.gauges {
        out.push_str(&format!("gauge {} {}\n", g.name, g.value));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram {name} count={} sum={} max={}\n",
            h.count, h.sum, h.max
        ));
    }
    out
}
