//! # eel-serve: a concurrent binary-analysis service
//!
//! EEL (Larus & Schnarr, PLDI 1995) is a *library*: every tool links it
//! and re-runs the expensive parts — image loading, §3.1 routine
//! discovery, CFG construction — from scratch. This crate wraps the
//! library in a long-running daemon so those artifacts are computed once
//! and shared: a std-only TCP server ([`Server`]) with a worker pool, a
//! bounded request queue with explicit [`Response::Busy`] backpressure,
//! and a content-addressed, single-flight LRU cache keyed by (hash of the
//! WEF bytes, operation), with an optional on-disk spill tier
//! ([`DiskCache`], `ServerConfig::cache_dir`) so restarts and evictions
//! re-read results instead of re-analyzing. Responses carry a
//! [`CacheTier`] telling the client which tier served them.
//!
//! Batch clients can open a **pipelined session** (protocol version 2,
//! [`Client::open_session`] / [`Client::batch`]): one connection
//! carries many tagged requests, answered out of completion order
//! under a server-granted in-flight window, with per-frame
//! [`Response::Busy`] on overflow. Within one request, per-routine CFG
//! builds fan out across threads ([`run_op_with`],
//! `ServerConfig::analysis_threads`), byte-for-byte identical to the
//! sequential result.
//!
//! Below the whole-image cache sits a **per-routine fragment tier**
//! ([`FragmentTier`], [`run_op_fragments`]): each analysis op
//! decomposes into per-routine fragments keyed by a position-independent
//! content key over the routine's own bytes, so a near-duplicate image —
//! one routine changed out of N — recomputes only the changed routine
//! and stitches the rest from cache, byte-identical to a cold run.
//! Computed responses report the reuse as `fragments: Some((hits,
//! total))` ([`Response::Ok`]).
//!
//! Operations: `disasm`, `cfg-summary`, `liveness`, `stat`,
//! `instrument` (qpt-style edge-count instrumentation returning the
//! edited executable), plus the control ops `ping`, `metrics` (renders
//! the eel-obs registry), and `shutdown`. The `eelserved` binary runs the
//! daemon; `eelctl` (in eel-tools) is the command-line client.
//!
//! ```
//! use eel_serve::{CacheTier, Client, Payload, Response, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let client = Client::connect(server.local_addr().to_string());
//!
//! let image = eel_cc::compile_str("fn main() { return 3; }", &eel_cc::Options::default())?;
//! let wef = image.to_bytes();
//!
//! let first = client.op("stat", Payload::Inline(wef.clone()))?;
//! let second = client.op("stat", Payload::Inline(wef))?;
//! match (first, second) {
//!     (
//!         Response::Ok { tier: CacheTier::Computed, .. },
//!         Response::Ok { tier: CacheTier::Memory, .. },
//!     ) => {}
//!     other => panic!("expected computed then memory hit, got {other:?}"),
//! }
//!
//! server.shutdown();
//! server.wait();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The wire format is specified in `docs/PROTOCOL.md`, the crate's place
//! in the pipeline in `docs/ARCHITECTURE.md`, and running the daemon in
//! production in `docs/OPERATIONS.md`.

mod cache;
mod client;
mod cluster;
mod disk;
mod ops;
mod proto;
mod reactor;
mod server;

pub use cache::{content_hash, CostClass, SingleFlightLru};
pub use client::{Backoff, Client, Session};
pub use cluster::{ClusterClient, VNODES_PER_SHARD};
pub use disk::{DiskCache, DISK_FORMAT_VERSION};
pub use ops::{
    recompute_cost, run_op, run_op_fragments, run_op_with, FragmentStats, FragmentTier,
    NoFragments, CACHED_OPS,
};
pub use proto::{
    read_frame, write_frame, CacheTier, Discovery, Payload, Request, Response, SessionFrame,
    SessionReply, MAX_FRAME, SESSION_VERSION, VERSION,
};
pub use server::{Server, ServerConfig};
