//! # eel-serve: a concurrent binary-analysis service
//!
//! EEL (Larus & Schnarr, PLDI 1995) is a *library*: every tool links it
//! and re-runs the expensive parts — image loading, §3.1 routine
//! discovery, CFG construction — from scratch. This crate wraps the
//! library in a long-running daemon so those artifacts are computed once
//! and shared: a std-only TCP server ([`Server`]) with a worker pool, a
//! bounded request queue with explicit [`Response::Busy`] backpressure,
//! and a content-addressed, single-flight LRU cache keyed by (hash of the
//! WEF bytes, operation).
//!
//! Operations: `disasm`, `cfg-summary`, `liveness`, `stat`,
//! `instrument` (qpt-style edge-count instrumentation returning the
//! edited executable), plus the control ops `ping`, `metrics` (renders
//! the eel-obs registry), and `shutdown`. The `eelserved` binary runs the
//! daemon; `eelctl` (in eel-tools) is the command-line client.
//!
//! ```
//! use eel_serve::{Client, Payload, Response, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let client = Client::connect(server.local_addr().to_string());
//!
//! let image = eel_cc::compile_str("fn main() { return 3; }", &eel_cc::Options::default())?;
//! let wef = image.to_bytes();
//!
//! let first = client.op("stat", Payload::Inline(wef.clone()))?;
//! let second = client.op("stat", Payload::Inline(wef))?;
//! match (first, second) {
//!     (Response::Ok { cached: false, .. }, Response::Ok { cached: true, .. }) => {}
//!     other => panic!("expected miss then hit, got {other:?}"),
//! }
//!
//! server.shutdown();
//! server.wait();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod client;
mod ops;
mod proto;
mod server;

pub use cache::{content_hash, SingleFlightLru};
pub use client::Client;
pub use ops::{run_op, CACHED_OPS};
pub use proto::{read_frame, write_frame, Payload, Request, Response, MAX_FRAME, VERSION};
pub use server::{Server, ServerConfig};
