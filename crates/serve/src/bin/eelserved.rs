//! `eelserved` — the eel-serve analysis daemon.
//!
//! ```text
//! eelserved [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--cache-bytes N] [--timeout-ms N]
//!           [--cache-dir PATH] [--disk-bytes N]
//!           [--session-window N] [--session-workers N]
//!           [--analysis-threads N] [--write-hwm N]
//! ```
//!
//! Binds (default `127.0.0.1:7099`), prints a `listening on` line once
//! ready, then serves until a client sends `shutdown` (or the process is
//! killed). `--cache-dir` enables the on-disk spill tier: results survive
//! restarts and LRU evictions, pruned oldest-first past `--disk-bytes`.
//! `EEL_OBS` selects the observability mode; when unset the server forces
//! summary mode so the `metrics` op has data. Flags, sizing guidance, and
//! the metrics reference live in `docs/OPERATIONS.md`.

use eel_serve::{Server, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: eelserved [--addr HOST:PORT] [--workers N] [--queue N] \
[--cache-bytes N] [--timeout-ms N] [--cache-dir PATH] [--disk-bytes N] \
[--session-window N] [--session-workers N] [--analysis-threads N] [--write-hwm N]";

fn main() -> ExitCode {
    eel_obs::init_from_env();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7099".into(),
        ..ServerConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" => {
                println!("eelserved {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--addr" | "--workers" | "--queue" | "--cache-bytes" | "--timeout-ms"
            | "--cache-dir" | "--disk-bytes" | "--session-window" | "--session-workers"
            | "--analysis-threads" | "--write-hwm" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("eelserved: {flag} needs a value");
                    return ExitCode::FAILURE;
                };
                let numeric = value.parse::<u64>();
                match (flag, numeric) {
                    ("--addr", _) => config.addr = value.clone(),
                    ("--cache-dir", _) => config.cache_dir = Some(value.into()),
                    ("--workers", Ok(n)) => config.workers = n as usize,
                    ("--queue", Ok(n)) => config.queue_depth = n.max(1) as usize,
                    ("--cache-bytes", Ok(n)) => config.cache_bytes = n as usize,
                    ("--timeout-ms", Ok(n)) => config.timeout = Duration::from_millis(n),
                    ("--disk-bytes", Ok(n)) => config.disk_bytes = n,
                    ("--session-window", Ok(n)) => config.session_window = n.max(1) as u32,
                    ("--session-workers", Ok(n)) => config.session_workers = n as usize,
                    ("--analysis-threads", Ok(n)) => config.analysis_threads = n as usize,
                    ("--write-hwm", Ok(n)) => config.write_hwm = n.max(1) as usize,
                    (_, Err(_)) => {
                        eprintln!("eelserved: {flag} needs a number, got {value:?}");
                        return ExitCode::FAILURE;
                    }
                    _ => unreachable!(),
                }
            }
            other => {
                eprintln!("eelserved: unexpected argument {other:?} ({USAGE})");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eelserved: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed eagerly so scripts (and CI) can wait for readiness.
    println!("eelserved: listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    eprintln!("eelserved: shut down cleanly");
    ExitCode::SUCCESS
}
