//! # eel-bench: the paper's experiments, regenerated
//!
//! One function per table/figure/in-text measurement from the paper's
//! evaluation (see DESIGN.md's experiment index). Each returns structured
//! results; the `report` binary prints them as paper-vs-measured tables
//! (the source of EXPERIMENTS.md), and the Criterion benches measure the
//! wall-clock side.

use eel_cc::Personality;
use eel_core::{CfgStats, Executable, JumpResolution};
use eel_emu::run_image;
use eel_exe::Image;
use eel_progen::{suite_sized, Workload};
use eel_tools::{active_memory, blizzard, elsie, qpt1, qpt2};

/// Runs `f` under an eel-obs span and returns its wall time in
/// milliseconds, read back from the recorded span. Recording is forced on
/// for the duration, so measurements work however `EEL_OBS` is set; the
/// nested pipeline spans (CFG build, liveness, layout) land in the global
/// collector for the report's phase-timing section.
fn obs_timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let was = eel_obs::mode();
    if was == eel_obs::Mode::Off {
        eel_obs::set_mode(eel_obs::Mode::Summary);
    }
    let out = {
        let _span = eel_obs::span(name);
        f()
    };
    let ms = eel_obs::snapshot_spans()
        .iter()
        .rev()
        .find(|s| s.name == name)
        .map_or(0.0, |s| s.dur_ns as f64 / 1e6);
    eel_obs::set_mode(was);
    (out, ms)
}

/// Compiles the whole suite under one personality.
fn compiled_suite(personality: Personality, scale: u32) -> Vec<(Workload, Image)> {
    suite_sized(scale)
        .into_iter()
        .map(|w| {
            let image = eel_progen::compile(&w, personality).expect("suite compiles");
            (w, image)
        })
        .collect()
}

// ===================================================================
// E-IJ: indirect-jump analyzability (§3.3 in-text)
// ===================================================================

/// Per-configuration indirect-jump statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectJumpStats {
    /// Compiler personality measured.
    pub personality: &'static str,
    /// Static instructions examined.
    pub instructions: u64,
    /// Routines analyzed.
    pub routines: u64,
    /// Indirect jumps found.
    pub indirect_jumps: u64,
    /// Jumps resolved to dispatch tables.
    pub tables: u64,
    /// Jumps resolved to literals.
    pub literals: u64,
    /// Unanalyzable jumps (run-time translation).
    pub unanalyzable: u64,
}

/// Reproduces the paper's measurement: gcc-like code has no unanalyzable
/// indirect jumps (0 of 1,325 in the paper); SunPro-like code's
/// unanalyzable jumps all come from frame-popping tail calls (138 of
/// 1,244).
pub fn exp_indirect_jumps() -> Vec<IndirectJumpStats> {
    let mut out = Vec::new();
    for (personality, name) in [
        (Personality::Gcc, "gcc-like"),
        (Personality::SunPro, "sunpro-like"),
    ] {
        let mut stats = IndirectJumpStats {
            personality: name,
            instructions: 0,
            routines: 0,
            indirect_jumps: 0,
            tables: 0,
            literals: 0,
            unanalyzable: 0,
        };
        for (_, image) in compiled_suite(personality, 1) {
            stats.instructions += (image.text.len() / 4) as u64;
            let mut exec = Executable::from_image(image).expect("valid image");
            exec.read_contents().expect("analyzable");
            for id in exec.all_routine_ids() {
                stats.routines += 1;
                let cfg = exec.build_cfg(id).expect("cfg");
                for (_, res) in cfg.indirect_jumps() {
                    stats.indirect_jumps += 1;
                    match res {
                        JumpResolution::Table { .. } => stats.tables += 1,
                        JumpResolution::Literal { .. } => stats.literals += 1,
                        JumpResolution::Unknown => stats.unanalyzable += 1,
                    }
                }
            }
        }
        out.push(stats);
    }
    out
}

/// The same measurement over a generated corpus of `n` random programs —
/// a larger population, closer in spirit to the paper's 11,975-routine
/// SPEC92 sweep.
pub fn exp_indirect_jumps_corpus(n: u64) -> Vec<IndirectJumpStats> {
    let mut out = Vec::new();
    for (personality, name) in [
        (Personality::Gcc, "gcc-like corpus"),
        (Personality::SunPro, "sunpro-like corpus"),
    ] {
        let mut stats = IndirectJumpStats {
            personality: name,
            instructions: 0,
            routines: 0,
            indirect_jumps: 0,
            tables: 0,
            literals: 0,
            unanalyzable: 0,
        };
        for seed in 0..n {
            let program = eel_progen::random_program(seed, &eel_progen::GenConfig::default());
            let options = eel_cc::Options {
                personality,
                ..Default::default()
            };
            let Ok(image) = eel_cc::compile_ast(&program, &options) else {
                continue;
            };
            stats.instructions += (image.text.len() / 4) as u64;
            let mut exec = Executable::from_image(image).expect("valid image");
            exec.read_contents().expect("analyzable");
            for id in exec.all_routine_ids() {
                stats.routines += 1;
                let cfg = exec.build_cfg(id).expect("cfg");
                for (_, res) in cfg.indirect_jumps() {
                    stats.indirect_jumps += 1;
                    match res {
                        JumpResolution::Table { .. } => stats.tables += 1,
                        JumpResolution::Literal { .. } => stats.literals += 1,
                        JumpResolution::Unknown => stats.unanalyzable += 1,
                    }
                }
            }
        }
        out.push(stats);
    }
    out
}

// ===================================================================
// E-BB / E-UE: CFG census (§5 footnote; §3.3 in-text 15–20%)
// ===================================================================

/// Whole-suite CFG census.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CfgCensus {
    /// EEL block/edge statistics summed over the suite.
    pub stats: CfgStats,
    /// "Old-style" block count (leaders only, no delay/surrogate/virtual
    /// blocks) for the 26,912-vs-15,441 comparison.
    pub old_style_blocks: usize,
}

/// Counts EEL's normalized blocks vs old-style linear blocks.
pub fn exp_cfg_census() -> CfgCensus {
    let mut census = CfgCensus::default();
    for (_, image) in compiled_suite(Personality::Gcc, 1) {
        let mut exec = Executable::from_image(image).expect("valid image");
        exec.read_contents().expect("analyzable");
        for id in exec.all_routine_ids() {
            let cfg = exec.build_cfg(id).expect("cfg");
            let s = cfg.stats();
            census.stats.accumulate(&s);
            // Old-style: normal blocks only (qpt's definition, which did
            // not split at calls or materialize delay slots). EEL blocks
            // end at calls, so merge call-separated runs back together:
            // old blocks ≈ normal blocks − call surrogates.
            census.old_style_blocks += s.normal_blocks.saturating_sub(s.call_surrogate_blocks);
        }
    }
    census
}

// ===================================================================
// E-OBJ: object allocation / instruction sharing (§5 in-text)
// ===================================================================

/// Allocation statistics over the suite.
pub fn exp_allocations() -> eel_core::AllocStats {
    let mut total = eel_core::AllocStats::default();
    for (_, image) in compiled_suite(Personality::Gcc, 1) {
        let mut exec = Executable::from_image(image).expect("valid image");
        exec.read_contents().expect("analyzable");
        for id in exec.all_routine_ids() {
            let _ = exec.build_cfg(id).expect("cfg");
        }
        let s = exec.alloc_stats();
        total.instruction_objects += s.instruction_objects;
        total.instruction_requests += s.instruction_requests;
        total.shared_hits += s.shared_hits;
    }
    total
}

// ===================================================================
// E-LOC: description conciseness (§4 in-text)
// ===================================================================

/// Line counts for the spawn conciseness comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnLoc {
    /// Our SPARC description (paper: 145).
    pub sparc_desc: usize,
    /// Our MIPS description (paper: 128).
    pub mips_desc: usize,
    /// Our Alpha description (paper: 138).
    pub alpha_desc: usize,
    /// Handwritten machine-specific layer (paper: 2,268).
    pub handwritten: usize,
    /// spawn-generated output lines (paper: 6,178).
    pub generated: usize,
    /// spawn-generated Rust for the MIPS description — the second-ISA
    /// data point: there is no handwritten MIPS layer to compare
    /// against, so the ratio is generated-vs-description alone.
    pub mips_generated: usize,
}

/// Measures description vs handwritten vs generated code sizes.
pub fn exp_spawn_loc() -> SpawnLoc {
    let machine = eel_spawn::sparc_machine().expect("bundled description");
    let generated = eel_spawn::generate_rust(&machine).lines().count();
    // The handwritten layer is eel-isa's decode/encode/class/disasm
    // modules (its semantics module is the emulator's, counted separately
    // in the paper too).
    let handwritten = [
        include_str!("../../isa/src/decode.rs"),
        include_str!("../../isa/src/encode.rs"),
        include_str!("../../isa/src/class.rs"),
        include_str!("../../isa/src/disasm.rs"),
        include_str!("../../isa/src/insn.rs"),
    ]
    .iter()
    .map(|s| eel_tools::source_lines(s))
    .sum();
    let mips = eel_spawn::mips_machine().expect("bundled description");
    let mips_generated = eel_spawn::generate_rust(&mips).lines().count();
    SpawnLoc {
        sparc_desc: eel_spawn::description_lines(eel_spawn::SPARC),
        mips_desc: eel_spawn::description_lines(eel_spawn::MIPS),
        alpha_desc: eel_spawn::description_lines(eel_spawn::ALPHA),
        handwritten,
        generated,
        mips_generated,
    }
}

// ===================================================================
// T1: Table 1 — qpt vs qpt2 on the spim workload
// ===================================================================

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Tool name.
    pub tool: &'static str,
    /// Tool source size (non-comment lines) — the engineering cost axis.
    pub tool_lines: usize,
    /// Instrumentation wall time in milliseconds.
    pub instrument_ms: f64,
    /// Input text+data bytes.
    pub input_bytes: usize,
    /// Output (instrumented) text+data bytes.
    pub output_bytes: usize,
    /// Dynamic slowdown of the instrumented program (cycles ratio).
    pub run_slowdown: f64,
}

/// Instruments the spim-like interpreter with both profilers and
/// measures tool size, instrumentation time, and output size/slowdown.
pub fn exp_table1() -> Vec<Table1Row> {
    let w = eel_progen::spim_like(2000);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compiles");
    let input_bytes = image.text.len() + image.data.len();
    let plain = run_image(&image).expect("baseline runs");

    let (p1, qpt1_ms) = obs_timed("bench.qpt1.instrument", || qpt1::instrument(image.clone()));
    let p1 = p1.expect("qpt1 instruments");
    let o1 = run_image(&p1.image).expect("qpt1 output runs");

    let (p2, qpt2_ms) = obs_timed("bench.qpt2.instrument", || {
        qpt2::instrument(image, qpt2::Granularity::Blocks)
    });
    let p2 = p2.expect("qpt2 instruments");
    let o2 = run_image(&p2.image).expect("qpt2 output runs");

    vec![
        Table1Row {
            tool: "qpt (ad-hoc)",
            tool_lines: eel_tools::source_lines(eel_tools::QPT1_SOURCE),
            instrument_ms: qpt1_ms,
            input_bytes,
            output_bytes: p1.image.text.len() + p1.image.data.len(),
            run_slowdown: o1.cycles as f64 / plain.cycles as f64,
        },
        Table1Row {
            tool: "qpt2 (EEL)",
            tool_lines: eel_tools::source_lines(eel_tools::QPT2_SOURCE),
            instrument_ms: qpt2_ms,
            input_bytes,
            output_bytes: p2.image.text.len() + p2.image.data.len(),
            run_slowdown: o2.cycles as f64 / plain.cycles as f64,
        },
    ]
}

// ===================================================================
// E-OVH: instrumentation overheads (§1/§5 in-text)
// ===================================================================

/// One tool-on-workload overhead measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: &'static str,
    /// Tool name.
    pub tool: &'static str,
    /// Dynamic-cycle ratio (instrumented / original).
    pub slowdown: f64,
}

/// Measures dynamic slowdowns for every tool over the suite (the paper's
/// "2–7× slowdown" Active Memory claim, and profiling overheads).
pub fn exp_overheads(scale: u32) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for (w, image) in compiled_suite(Personality::Gcc, scale) {
        let plain = run_image(&image).expect("baseline");
        let base = plain.cycles as f64;

        let p2 = qpt2::instrument(image.clone(), qpt2::Granularity::Edges).expect("qpt2");
        let c = run_image(&p2.image).expect("runs").cycles as f64;
        rows.push(OverheadRow {
            workload: w.name,
            tool: "qpt2-edges",
            slowdown: c / base,
        });

        let am = active_memory::instrument(image.clone()).expect("active memory");
        let c = am.run().expect("runs").cycles as f64;
        rows.push(OverheadRow {
            workload: w.name,
            tool: "active-memory",
            slowdown: c / base,
        });

        let bz = blizzard::instrument(image.clone()).expect("blizzard");
        let c = bz.run().expect("runs").cycles as f64;
        rows.push(OverheadRow {
            workload: w.name,
            tool: "blizzard",
            slowdown: c / base,
        });

        let el = elsie::instrument(image).expect("elsie");
        let mut m = eel_emu::Machine::load(&el.image).expect("loads");
        let c = m.run().expect("runs").cycles as f64;
        rows.push(OverheadRow {
            workload: w.name,
            tool: "elsie",
            slowdown: c / base,
        });
    }
    rows
}

// ===================================================================
// Ablations (DESIGN.md)
// ===================================================================

/// Result of one ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which design choice.
    pub name: &'static str,
    /// Metric with the feature ON.
    pub with_feature: f64,
    /// Metric with the feature OFF.
    pub without_feature: f64,
    /// What the metric is.
    pub metric: &'static str,
}

/// Runs the design-choice ablations from DESIGN.md.
pub fn exp_ablations() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let w = eel_progen::sc_like(4);

    // 1. Delay-slot folding (compiler fills slots; EEL folds back): edited
    //    size with filled vs nop-filled slots.
    let filled = eel_cc::compile_str(&w.source, &eel_cc::Options::default()).unwrap();
    let unfilled = eel_cc::compile_str(
        &w.source,
        &eel_cc::Options {
            fill_delay_slots: false,
            ..Default::default()
        },
    )
    .unwrap();
    let pass = |image: Image| -> usize {
        let mut exec = Executable::from_image(image).unwrap();
        exec.read_contents().unwrap();
        exec.write_edited().unwrap().text.len()
    };
    rows.push(AblationRow {
        name: "delay-slot folding (vs nop slots)",
        with_feature: pass(filled.clone()) as f64,
        without_feature: pass(unfilled) as f64,
        metric: "edited text bytes",
    });

    // 2. Register scavenging vs forced spilling in snippets.
    let overhead_with = {
        let p = qpt2::instrument(filled.clone(), qpt2::Granularity::Blocks).unwrap();
        run_image(&p.image).unwrap().cycles as f64
    };
    let overhead_without = {
        // Forcing every snippet register to spill: forbid all GPRs.
        let mut exec = Executable::from_image(filled.clone()).unwrap();
        exec.read_contents().unwrap();
        let base = exec.reserve_data(4 * 4096);
        let mut n = 0u32;
        for id in exec.all_routine_ids() {
            let mut cfg = exec.build_cfg(id).unwrap();
            let blocks: Vec<_> = cfg
                .blocks()
                .filter(|(_, b)| {
                    b.kind == eel_core::BlockKind::Normal && b.editable && !b.insns.is_empty()
                })
                .map(|(bid, _)| bid)
                .collect();
            for bid in blocks {
                let s = eel_core::Snippet::counter_increment(base + 4 * n).with_forced_spill();
                n += 1;
                cfg.add_code_at_block_start(bid, s).unwrap();
            }
            exec.install_edits(cfg).unwrap();
        }
        let image = exec.write_edited().unwrap();
        run_image(&image).unwrap().cycles as f64
    };
    let baseline = run_image(&filled).unwrap().cycles as f64;
    rows.push(AblationRow {
        name: "register scavenging (vs always-spill)",
        with_feature: overhead_with / baseline,
        without_feature: overhead_without / baseline,
        metric: "block-profiling slowdown",
    });

    // 3. Static jump resolution vs run-time translation. Dispatch tables
    //    *must* be analyzed statically (the table lives in the moved text,
    //    so no run-time target translation can save an unfound table —
    //    the same reason the paper's EEL treats slicing as load-bearing).
    //    The measurable cost of falling back to translation is the
    //    SunPro tail-call path: statically-resolvable transfers (gcc
    //    personality) relayout at ~1.0×, translated ones pay per transfer.
    let tail = eel_progen::li_like(40);
    let pass_ratio = |personality: Personality| -> f64 {
        let image = eel_progen::compile(&tail, personality).unwrap();
        let before = run_image(&image).unwrap().cycles as f64;
        let mut exec = Executable::from_image(image).unwrap();
        exec.read_contents().unwrap();
        // An observable (but text-neutral) edit defeats the clean
        // fast path, so write_edited actually relays out the text and
        // the translation cost is measurable.
        let _ = exec.reserve_data(4);
        let edited = exec.write_edited().unwrap();
        run_image(&edited).unwrap().cycles as f64 / before
    };
    rows.push(AblationRow {
        name: "static jump resolution (vs run-time translation)",
        with_feature: pass_ratio(Personality::Gcc),
        without_feature: pass_ratio(Personality::SunPro),
        metric: "pass-through slowdown",
    });

    // 4. Liveness-driven condition-code save (Blizzard's fast path): how
    //    many Active Memory sites needed the slow sequence.
    let am = active_memory::instrument(filled).unwrap();
    rows.push(AblationRow {
        name: "cc-liveness fast path (sites needing psr save)",
        with_feature: am.cc_saved_sites as f64,
        without_feature: am.sites as f64,
        metric: "slow-path sites / total sites",
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indirect_jump_shape_matches_paper() {
        let stats = exp_indirect_jumps();
        let gcc = &stats[0];
        let sunpro = &stats[1];
        assert!(gcc.indirect_jumps > 0);
        assert_eq!(gcc.unanalyzable, 0, "paper: 0 of 1,325 on gcc");
        assert!(sunpro.unanalyzable > 0, "paper: 138 of 1,244 on SunPro");
        // And the unanalyzable fraction is a minority, like 138/1,244.
        assert!(sunpro.unanalyzable * 2 < sunpro.indirect_jumps + sunpro.unanalyzable * 2);
    }

    #[test]
    fn cfg_census_shape_matches_paper() {
        let c = exp_cfg_census();
        assert!(
            c.stats.total_blocks() > c.old_style_blocks,
            "normalization adds blocks: {} vs {}",
            c.stats.total_blocks(),
            c.old_style_blocks
        );
        assert!(c.stats.delay_slot_blocks > 0);
        assert!(c.stats.call_surrogate_blocks > 0);
        let f = c.stats.uneditable_edge_fraction();
        assert!((0.05..0.5).contains(&f), "uneditable fraction {f}");
    }

    #[test]
    fn allocations_share() {
        let a = exp_allocations();
        assert!(a.sharing_factor() > 2.0, "{a:?}");
    }

    #[test]
    fn spawn_loc_shape() {
        let l = exp_spawn_loc();
        assert!(l.handwritten > 5 * l.sparc_desc, "{l:?}");
        assert!(l.generated > 2 * l.sparc_desc, "{l:?}");
    }

    #[test]
    fn table1_shape_matches_paper() {
        let rows = exp_table1();
        let (q1, q2) = (&rows[0], &rows[1]);
        // The paper's direction: the ad-hoc tool is bigger in code, the
        // EEL tool is slower to instrument (4.3× unoptimized, 2.4× at
        // -O2) and produces similar instrumented programs.
        assert!(q1.tool_lines > q2.tool_lines, "{q1:?} vs {q2:?}");
        assert!(
            q2.instrument_ms > q1.instrument_ms,
            "EEL does more analysis"
        );
        assert!(q1.run_slowdown > 1.0 && q2.run_slowdown > 1.0);
        assert!(q1.output_bytes > q1.input_bytes);
        assert!(q2.output_bytes > q2.input_bytes);
    }

    #[test]
    fn ablations_point_the_right_way() {
        let rows = exp_ablations();
        let folding = &rows[0];
        // Folding keeps edited code no larger than nop-slot code.
        assert!(
            folding.with_feature <= folding.without_feature * 1.05,
            "{folding:?}"
        );
        let scavenging = &rows[1];
        assert!(
            scavenging.with_feature < scavenging.without_feature,
            "spilling must cost more: {scavenging:?}"
        );
        let slicing = &rows[2];
        assert!(
            slicing.with_feature < slicing.without_feature,
            "run-time translation must cost more: {slicing:?}"
        );
    }
}
