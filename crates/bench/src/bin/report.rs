//! Regenerates every table and figure measurement from the paper's
//! evaluation as markdown (the source of EXPERIMENTS.md):
//!
//! ```text
//! cargo run --release -p eel-bench --bin report
//! ```

use eel_bench::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // Record every pipeline span/counter the experiments produce; the
    // closing section prints the aggregated phase timings.
    eel_obs::set_mode(eel_obs::Mode::Summary);

    println!("# EEL reproduction — experiment report (scale {scale})\n");

    // ---- T1 ----------------------------------------------------------
    println!("## Table 1 — qpt vs qpt2 (instrumenting the spim-like interpreter)\n");
    println!("Paper: qpt2 is the far smaller *tool* (6,276 vs 14,500 lines counting its");
    println!("EEL-independent code), but instruments 2.4–4.3× slower than ad-hoc qpt.\n");
    println!("| tool | tool lines | instrument (ms) | input bytes | output bytes | run slowdown |");
    println!("|---|---|---|---|---|---|");
    for r in exp_table1() {
        println!(
            "| {} | {} | {:.2} | {} | {} | {:.2}x |",
            r.tool, r.tool_lines, r.instrument_ms, r.input_bytes, r.output_bytes, r.run_slowdown
        );
    }

    // ---- E-IJ ----------------------------------------------------------
    println!("\n## §3.3 — indirect-jump analyzability\n");
    println!("Paper: SunOS/gcc: 0 unanalyzable of 1,325 indirect jumps (1,027,148 insts,");
    println!("11,975 routines). Solaris/SunPro: 138 of 1,244, all from frame-popping tail");
    println!("calls.\n");
    println!(
        "| config | instructions | routines | indirect jumps | tables | literals | unanalyzable |"
    );
    println!("|---|---|---|---|---|---|---|");
    for s in exp_indirect_jumps()
        .into_iter()
        .chain(exp_indirect_jumps_corpus(40 * scale as u64))
    {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            s.personality,
            s.instructions,
            s.routines,
            s.indirect_jumps,
            s.tables,
            s.literals,
            s.unanalyzable
        );
    }

    // ---- E-BB / E-UE -----------------------------------------------------
    println!("\n## §5 footnote — CFG census; §3.3 — uneditable fraction\n");
    println!("Paper: 26,912 EEL blocks vs 15,441 old-style (12,774 delay-slot, 920");
    println!("entry/exit, 1,942 call-surrogate blocks); 15–20% of edges/blocks uneditable.\n");
    let c = exp_cfg_census();
    println!("| metric | value |");
    println!("|---|---|");
    println!("| EEL blocks (all kinds) | {} |", c.stats.total_blocks());
    println!("| old-style blocks | {} |", c.old_style_blocks);
    println!("| delay-slot blocks | {} |", c.stats.delay_slot_blocks);
    println!("| entry/exit blocks | {} |", c.stats.entry_exit_blocks);
    println!(
        "| call-surrogate blocks | {} |",
        c.stats.call_surrogate_blocks
    );
    println!("| edges | {} |", c.stats.edges);
    println!(
        "| uneditable edge fraction | {:.1}% |",
        100.0 * c.stats.uneditable_edge_fraction()
    );
    println!(
        "| uneditable block fraction | {:.1}% |",
        100.0 * c.stats.uneditable_blocks as f64 / c.stats.total_blocks() as f64
    );

    // ---- E-OBJ ----------------------------------------------------------
    println!("\n## §5 — instruction-object sharing\n");
    println!("Paper: sharing reduces allocated instruction objects ~4×.\n");
    let a = exp_allocations();
    println!("| metric | value |");
    println!("|---|---|");
    println!("| instruction sites | {} |", a.instruction_requests);
    println!("| distinct objects allocated | {} |", a.instruction_objects);
    println!("| sharing factor | {:.2}x |", a.sharing_factor());

    // ---- E-LOC ----------------------------------------------------------
    println!("\n## §4 — machine-description conciseness\n");
    println!("Paper: SPARC 145 lines, MIPS 128, Alpha 138; handwritten 2,268; generated");
    println!("6,178.\n");
    let l = exp_spawn_loc();
    println!("| artifact | lines |");
    println!("|---|---|");
    println!("| sparc.spawn | {} |", l.sparc_desc);
    println!("| mips.spawn | {} |", l.mips_desc);
    println!("| alpha.spawn | {} |", l.alpha_desc);
    println!(
        "| handwritten machine layer (eel-isa) | {} |",
        l.handwritten
    );
    println!("| spawn-generated Rust (sparc) | {} |", l.generated);
    println!("| spawn-generated Rust (mips) | {} |", l.mips_generated);

    // ---- E-OVH ----------------------------------------------------------
    println!("\n## §1/§5 — instrumentation overheads (dynamic-cycle ratios)\n");
    println!("Paper: Active Memory achieves cache simulation at a 2–7× slowdown.\n");
    println!("| workload | tool | slowdown |");
    println!("|---|---|---|");
    for r in exp_overheads(scale) {
        println!("| {} | {} | {:.2}x |", r.workload, r.tool, r.slowdown);
    }

    // ---- ablations ---------------------------------------------------------
    println!("\n## Ablations (design choices from DESIGN.md)\n");
    println!("| design choice | with | without | metric |");
    println!("|---|---|---|---|");
    for r in exp_ablations() {
        println!(
            "| {} | {:.2} | {:.2} | {} |",
            r.name, r.with_feature, r.without_feature, r.metric
        );
    }

    // ---- pipeline phases -------------------------------------------------
    println!("\n## Pipeline phase timings (eel-obs, cumulative over this report)\n");
    println!("```text");
    print!("{}", eel_obs::render_summary());
    println!("```");
}
