//! `eelbench` — end-to-end service benchmarks.
//!
//! ```text
//! eelbench serve       [--images N] [--window N] [--out PATH]
//! eelbench edit        [--images N] [--out PATH]
//! eelbench incremental [--twins N] [--out PATH]
//! eelbench machines    [--out PATH]
//! eelbench cluster     [--images N] [--out PATH]
//! ```
//!
//! The `serve` subcommand measures the two session-era optimizations
//! against their baselines, on a live in-process eel-serve daemon:
//!
//! 1. **Transport**: a warm-cache batch of N distinct progen images,
//!    sent one-connection-per-request (v1) versus pipelined through a
//!    single session connection (v2). Warm cache isolates the transport
//!    cost the session amortizes: connect, frame, queue hop.
//! 2. **Analysis kernel**: the largest suite image's `disasm` and
//!    `instrument`, sequential versus the per-routine parallel fan-out
//!    (`run_op_with`, 0 = one thread per core).
//!
//! Every pipelined result is asserted byte-identical to its
//! per-connection twin, and every parallel result to its sequential
//! twin — a correctness smoke test first, a benchmark second; any
//! mismatch exits nonzero. Measurements land in `BENCH_serve.json`
//! (see `--out`) and a human summary goes to stdout.
//!
//! The `edit` subcommand measures the write path: N distinct progen
//! images each get the same counter-insertion script, cold (computed
//! on the server) and then warm (the `(image, script)` key hits the
//! memory cache). Warm bytes are asserted identical to cold bytes and
//! every edited image must still parse as a WEF. The `"edit"` section
//! is merged into the same `BENCH_serve.json`, replacing any previous
//! edit section while leaving `serve` results in place.
//!
//! The `incremental` subcommand measures the per-routine fragment
//! cache: the largest kernel image plus N near-duplicate twins (each
//! differing from the base in one ALU immediate inside one routine,
//! via `eel_progen::mutate_routine`). Every twin's `disasm` and
//! `instrument` run cold (no fragment tier) and incrementally (a tier
//! pre-warmed by the base image), asserted byte-identical, with the
//! fragment hit rate recorded. The `"incremental"` section is merged
//! into `BENCH_serve.json` like `"edit"`; run the subcommands in
//! serve → edit → incremental order when regenerating the whole file.
//!
//! The `cluster` subcommand measures what consistent-hash sharding
//! (`eel_serve::ClusterClient`) buys a cache-bound fleet: N distinct
//! images whose `instrument` results overflow one daemon's fixed
//! result-cache budget are driven through one shard and then through
//! three shards with the **same per-shard budget**. One shard LRU-
//! thrashes (every warm pass recomputes); three shards each own ~N/3
//! of the keyspace, their aggregate capacity holds the working set,
//! and warm passes hit memory — the cache-capacity aggregation effect
//! that makes warm throughput scale with shard count even on one core.
//! Every response is asserted byte-identical across topologies, and
//! the `"cluster"` section is merged into `BENCH_serve.json` like the
//! others.
//!
//! The `machines` subcommand measures the machine-dispatch seam: every
//! suite workload compiled as a SPARC/MIPS twin pair, every cached op
//! run through both pipelines (SPARC's editable-CFG path, MIPS's
//! spawn-derived generic path), both twins run under the emulator with
//! matching observable behavior, and the instrumented MIPS image
//! re-run to confirm counters don't perturb it. Per-op latencies for
//! both machines land in a `"machines"` section of the same file.

use eel_cc::Personality;
use eel_serve::{
    run_op_fragments, run_op_with, Client, FragmentTier, NoFragments, Payload, Request, Response,
    Server, ServerConfig,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_bench(&args[1..]),
        Some("edit") => edit_bench(&args[1..]),
        Some("incremental") => incremental_bench(&args[1..]),
        Some("machines") => machines_bench(&args[1..]),
        Some("cluster") => cluster_bench(&args[1..]),
        Some("-h") | Some("--help") => {
            println!("usage: eelbench serve       [--images N] [--window N] [--out PATH]");
            println!("       eelbench edit        [--images N] [--out PATH]");
            println!("       eelbench incremental [--twins N] [--out PATH]");
            println!("       eelbench machines    [--out PATH]");
            println!("       eelbench cluster     [--images N] [--out PATH]");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "eelbench: unknown subcommand {other:?} (try: eelbench serve | edit | \
                 incremental | machines | cluster)"
            );
            ExitCode::FAILURE
        }
    }
}

fn serve_bench(args: &[String]) -> ExitCode {
    let mut images = 64usize;
    let mut window = 16u32;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--images" => images = value.parse().unwrap_or(64),
            "--window" => window = value.parse().unwrap_or(16),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // -- Workloads: N distinct *small* seeded programs (distinct
    // hashes, so the batch exercises N separate cache entries). Small
    // on purpose: the transport benchmark measures the per-request
    // overhead sessions amortize (connect, teardown, frame round trip),
    // so the payload must not drown it in memcpy — with warm-cache
    // ~800KB default-config images, byte shoveling dominates both modes
    // and pipelining 16 of them in flight just thrashes the socket
    // buffers. Some seeds generate programs the compiler rejects
    // (expression depth); skip those and keep drawing until full.
    eprintln!("eelbench: compiling {images} seeded images...");
    let small = eel_progen::GenConfig {
        functions: 0,
        stmts_per_fn: 1,
        max_depth: 1,
        globals: 1,
        arrays: 0,
    };
    let mut wefs: Vec<Vec<u8>> = Vec::with_capacity(images);
    let mut seed = 0u64;
    while wefs.len() < images {
        let program = eel_progen::random_program(seed, &small);
        if let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            wefs.push(image.to_bytes());
        }
        seed += 1;
    }
    // The kernel benchmark wants the most routines it can get: the
    // per-routine fan-out scales with routine count, and the suite
    // workloads are tiny. A functions=16 generated program compiles to
    // ~1MB of text across ~19 routines. (functions >= 32 reliably
    // trips the compiler's expression-depth limit, hence the bounded
    // seed search with a suite fallback.)
    let many = eel_progen::GenConfig {
        functions: 16,
        ..eel_progen::GenConfig::default()
    };
    let largest = (0..8)
        .filter_map(|seed| {
            let program = eel_progen::random_program(seed, &many);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .chain(
            eel_progen::suite()
                .iter()
                .map(|w| eel_progen::compile(w, Personality::Gcc).expect("compile workload")),
        )
        .max_by_key(|image| image.text.len())
        .expect("suite non-empty");

    // -- Transport: per-connection vs pipelined session, warm cache.
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string())
        .with_timeout(Some(Duration::from_secs(120)));
    let requests: Vec<Request> = wefs
        .iter()
        .map(|wef| Request {
            op: "stat".into(),
            payload: Payload::Inline(wef.clone()),
        })
        .collect();

    eprintln!("eelbench: warming the result cache...");
    let warm: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| expect_body(client.request(r).expect("warm request")))
        .collect();

    // Best-of-3 per mode sheds scheduler noise; every repetition still
    // verifies its responses against the warm baseline.
    const REPS: usize = 3;
    eprintln!("eelbench: timing one-connection-per-request x{images}...");
    let mut single_ms = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        let singles: Vec<Vec<u8>> = requests
            .iter()
            .map(|r| expect_body(client.request(r).expect("single request")))
            .collect();
        single_ms = single_ms.min(started.elapsed().as_secs_f64() * 1e3);
        if singles != warm {
            eprintln!("eelbench: FAIL: per-connection responses differ from warm baseline");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("eelbench: timing pipelined session (window {window}) x{images}...");
    let mut session_ms = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        let batched = client.batch(&requests, window).expect("batch");
        session_ms = session_ms.min(started.elapsed().as_secs_f64() * 1e3);
        let batched: Vec<Vec<u8>> = batched.into_iter().map(expect_body).collect();
        if batched != warm {
            eprintln!("eelbench: FAIL: pipelined responses differ from per-connection responses");
            return ExitCode::FAILURE;
        }
    }
    let (_, _) = (server.shutdown(), server.wait());
    let session_speedup = single_ms / session_ms;
    eprintln!(
        "eelbench: transport: per-connection {single_ms:.1}ms, session {session_ms:.1}ms \
         ({session_speedup:.2}x)"
    );

    // -- Analysis kernel: sequential vs parallel on the largest image.
    let text_bytes = largest.text.len();
    let analysis =
        eel_core::Analysis::compute(std::sync::Arc::new(largest)).expect("analyze largest");
    // `0` (auto) would resolve to one thread on a one-core box and
    // never enter the fan-out; force at least two threads so the
    // parallel machinery (spawn, speculative builds, memo stitch) is
    // what actually gets measured.
    let par_threads = cores.max(2);
    let mut kernel = Vec::new();
    for op in ["disasm", "instrument"] {
        // Untimed warmup, then best-of-N to shed scheduler noise.
        const RUNS: usize = 5;
        let expected = run_op_with(op, &analysis, 1).expect(op);
        let mut seq_ms = f64::INFINITY;
        let mut par_ms = f64::INFINITY;
        for _ in 0..RUNS {
            let started = Instant::now();
            let sequential = run_op_with(op, &analysis, 1).expect(op);
            seq_ms = seq_ms.min(started.elapsed().as_secs_f64() * 1e3);
            let started = Instant::now();
            let parallel = run_op_with(op, &analysis, par_threads).expect(op);
            par_ms = par_ms.min(started.elapsed().as_secs_f64() * 1e3);
            if parallel != expected || sequential != expected {
                eprintln!("eelbench: FAIL: {op} parallel output differs from sequential");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "eelbench: kernel: {op} sequential {seq_ms:.2}ms, parallel({par_threads} threads) \
             {par_ms:.2}ms ({:.2}x on {cores} cores)",
            seq_ms / par_ms
        );
        kernel.push((op, seq_ms, par_ms));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str(&format!("  \"window\": {window},\n"));
    json.push_str("  \"transport\": {\n");
    json.push_str(&format!(
        "    \"per_connection_ms\": {single_ms:.2},\n    \"session_ms\": {session_ms:.2},\n    \
         \"speedup\": {session_speedup:.2}\n  }},\n"
    ));
    json.push_str("  \"kernel\": {\n");
    json.push_str(&format!("    \"text_bytes\": {text_bytes},\n"));
    json.push_str(&format!("    \"parallel_threads\": {par_threads},\n"));
    let parts: Vec<String> = kernel
        .iter()
        .map(|(op, seq, par)| {
            format!(
                "    \"{op}\": {{ \"sequential_ms\": {seq:.2}, \"parallel_ms\": {par:.2}, \
                 \"speedup\": {:.2} }}",
                seq / par
            )
        })
        .collect();
    json.push_str(&parts.join(",\n"));
    json.push_str("\n  }\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// Cold/warm write-path latency: the same counter-insertion script over
/// N distinct images, computed once and then served from the
/// `(image_hash, script_hash)` cache key.
fn edit_bench(args: &[String]) -> ExitCode {
    let mut images = 16usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--images" => images = value.parse().unwrap_or(16),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    // Distinct seeded programs → distinct image hashes → every cold
    // request is a genuine computation, not a dedupe join.
    eprintln!("eelbench: compiling {images} seeded images...");
    let config = eel_progen::GenConfig {
        functions: 2,
        stmts_per_fn: 4,
        max_depth: 2,
        globals: 1,
        arrays: 0,
    };
    let mut wefs: Vec<Vec<u8>> = Vec::with_capacity(images);
    let mut seed = 0u64;
    while wefs.len() < images {
        let program = eel_progen::random_program(seed, &config);
        if let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            wefs.push(image.to_bytes());
        }
        seed += 1;
    }
    let script = "counter main\napply\n";

    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string())
        .with_timeout(Some(Duration::from_secs(120)));

    eprintln!("eelbench: timing cold edit requests x{images}...");
    let started = Instant::now();
    let cold: Vec<Vec<u8>> = wefs
        .iter()
        .map(|wef| expect_body(client.edit(wef.clone(), script).expect("cold edit")))
        .collect();
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    for (wef, edited) in wefs.iter().zip(&cold) {
        if eel_exe::Image::from_bytes(edited).is_err() {
            eprintln!("eelbench: FAIL: edited image does not parse as a WEF");
            return ExitCode::FAILURE;
        }
        if wef == edited {
            eprintln!("eelbench: FAIL: edit returned the unedited image");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("eelbench: timing warm edit requests x{images}...");
    let started = Instant::now();
    let warm: Vec<Vec<u8>> = wefs
        .iter()
        .map(|wef| expect_body(client.edit(wef.clone(), script).expect("warm edit")))
        .collect();
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    if warm != cold {
        eprintln!("eelbench: FAIL: warm edit responses differ from cold responses");
        return ExitCode::FAILURE;
    }
    let (_, _) = (server.shutdown(), server.wait());

    let speedup = cold_ms / warm_ms;
    eprintln!(
        "eelbench: edit: cold {cold_ms:.1}ms, warm {warm_ms:.1}ms ({speedup:.2}x) over {images} \
         images"
    );

    // Every mode records the machine size so a re-recorded section is
    // comparable with the others in the same file.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"edit\": {{\n    \"cores\": {cores},\n    \"images\": {images},\n    \
         \"cold_ms\": {cold_ms:.2},\n    \"warm_ms\": {warm_ms:.2},\n    \
         \"speedup\": {speedup:.2}\n  }}\n"
    );
    // Merge into the serve results file: drop any previous edit section,
    // then splice this one in before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"edit\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"edit\"") {
                // The file holds nothing but a previous edit run.
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// The fragment cache's headline number: analyzing a near-duplicate
/// image with a warm fragment tier versus from scratch. Kernel-level
/// (no daemon), so the timer isolates the op pipeline the fragments
/// short-circuit; `Analysis::compute` (image load + §3.1 discovery)
/// runs outside the timed region for both modes, exactly like the
/// `serve` kernel benchmark.
fn incremental_bench(args: &[String]) -> ExitCode {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    let mut twins = 8usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--twins" => twins = value.parse().unwrap_or(8).max(1),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    /// A plain in-memory tier: the benchmark measures the analysis
    /// saved by fragment reuse, not any particular storage backend.
    struct MemTier(Mutex<HashMap<(u64, String), Vec<u8>>>);
    impl FragmentTier for MemTier {
        fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
            self.0.lock().unwrap().get(&(key, op.to_string())).cloned()
        }
        fn store(&self, key: u64, op: &str, bytes: &[u8]) {
            self.0
                .lock()
                .unwrap()
                .insert((key, op.to_string()), bytes.to_vec());
        }
    }

    // The base: many medium routines, the shape the fragment cache
    // targets — a near-duplicate rebuild invalidates one routine out of
    // dozens, like a one-function change in a real program. (A handful
    // of giant routines would instead measure mostly the unavoidable
    // rebuild of whichever routine the twin mutates.)
    eprintln!("eelbench: compiling the base image...");
    let many = eel_progen::GenConfig {
        functions: 64,
        stmts_per_fn: 4,
        ..eel_progen::GenConfig::default()
    };
    let base = (0..8)
        .filter_map(|seed| {
            let program = eel_progen::random_program(seed, &many);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .chain(
            eel_progen::suite()
                .iter()
                .map(|w| eel_progen::compile(w, Personality::Gcc).expect("compile workload")),
        )
        .max_by_key(|image| image.text.len())
        .expect("suite non-empty");
    let text_bytes = base.text.len();

    eprintln!("eelbench: mutating {twins} near-duplicate twins...");
    let twin_analyses: Vec<eel_core::Analysis> = (0..twins)
        .map(|k| {
            let mut image = base.clone();
            eel_progen::mutate_routine(&mut image, k).expect("base has ALU immediates");
            eel_core::Analysis::compute(Arc::new(image)).expect("analyze twin")
        })
        .collect();
    let routines = twin_analyses[0].routine_keys().len();
    let base_analysis = eel_core::Analysis::compute(Arc::new(base)).expect("analyze base");

    let mut sections = Vec::new();
    for op in ["disasm", "instrument"] {
        // Warm the tier from the base image — the fleet's "previous
        // build" whose fragments the twins reuse.
        let tier = MemTier(Mutex::new(HashMap::new()));
        let (_, base_stats) = run_op_fragments(op, &base_analysis, 1, &tier).expect(op);

        eprintln!("eelbench: {op}: cold analysis of {twins} twins...");
        let mut cold_bodies = Vec::with_capacity(twins);
        let started = Instant::now();
        for a in &twin_analyses {
            let (body, _) = run_op_fragments(op, a, 1, &NoFragments).expect(op);
            cold_bodies.push(body);
        }
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;

        eprintln!("eelbench: {op}: incremental analysis of {twins} twins...");
        let (mut hits, mut total) = (0u64, 0u64);
        let started = Instant::now();
        for (a, cold) in twin_analyses.iter().zip(&cold_bodies) {
            let (body, stats) = run_op_fragments(op, a, 1, &tier).expect(op);
            hits += u64::from(stats.hits);
            total += u64::from(stats.total);
            if body != *cold {
                eprintln!("eelbench: FAIL: {op} incremental output differs from cold");
                return ExitCode::FAILURE;
            }
        }
        let incr_ms = started.elapsed().as_secs_f64() * 1e3;
        let speedup = cold_ms / incr_ms;
        let hit_rate = hits as f64 / total.max(1) as f64;
        eprintln!(
            "eelbench: incremental: {op} cold {cold_ms:.2}ms, incremental {incr_ms:.2}ms \
             ({speedup:.2}x, {hits}/{total} fragment hits, base stored {}/{})",
            base_stats.total - base_stats.hits,
            base_stats.total
        );
        sections.push(format!(
            "    \"{op}\": {{ \"cold_ms\": {cold_ms:.2}, \"incremental_ms\": {incr_ms:.2}, \
             \"speedup\": {speedup:.2}, \"fragment_hit_rate\": {hit_rate:.3} }}"
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"incremental\": {{\n    \"cores\": {cores},\n    \"twins\": {twins},\n    \
         \"routines\": {routines},\n    \"text_bytes\": {text_bytes},\n{}\n  }}\n",
        sections.join(",\n")
    );
    // Merge like the edit section: drop any previous incremental
    // section, then splice before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"incremental\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"incremental\"") {
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// Cross-machine smoke + timing over the dispatch seam: each suite
/// workload compiled for both machines from the same source, both
/// pipelines run over every cached op, and the two backends' emulator
/// behavior compared. Correctness smoke first, benchmark second — any
/// divergence exits nonzero. Kernel-level (no daemon): the serve tests
/// already cover wire dispatch and cache-key separation; this measures
/// the op pipelines themselves.
fn machines_bench(args: &[String]) -> ExitCode {
    use eel_serve::{FragmentStats, CACHED_OPS};
    use std::sync::Arc;

    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let machines = [eel_exe::Machine::Sparc, eel_exe::Machine::Mips];
    let suite = eel_progen::suite();
    eprintln!(
        "eelbench: compiling {} workloads as sparc/mips twin pairs...",
        suite.len()
    );
    let run_op = |op: &str, a: &eel_core::Analysis| -> Result<Vec<u8>, String> {
        run_op_fragments(op, a, 1, &NoFragments).map(|(body, _): (_, FragmentStats)| body)
    };
    let mut pairs = Vec::new();
    for w in &suite {
        // Some suite workloads use constructs one code generator
        // rejects (e.g. indirect calls on mips); a pair needs both.
        let images: Vec<eel_exe::Image> = match machines
            .iter()
            .map(|&m| eel_progen::compile_machine(w, Personality::Gcc, m))
            .collect::<Result<_, _>>()
        {
            Ok(images) => images,
            Err(e) => {
                eprintln!("eelbench: skipping {} (not portable: {e:?})", w.name);
                continue;
            }
        };
        for (image, &machine) in images.iter().zip(&machines) {
            if image.machine != machine {
                eprintln!(
                    "eelbench: FAIL: {} twin tagged {}",
                    w.name,
                    image.machine.name()
                );
                return ExitCode::FAILURE;
            }
        }

        // Same source, two backends: observable behavior must agree
        // (cycle counts legitimately differ — SPARC pays annulled delay
        // slots, MIPS pays its own schedule — so only I/O is compared).
        let outcomes: Vec<eel_emu::Outcome> = match images
            .iter()
            .map(eel_emu::run_image)
            .collect::<Result<_, _>>()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("eelbench: FAIL: {} twin does not run: {e:?}", w.name);
                return ExitCode::FAILURE;
            }
        };
        if outcomes[0].exit_code != outcomes[1].exit_code
            || outcomes[0].output != outcomes[1].output
        {
            eprintln!(
                "eelbench: FAIL: {} twins diverge under emulation (sparc exit {}, mips exit {})",
                w.name, outcomes[0].exit_code, outcomes[1].exit_code
            );
            return ExitCode::FAILURE;
        }

        let analyses: Vec<eel_core::Analysis> = images
            .iter()
            .map(|image| {
                eel_core::Analysis::compute(Arc::new(image.clone())).expect("analyze twin")
            })
            .collect();
        for op in CACHED_OPS {
            let mut bodies = Vec::new();
            for (a, &machine) in analyses.iter().zip(&machines) {
                let body = match run_op(op, a) {
                    Ok(body) => body,
                    Err(e) => {
                        eprintln!(
                            "eelbench: FAIL: {op} on the {} {} twin: {e}",
                            machine.name(),
                            w.name
                        );
                        return ExitCode::FAILURE;
                    }
                };
                if run_op(op, a).as_ref() != Ok(&body) {
                    eprintln!(
                        "eelbench: FAIL: {op} is not deterministic on {}",
                        machine.name()
                    );
                    return ExitCode::FAILURE;
                }
                if *op == "stat" {
                    let text = String::from_utf8_lossy(&body);
                    let line = format!("machine: {}", machine.name());
                    if !text.contains(&line) {
                        eprintln!("eelbench: FAIL: stat does not report {line:?}");
                        return ExitCode::FAILURE;
                    }
                }
                bodies.push(body);
            }
            // Machine-appropriate output: twin bodies must never be
            // interchangeable across tags.
            if bodies[0] == bodies[1] {
                eprintln!(
                    "eelbench: FAIL: {op} output identical across machines on {}",
                    w.name
                );
                return ExitCode::FAILURE;
            }
        }

        // Instrumenting the MIPS twin must not change its behavior.
        let edited = match run_op("instrument", &analyses[1]) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("eelbench: FAIL: instrument the mips {} twin: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        let instrumented = match eel_exe::Image::from_bytes(&edited)
            .map_err(|e| format!("{e:?}"))
            .and_then(|image| eel_emu::run_image(&image).map_err(|e| format!("{e:?}")))
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!(
                    "eelbench: FAIL: instrumented mips {} does not run: {e}",
                    w.name
                );
                return ExitCode::FAILURE;
            }
        };
        if instrumented.exit_code != outcomes[1].exit_code
            || instrumented.output != outcomes[1].output
        {
            eprintln!(
                "eelbench: FAIL: instrumenting the mips {} twin changed its behavior",
                w.name
            );
            return ExitCode::FAILURE;
        }

        eprintln!(
            "eelbench: {}: twins agree (exit {}), all {} ops dispatch on both machines",
            w.name,
            outcomes[0].exit_code,
            CACHED_OPS.len()
        );
        pairs.push((w.name, images, analyses, outcomes));
    }

    // -- Timing: both pipelines over the largest pair's ops.
    let (name, images, analyses, outcomes) = pairs
        .iter()
        .max_by_key(|(_, images, _, _)| images[1].text.len())
        .expect("suite non-empty");
    eprintln!("eelbench: timing both pipelines on {name}...");
    let mut rows = Vec::new();
    for op in CACHED_OPS {
        const RUNS: usize = 5;
        let mut ms = [f64::INFINITY; 2];
        for _ in 0..RUNS {
            for (slot, a) in analyses.iter().enumerate() {
                let started = Instant::now();
                run_op(op, a).expect(op);
                ms[slot] = ms[slot].min(started.elapsed().as_secs_f64() * 1e3);
            }
        }
        eprintln!(
            "eelbench: machines: {op} sparc {:.2}ms, mips {:.2}ms",
            ms[0], ms[1]
        );
        rows.push(format!(
            "    \"{op}\": {{ \"sparc_ms\": {:.2}, \"mips_ms\": {:.2} }}",
            ms[0], ms[1]
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"machines\": {{\n    \"cores\": {cores},\n    \"workloads\": {},\n    \
         \"timed_workload\": \"{name}\",\n    \"sparc_text_bytes\": {},\n    \
         \"mips_text_bytes\": {},\n    \"sparc_cycles\": {},\n    \"mips_cycles\": {},\n{}\n  }}\n",
        pairs.len(),
        images[0].text.len(),
        images[1].text.len(),
        outcomes[0].cycles,
        outcomes[1].cycles,
        rows.join(",\n")
    );
    // Merge like the edit/incremental sections: drop any previous
    // machines section, then splice before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"machines\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"machines\"") {
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// Warm-throughput scaling from consistent-hash sharding, isolated to
/// the cache-capacity effect: the same per-shard result-cache budget,
/// sized *below* the working set, drives one topology into LRU thrash
/// while three shards' aggregate holds everything. Single-core honest:
/// the speedup here is recompute-avoided-per-request, not parallelism —
/// on a multi-core fleet the two effects compound.
fn cluster_bench(args: &[String]) -> ExitCode {
    use eel_serve::ClusterClient;

    let mut images = 24usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--images" => images = value.parse().unwrap_or(24).max(6),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    const SHARDS: usize = 3;

    // Distinct medium images: instrument bodies are whole edited WEFs,
    // big enough that their sum defines a meaningful working set.
    eprintln!("eelbench: compiling {images} seeded images...");
    let config = eel_progen::GenConfig::default();
    let mut wefs: Vec<Vec<u8>> = Vec::with_capacity(images);
    let mut seed = 0u64;
    while wefs.len() < images {
        let program = eel_progen::random_program(seed, &config);
        if let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            wefs.push(image.to_bytes());
        }
        seed += 1;
    }
    let requests: Vec<Request> = wefs
        .iter()
        .map(|wef| Request {
            op: "instrument".into(),
            payload: Payload::Inline(wef.clone()),
        })
        .collect();

    // Ground truth computed in-process through a counting fragment tier,
    // which measures the exact result-LRU working set a server accrues
    // for these images: every instrument body plus every *distinct*
    // per-routine fragment (fragments live in the same LRU, costed by
    // their byte length, and are shared across images by content key).
    struct CountingTier {
        map: std::cell::RefCell<std::collections::HashMap<(u64, String), Vec<u8>>>,
        bytes: std::cell::Cell<usize>,
    }
    impl FragmentTier for CountingTier {
        fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
            self.map.borrow().get(&(key, op.to_string())).cloned()
        }
        fn store(&self, key: u64, op: &str, bytes: &[u8]) {
            let prev = self
                .map
                .borrow_mut()
                .insert((key, op.to_string()), bytes.to_vec());
            if prev.is_none() {
                self.bytes.set(self.bytes.get() + bytes.len());
            }
        }
    }
    eprintln!("eelbench: computing ground-truth instrument results...");
    let tier = CountingTier {
        map: std::cell::RefCell::new(std::collections::HashMap::new()),
        bytes: std::cell::Cell::new(0),
    };
    let expected: Vec<Vec<u8>> = wefs
        .iter()
        .map(|wef| {
            let image = eel_exe::Image::from_bytes(wef).expect("parse image");
            let analysis =
                eel_core::Analysis::compute(std::sync::Arc::new(image)).expect("analyze");
            run_op_fragments("instrument", &analysis, 1, &tier)
                .expect("instrument")
                .0
        })
        .collect();
    let working_set: usize = expected.iter().map(Vec::len).sum::<usize>() + tier.bytes.get();
    // The server splits cache_bytes evenly between the analysis and
    // result LRUs. A result budget of 70% of the working set guarantees
    // one shard thrashes on a sequential warm scan, while three shards'
    // aggregate (2.1x the working set) holds every shard's ~1/3 slice
    // with ample headroom for placement imbalance.
    let cache_bytes = (working_set * 7 / 10) * 2;
    eprintln!(
        "eelbench: working set {working_set} bytes, per-shard cache budget {cache_bytes} bytes"
    );
    let shard_config = || ServerConfig {
        workers: 2,
        cache_bytes,
        ..ServerConfig::default()
    };
    const REPS: usize = 3;

    // -- One shard: every warm pass rescans a set its LRU cannot hold.
    let single = Server::start(shard_config()).expect("start single shard");
    let client = Client::connect(single.local_addr().to_string())
        .with_timeout(Some(Duration::from_secs(300)));
    eprintln!("eelbench: single shard: priming...");
    for (req, want) in requests.iter().zip(&expected) {
        let body = expect_body(client.request(req).expect("prime"));
        if &body != want {
            eprintln!("eelbench: FAIL: single-shard response differs from ground truth");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("eelbench: single shard: timing {REPS} warm passes...");
    let mut single_ms = f64::INFINITY;
    let mut single_recomputes = 0usize;
    for rep in 0..REPS {
        let started = Instant::now();
        for (req, want) in requests.iter().zip(&expected) {
            let resp = client.request(req).expect("single warm");
            if rep == 0 {
                if let Response::Ok {
                    tier: eel_serve::CacheTier::Computed,
                    ..
                } = &resp
                {
                    single_recomputes += 1;
                }
            }
            if &expect_body(resp) != want {
                eprintln!("eelbench: FAIL: single-shard warm response differs");
                return ExitCode::FAILURE;
            }
        }
        single_ms = single_ms.min(started.elapsed().as_secs_f64() * 1e3);
    }
    let (_, _) = (single.shutdown(), single.wait());

    // -- Three shards, same per-shard budget: each owns ~1/3 of the
    // keyspace and keeps its slice resident.
    let servers: Vec<Server> = (0..SHARDS)
        .map(|_| Server::start(shard_config()).expect("start shard"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let cluster = ClusterClient::connect(addrs).with_timeout(Some(Duration::from_secs(300)));
    let placed: Vec<usize> = requests.iter().map(|r| cluster.shard_for(r)).collect();
    let mut per_shard = [0usize; SHARDS];
    for &s in &placed {
        per_shard[s] += 1;
    }
    eprintln!("eelbench: cluster: images per shard {per_shard:?}, priming...");
    for (req, want) in requests.iter().zip(&expected) {
        let body = expect_body(cluster.request(req).expect("prime"));
        if &body != want {
            eprintln!("eelbench: FAIL: cluster response differs from ground truth");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("eelbench: cluster: timing {REPS} warm passes...");
    let mut cluster_ms = f64::INFINITY;
    let mut cluster_hits = 0usize;
    for rep in 0..REPS {
        let started = Instant::now();
        for (req, want) in requests.iter().zip(&expected) {
            let resp = cluster.request(req).expect("cluster warm");
            if rep == 0 {
                if let Response::Ok {
                    tier: eel_serve::CacheTier::Memory,
                    ..
                } = &resp
                {
                    cluster_hits += 1;
                }
            }
            if &expect_body(resp) != want {
                eprintln!("eelbench: FAIL: cluster warm response differs from single-shard");
                return ExitCode::FAILURE;
            }
        }
        cluster_ms = cluster_ms.min(started.elapsed().as_secs_f64() * 1e3);
    }
    for server in servers {
        server.shutdown();
        server.wait();
    }

    let speedup = single_ms / cluster_ms;
    let single_rps = images as f64 / (single_ms / 1e3);
    let cluster_rps = images as f64 / (cluster_ms / 1e3);
    eprintln!(
        "eelbench: cluster: 1 shard {single_ms:.1}ms/pass ({single_recomputes}/{images} \
         recomputed), {SHARDS} shards {cluster_ms:.1}ms/pass ({cluster_hits}/{images} memory \
         hits), {speedup:.2}x warm throughput"
    );
    if cluster_hits * 2 < images {
        eprintln!("eelbench: FAIL: cluster warm pass mostly missed; budget sizing is off");
        return ExitCode::FAILURE;
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"cluster\": {{\n    \"cores\": {cores},\n    \"shards\": {SHARDS},\n    \
         \"images\": {images},\n    \"working_set_bytes\": {working_set},\n    \
         \"per_shard_cache_bytes\": {cache_bytes},\n    \
         \"single_pass_ms\": {single_ms:.2},\n    \"single_rps\": {single_rps:.1},\n    \
         \"single_warm_recomputes\": {single_recomputes},\n    \
         \"cluster_pass_ms\": {cluster_ms:.2},\n    \"cluster_rps\": {cluster_rps:.1},\n    \
         \"cluster_warm_memory_hits\": {cluster_hits},\n    \
         \"speedup\": {speedup:.2},\n    \"byte_identical\": true\n  }}\n"
    );
    // Merge like the other sections: drop any previous cluster section,
    // then splice before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"cluster\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"cluster\"") {
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

fn expect_body(resp: Response) -> Vec<u8> {
    match resp {
        Response::Ok { body, .. } => body,
        other => panic!("expected Ok, got {other:?}"),
    }
}
