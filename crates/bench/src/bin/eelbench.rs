//! `eelbench` — end-to-end service benchmarks.
//!
//! ```text
//! eelbench serve       [--images N] [--window N] [--out PATH]
//! eelbench edit        [--images N] [--out PATH]
//! eelbench incremental [--twins N] [--out PATH]
//! ```
//!
//! The `serve` subcommand measures the two session-era optimizations
//! against their baselines, on a live in-process eel-serve daemon:
//!
//! 1. **Transport**: a warm-cache batch of N distinct progen images,
//!    sent one-connection-per-request (v1) versus pipelined through a
//!    single session connection (v2). Warm cache isolates the transport
//!    cost the session amortizes: connect, frame, queue hop.
//! 2. **Analysis kernel**: the largest suite image's `disasm` and
//!    `instrument`, sequential versus the per-routine parallel fan-out
//!    (`run_op_with`, 0 = one thread per core).
//!
//! Every pipelined result is asserted byte-identical to its
//! per-connection twin, and every parallel result to its sequential
//! twin — a correctness smoke test first, a benchmark second; any
//! mismatch exits nonzero. Measurements land in `BENCH_serve.json`
//! (see `--out`) and a human summary goes to stdout.
//!
//! The `edit` subcommand measures the write path: N distinct progen
//! images each get the same counter-insertion script, cold (computed
//! on the server) and then warm (the `(image, script)` key hits the
//! memory cache). Warm bytes are asserted identical to cold bytes and
//! every edited image must still parse as a WEF. The `"edit"` section
//! is merged into the same `BENCH_serve.json`, replacing any previous
//! edit section while leaving `serve` results in place.
//!
//! The `incremental` subcommand measures the per-routine fragment
//! cache: the largest kernel image plus N near-duplicate twins (each
//! differing from the base in one ALU immediate inside one routine,
//! via `eel_progen::mutate_routine`). Every twin's `disasm` and
//! `instrument` run cold (no fragment tier) and incrementally (a tier
//! pre-warmed by the base image), asserted byte-identical, with the
//! fragment hit rate recorded. The `"incremental"` section is merged
//! into `BENCH_serve.json` like `"edit"`; run the subcommands in
//! serve → edit → incremental order when regenerating the whole file.

use eel_cc::Personality;
use eel_serve::{
    run_op_fragments, run_op_with, Client, FragmentTier, NoFragments, Payload, Request, Response,
    Server, ServerConfig,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_bench(&args[1..]),
        Some("edit") => edit_bench(&args[1..]),
        Some("incremental") => incremental_bench(&args[1..]),
        Some("-h") | Some("--help") => {
            println!("usage: eelbench serve       [--images N] [--window N] [--out PATH]");
            println!("       eelbench edit        [--images N] [--out PATH]");
            println!("       eelbench incremental [--twins N] [--out PATH]");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "eelbench: unknown subcommand {other:?} (try: eelbench serve | edit | incremental)"
            );
            ExitCode::FAILURE
        }
    }
}

fn serve_bench(args: &[String]) -> ExitCode {
    let mut images = 64usize;
    let mut window = 16u32;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--images" => images = value.parse().unwrap_or(64),
            "--window" => window = value.parse().unwrap_or(16),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // -- Workloads: N distinct *small* seeded programs (distinct
    // hashes, so the batch exercises N separate cache entries). Small
    // on purpose: the transport benchmark measures the per-request
    // overhead sessions amortize (connect, teardown, frame round trip),
    // so the payload must not drown it in memcpy — with warm-cache
    // ~800KB default-config images, byte shoveling dominates both modes
    // and pipelining 16 of them in flight just thrashes the socket
    // buffers. Some seeds generate programs the compiler rejects
    // (expression depth); skip those and keep drawing until full.
    eprintln!("eelbench: compiling {images} seeded images...");
    let small = eel_progen::GenConfig {
        functions: 0,
        stmts_per_fn: 1,
        max_depth: 1,
        globals: 1,
        arrays: 0,
    };
    let mut wefs: Vec<Vec<u8>> = Vec::with_capacity(images);
    let mut seed = 0u64;
    while wefs.len() < images {
        let program = eel_progen::random_program(seed, &small);
        if let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            wefs.push(image.to_bytes());
        }
        seed += 1;
    }
    // The kernel benchmark wants the most routines it can get: the
    // per-routine fan-out scales with routine count, and the suite
    // workloads are tiny. A functions=16 generated program compiles to
    // ~1MB of text across ~19 routines. (functions >= 32 reliably
    // trips the compiler's expression-depth limit, hence the bounded
    // seed search with a suite fallback.)
    let many = eel_progen::GenConfig {
        functions: 16,
        ..eel_progen::GenConfig::default()
    };
    let largest = (0..8)
        .filter_map(|seed| {
            let program = eel_progen::random_program(seed, &many);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .chain(
            eel_progen::suite()
                .iter()
                .map(|w| eel_progen::compile(w, Personality::Gcc).expect("compile workload")),
        )
        .max_by_key(|image| image.text.len())
        .expect("suite non-empty");

    // -- Transport: per-connection vs pipelined session, warm cache.
    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string())
        .with_timeout(Some(Duration::from_secs(120)));
    let requests: Vec<Request> = wefs
        .iter()
        .map(|wef| Request {
            op: "stat".into(),
            payload: Payload::Inline(wef.clone()),
        })
        .collect();

    eprintln!("eelbench: warming the result cache...");
    let warm: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| expect_body(client.request(r).expect("warm request")))
        .collect();

    // Best-of-3 per mode sheds scheduler noise; every repetition still
    // verifies its responses against the warm baseline.
    const REPS: usize = 3;
    eprintln!("eelbench: timing one-connection-per-request x{images}...");
    let mut single_ms = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        let singles: Vec<Vec<u8>> = requests
            .iter()
            .map(|r| expect_body(client.request(r).expect("single request")))
            .collect();
        single_ms = single_ms.min(started.elapsed().as_secs_f64() * 1e3);
        if singles != warm {
            eprintln!("eelbench: FAIL: per-connection responses differ from warm baseline");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("eelbench: timing pipelined session (window {window}) x{images}...");
    let mut session_ms = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        let batched = client.batch(&requests, window).expect("batch");
        session_ms = session_ms.min(started.elapsed().as_secs_f64() * 1e3);
        let batched: Vec<Vec<u8>> = batched.into_iter().map(expect_body).collect();
        if batched != warm {
            eprintln!("eelbench: FAIL: pipelined responses differ from per-connection responses");
            return ExitCode::FAILURE;
        }
    }
    let (_, _) = (server.shutdown(), server.wait());
    let session_speedup = single_ms / session_ms;
    eprintln!(
        "eelbench: transport: per-connection {single_ms:.1}ms, session {session_ms:.1}ms \
         ({session_speedup:.2}x)"
    );

    // -- Analysis kernel: sequential vs parallel on the largest image.
    let text_bytes = largest.text.len();
    let analysis =
        eel_core::Analysis::compute(std::sync::Arc::new(largest)).expect("analyze largest");
    // `0` (auto) would resolve to one thread on a one-core box and
    // never enter the fan-out; force at least two threads so the
    // parallel machinery (spawn, speculative builds, memo stitch) is
    // what actually gets measured.
    let par_threads = cores.max(2);
    let mut kernel = Vec::new();
    for op in ["disasm", "instrument"] {
        // Untimed warmup, then best-of-N to shed scheduler noise.
        const RUNS: usize = 5;
        let expected = run_op_with(op, &analysis, 1).expect(op);
        let mut seq_ms = f64::INFINITY;
        let mut par_ms = f64::INFINITY;
        for _ in 0..RUNS {
            let started = Instant::now();
            let sequential = run_op_with(op, &analysis, 1).expect(op);
            seq_ms = seq_ms.min(started.elapsed().as_secs_f64() * 1e3);
            let started = Instant::now();
            let parallel = run_op_with(op, &analysis, par_threads).expect(op);
            par_ms = par_ms.min(started.elapsed().as_secs_f64() * 1e3);
            if parallel != expected || sequential != expected {
                eprintln!("eelbench: FAIL: {op} parallel output differs from sequential");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "eelbench: kernel: {op} sequential {seq_ms:.2}ms, parallel({par_threads} threads) \
             {par_ms:.2}ms ({:.2}x on {cores} cores)",
            seq_ms / par_ms
        );
        kernel.push((op, seq_ms, par_ms));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str(&format!("  \"window\": {window},\n"));
    json.push_str("  \"transport\": {\n");
    json.push_str(&format!(
        "    \"per_connection_ms\": {single_ms:.2},\n    \"session_ms\": {session_ms:.2},\n    \
         \"speedup\": {session_speedup:.2}\n  }},\n"
    ));
    json.push_str("  \"kernel\": {\n");
    json.push_str(&format!("    \"text_bytes\": {text_bytes},\n"));
    json.push_str(&format!("    \"parallel_threads\": {par_threads},\n"));
    let parts: Vec<String> = kernel
        .iter()
        .map(|(op, seq, par)| {
            format!(
                "    \"{op}\": {{ \"sequential_ms\": {seq:.2}, \"parallel_ms\": {par:.2}, \
                 \"speedup\": {:.2} }}",
                seq / par
            )
        })
        .collect();
    json.push_str(&parts.join(",\n"));
    json.push_str("\n  }\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// Cold/warm write-path latency: the same counter-insertion script over
/// N distinct images, computed once and then served from the
/// `(image_hash, script_hash)` cache key.
fn edit_bench(args: &[String]) -> ExitCode {
    let mut images = 16usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--images" => images = value.parse().unwrap_or(16),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    // Distinct seeded programs → distinct image hashes → every cold
    // request is a genuine computation, not a dedupe join.
    eprintln!("eelbench: compiling {images} seeded images...");
    let config = eel_progen::GenConfig {
        functions: 2,
        stmts_per_fn: 4,
        max_depth: 2,
        globals: 1,
        arrays: 0,
    };
    let mut wefs: Vec<Vec<u8>> = Vec::with_capacity(images);
    let mut seed = 0u64;
    while wefs.len() < images {
        let program = eel_progen::random_program(seed, &config);
        if let Ok(image) = eel_cc::compile_ast(&program, &eel_cc::Options::default()) {
            wefs.push(image.to_bytes());
        }
        seed += 1;
    }
    let script = "counter main\napply\n";

    let server = Server::start(ServerConfig::default()).expect("start server");
    let client = Client::connect(server.local_addr().to_string())
        .with_timeout(Some(Duration::from_secs(120)));

    eprintln!("eelbench: timing cold edit requests x{images}...");
    let started = Instant::now();
    let cold: Vec<Vec<u8>> = wefs
        .iter()
        .map(|wef| expect_body(client.edit(wef.clone(), script).expect("cold edit")))
        .collect();
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    for (wef, edited) in wefs.iter().zip(&cold) {
        if eel_exe::Image::from_bytes(edited).is_err() {
            eprintln!("eelbench: FAIL: edited image does not parse as a WEF");
            return ExitCode::FAILURE;
        }
        if wef == edited {
            eprintln!("eelbench: FAIL: edit returned the unedited image");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("eelbench: timing warm edit requests x{images}...");
    let started = Instant::now();
    let warm: Vec<Vec<u8>> = wefs
        .iter()
        .map(|wef| expect_body(client.edit(wef.clone(), script).expect("warm edit")))
        .collect();
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    if warm != cold {
        eprintln!("eelbench: FAIL: warm edit responses differ from cold responses");
        return ExitCode::FAILURE;
    }
    let (_, _) = (server.shutdown(), server.wait());

    let speedup = cold_ms / warm_ms;
    eprintln!(
        "eelbench: edit: cold {cold_ms:.1}ms, warm {warm_ms:.1}ms ({speedup:.2}x) over {images} \
         images"
    );

    // Every mode records the machine size so a re-recorded section is
    // comparable with the others in the same file.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"edit\": {{\n    \"cores\": {cores},\n    \"images\": {images},\n    \
         \"cold_ms\": {cold_ms:.2},\n    \"warm_ms\": {warm_ms:.2},\n    \
         \"speedup\": {speedup:.2}\n  }}\n"
    );
    // Merge into the serve results file: drop any previous edit section,
    // then splice this one in before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"edit\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"edit\"") {
                // The file holds nothing but a previous edit run.
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

/// The fragment cache's headline number: analyzing a near-duplicate
/// image with a warm fragment tier versus from scratch. Kernel-level
/// (no daemon), so the timer isolates the op pipeline the fragments
/// short-circuit; `Analysis::compute` (image load + §3.1 discovery)
/// runs outside the timed region for both modes, exactly like the
/// `serve` kernel benchmark.
fn incremental_bench(args: &[String]) -> ExitCode {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    let mut twins = 8usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("eelbench: {flag} needs a value");
            return ExitCode::FAILURE;
        };
        match flag {
            "--twins" => twins = value.parse().unwrap_or(8).max(1),
            "--out" => out = value.clone(),
            other => {
                eprintln!("eelbench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    /// A plain in-memory tier: the benchmark measures the analysis
    /// saved by fragment reuse, not any particular storage backend.
    struct MemTier(Mutex<HashMap<(u64, String), Vec<u8>>>);
    impl FragmentTier for MemTier {
        fn load(&self, key: u64, op: &str) -> Option<Vec<u8>> {
            self.0.lock().unwrap().get(&(key, op.to_string())).cloned()
        }
        fn store(&self, key: u64, op: &str, bytes: &[u8]) {
            self.0
                .lock()
                .unwrap()
                .insert((key, op.to_string()), bytes.to_vec());
        }
    }

    // The base: many medium routines, the shape the fragment cache
    // targets — a near-duplicate rebuild invalidates one routine out of
    // dozens, like a one-function change in a real program. (A handful
    // of giant routines would instead measure mostly the unavoidable
    // rebuild of whichever routine the twin mutates.)
    eprintln!("eelbench: compiling the base image...");
    let many = eel_progen::GenConfig {
        functions: 64,
        stmts_per_fn: 4,
        ..eel_progen::GenConfig::default()
    };
    let base = (0..8)
        .filter_map(|seed| {
            let program = eel_progen::random_program(seed, &many);
            eel_cc::compile_ast(&program, &eel_cc::Options::default()).ok()
        })
        .chain(
            eel_progen::suite()
                .iter()
                .map(|w| eel_progen::compile(w, Personality::Gcc).expect("compile workload")),
        )
        .max_by_key(|image| image.text.len())
        .expect("suite non-empty");
    let text_bytes = base.text.len();

    eprintln!("eelbench: mutating {twins} near-duplicate twins...");
    let twin_analyses: Vec<eel_core::Analysis> = (0..twins)
        .map(|k| {
            let mut image = base.clone();
            eel_progen::mutate_routine(&mut image, k).expect("base has ALU immediates");
            eel_core::Analysis::compute(Arc::new(image)).expect("analyze twin")
        })
        .collect();
    let routines = twin_analyses[0].routine_keys().len();
    let base_analysis = eel_core::Analysis::compute(Arc::new(base)).expect("analyze base");

    let mut sections = Vec::new();
    for op in ["disasm", "instrument"] {
        // Warm the tier from the base image — the fleet's "previous
        // build" whose fragments the twins reuse.
        let tier = MemTier(Mutex::new(HashMap::new()));
        let (_, base_stats) = run_op_fragments(op, &base_analysis, 1, &tier).expect(op);

        eprintln!("eelbench: {op}: cold analysis of {twins} twins...");
        let mut cold_bodies = Vec::with_capacity(twins);
        let started = Instant::now();
        for a in &twin_analyses {
            let (body, _) = run_op_fragments(op, a, 1, &NoFragments).expect(op);
            cold_bodies.push(body);
        }
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;

        eprintln!("eelbench: {op}: incremental analysis of {twins} twins...");
        let (mut hits, mut total) = (0u64, 0u64);
        let started = Instant::now();
        for (a, cold) in twin_analyses.iter().zip(&cold_bodies) {
            let (body, stats) = run_op_fragments(op, a, 1, &tier).expect(op);
            hits += u64::from(stats.hits);
            total += u64::from(stats.total);
            if body != *cold {
                eprintln!("eelbench: FAIL: {op} incremental output differs from cold");
                return ExitCode::FAILURE;
            }
        }
        let incr_ms = started.elapsed().as_secs_f64() * 1e3;
        let speedup = cold_ms / incr_ms;
        let hit_rate = hits as f64 / total.max(1) as f64;
        eprintln!(
            "eelbench: incremental: {op} cold {cold_ms:.2}ms, incremental {incr_ms:.2}ms \
             ({speedup:.2}x, {hits}/{total} fragment hits, base stored {}/{})",
            base_stats.total - base_stats.hits,
            base_stats.total
        );
        sections.push(format!(
            "    \"{op}\": {{ \"cold_ms\": {cold_ms:.2}, \"incremental_ms\": {incr_ms:.2}, \
             \"speedup\": {speedup:.2}, \"fragment_hit_rate\": {hit_rate:.3} }}"
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let section = format!(
        "  \"incremental\": {{\n    \"cores\": {cores},\n    \"twins\": {twins},\n    \
         \"routines\": {routines},\n    \"text_bytes\": {text_bytes},\n{}\n  }}\n",
        sections.join(",\n")
    );
    // Merge like the edit section: drop any previous incremental
    // section, then splice before the closing brace.
    let json = match std::fs::read_to_string(&out) {
        Ok(mut base) if base.trim_end().ends_with('}') => {
            if let Some(pos) = base.find(",\n  \"incremental\"") {
                base.truncate(pos);
                format!("{base},\n{section}}}\n")
            } else if base.trim_start().starts_with("{\n  \"incremental\"") {
                format!("{{\n{section}}}\n")
            } else {
                let end = base.trim_end().len() - 1;
                base.truncate(end);
                base.truncate(base.trim_end().len());
                format!("{base},\n{section}}}\n")
            }
        }
        _ => format!("{{\n{section}}}\n"),
    };
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("eelbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    eprintln!("eelbench: results written to {out}");
    ExitCode::SUCCESS
}

fn expect_body(resp: Response) -> Vec<u8> {
    match resp {
        Response::Ok { body, .. } => body,
        other => panic!("expected Ok, got {other:?}"),
    }
}
