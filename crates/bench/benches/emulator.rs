//! Emulator throughput (the testbed substrate): instructions per second
//! executing original and instrumented programs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eel_cc::Personality;
use eel_emu::run_image;
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let w = eel_progen::compress_like(300);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compiles");
    let cycles = run_image(&image).expect("runs").cycles;

    let mut group = c.benchmark_group("emulator");
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("run_original", |b| {
        b.iter(|| black_box(run_image(&image).expect("runs").exit_code))
    });

    let instrumented = eel_tools::qpt2::instrument(image, eel_tools::qpt2::Granularity::Edges)
        .expect("instruments");
    let icycles = run_image(&instrumented.image).expect("runs").cycles;
    group.throughput(Throughput::Elements(icycles));
    group.bench_function("run_qpt2_instrumented", |b| {
        b.iter(|| black_box(run_image(&instrumented.image).expect("runs").exit_code))
    });
    group.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
