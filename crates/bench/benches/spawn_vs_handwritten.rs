//! §5's claim that "the spawn-generated code ran at the same speed" as
//! the handwritten machine layer. Our spawn layer is *interpreted* (the
//! generated-Rust path is emitted but not compiled in), so the honest
//! comparison is handwritten decode/step vs spawn's interpreted
//! decode/execute — the report notes the expected gap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eel_isa::{MachineState, Memory};
use eel_spawn::SpawnState;
use std::hint::black_box;

struct NullMem;

impl Memory for NullMem {
    fn load(&mut self, _addr: u32, _bytes: u32) -> Option<u32> {
        Some(0)
    }
    fn store(&mut self, _addr: u32, _bytes: u32, _value: u32) -> Option<()> {
        Some(())
    }
}

fn bench_spawn(c: &mut Criterion) {
    let w = eel_progen::spim_like(100);
    let image = eel_progen::compile(&w, eel_cc::Personality::Gcc).expect("compiles");
    let words: Vec<u32> = image.text_words().map(|(_, w)| w).collect();
    let machine = eel_spawn::sparc_machine().expect("bundled description");

    let mut group = c.benchmark_group("spawn_vs_handwritten");
    group.throughput(Throughput::Elements(words.len() as u64));

    group.bench_function("decode_handwritten", |b| {
        b.iter(|| {
            let mut valid = 0u32;
            for &w in &words {
                if !matches!(eel_isa::decode(w).category(), eel_isa::Category::Invalid) {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
    group.bench_function("decode_spawn_interpreted", |b| {
        b.iter(|| {
            let mut valid = 0u32;
            for &w in &words {
                if machine.decode(w).is_some() {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });

    // Execution: straight-line stepping over ALU-heavy words.
    let alu_words: Vec<u32> = words
        .iter()
        .copied()
        .filter(|&w| {
            matches!(
                eel_isa::decode(w).category(),
                eel_isa::Category::Computation
            )
        })
        .collect();
    group.bench_function("step_handwritten", |b| {
        b.iter(|| {
            let mut st = MachineState::new(0x10000);
            let mut mem = NullMem;
            for &w in &alu_words {
                eel_isa::step(&mut st, &mut mem, eel_isa::decode(w));
            }
            black_box(st.regs[9])
        })
    });
    group.bench_function("execute_spawn_interpreted", |b| {
        b.iter(|| {
            let mut st = SpawnState::new(0x10000);
            let mut mem = NullMem;
            for &w in &alu_words {
                if let Some(d) = machine.decode(w) {
                    let _ = machine.execute(&d, &mut st, &mut mem);
                }
            }
            black_box(st.r[9])
        })
    });

    group.finish();
}

criterion_group!(benches, bench_spawn);
criterion_main!(benches);
