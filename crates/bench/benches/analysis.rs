//! Throughput of EEL's analyses (§3): symbol refinement, CFG construction
//! with delay-slot normalization, liveness, dominators, slicing, and the
//! whole edit-and-relayout pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eel_cc::Personality;
use eel_core::{Dominators, Executable, Liveness, Slicer};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let w = eel_progen::spim_like(100);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compiles");
    let insns = (image.text.len() / 4) as u64;

    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(insns));

    group.bench_function("read_contents", |b| {
        b.iter(|| {
            let mut exec = Executable::from_image(black_box(image.clone())).unwrap();
            exec.read_contents().unwrap();
            exec
        })
    });

    group.bench_function("build_all_cfgs", |b| {
        b.iter(|| {
            let mut exec = Executable::from_image(image.clone()).unwrap();
            exec.read_contents().unwrap();
            let mut blocks = 0usize;
            for id in exec.all_routine_ids() {
                blocks += exec.build_cfg(id).unwrap().block_count();
            }
            black_box(blocks)
        })
    });

    // Per-CFG analyses over a prebuilt graph.
    let mut exec = Executable::from_image(image.clone()).unwrap();
    exec.read_contents().unwrap();
    let main_id = exec
        .all_routine_ids()
        .into_iter()
        .max_by_key(|&id| exec.routine(id).size())
        .unwrap();
    let cfg = exec.build_cfg(main_id).unwrap();

    group.bench_function("liveness", |b| {
        b.iter(|| black_box(Liveness::compute(&cfg)))
    });
    group.bench_function("dominators", |b| {
        b.iter(|| black_box(Dominators::compute(&cfg)))
    });
    group.bench_function("slice_all_memory_refs", |b| {
        b.iter(|| {
            let mut slicer = Slicer::new(&cfg);
            for (bid, block) in cfg.blocks() {
                for (i, ia) in block.insns.iter().enumerate() {
                    if ia.insn.is_memory() {
                        slicer.slice_address(bid, i);
                    }
                }
            }
            black_box(slicer.len())
        })
    });

    group.bench_function("passthrough_relayout", |b| {
        b.iter(|| {
            let mut exec = Executable::from_image(image.clone()).unwrap();
            exec.read_contents().unwrap();
            black_box(exec.write_edited().unwrap().text.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
