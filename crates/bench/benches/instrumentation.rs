//! Table 1's time axis: how long each tool takes to instrument the
//! spim-like workload, plus the other tools for context. The paper
//! measured qpt2 at 2.4–4.3× the ad-hoc qpt's instrumentation time; the
//! *direction* (EEL's general analysis costs instrumentation time) is the
//! reproduced claim.

use criterion::{criterion_group, criterion_main, Criterion};
use eel_cc::Personality;
use eel_tools::{active_memory, blizzard, qpt1, qpt2};
use std::hint::black_box;

fn bench_instrumentation(c: &mut Criterion) {
    let w = eel_progen::spim_like(100);
    let image = eel_progen::compile(&w, Personality::Gcc).expect("compiles");

    let mut group = c.benchmark_group("table1_instrument");
    group.bench_function("qpt1_adhoc", |b| {
        b.iter(|| qpt1::instrument(black_box(image.clone())).expect("instruments"))
    });
    group.bench_function("qpt2_eel_blocks", |b| {
        b.iter(|| {
            qpt2::instrument(black_box(image.clone()), qpt2::Granularity::Blocks)
                .expect("instruments")
        })
    });
    group.bench_function("qpt2_eel_edges", |b| {
        b.iter(|| {
            qpt2::instrument(black_box(image.clone()), qpt2::Granularity::Edges)
                .expect("instruments")
        })
    });
    group.bench_function("active_memory", |b| {
        b.iter(|| active_memory::instrument(black_box(image.clone())).expect("instruments"))
    });
    group.bench_function("blizzard", |b| {
        b.iter(|| blizzard::instrument(black_box(image.clone())).expect("instruments"))
    });
    group.finish();
}

criterion_group!(benches, bench_instrumentation);
criterion_main!(benches);
