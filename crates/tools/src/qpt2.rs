//! qpt2 — the EEL-based profiler (paper §5, Figures 1–2).
//!
//! The paper rewrote qpt on EEL and it "dropped from 14,500 non-comment
//! lines of C code to 6,276 lines of C++": the tool shrinks because EEL
//! owns the hard parts. This module is the reproduction: block- and
//! edge-count profiling in a couple hundred lines, because `eel-core`
//! does the analysis, layout, and relocation.

use crate::ToolError;
use eel_core::{BlockId, BlockKind, Executable, Snippet};
use eel_emu::Machine;
use eel_exe::Image;
use std::collections::HashMap;

/// What qpt2 instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One counter per basic block (what qpt1 also supports).
    Blocks,
    /// One counter per out-edge of multi-successor blocks (Figure 1's
    /// optimal placement; qpt's signature technique).
    Edges,
    /// One counter per routine entry.
    Entries,
}

/// A profiled program: the edited image plus the counter directory.
#[derive(Debug)]
pub struct Profiled {
    /// The instrumented executable.
    pub image: Image,
    /// Counter directory: `(routine name, site address) → counter addr`.
    pub counters: Vec<CounterSite>,
}

/// One profile counter's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSite {
    /// Containing routine.
    pub routine: String,
    /// Site address in the ORIGINAL executable (block start, edge source,
    /// or entry point).
    pub site: u32,
    /// The counter's data address in the edited executable.
    pub counter: u32,
    /// Disambiguates multiple counters at one site (edge index).
    pub index: u32,
}

/// Instruments an executable for profiling.
///
/// # Errors
///
/// Propagates analysis/editing failures.
pub fn instrument(image: Image, granularity: Granularity) -> Result<Profiled, ToolError> {
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;

    // Counters are reserved per routine, exactly as many as needed.
    let mut sites: Vec<CounterSite> = Vec::new();

    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id)?;
        let routine = exec.routine(id).name();
        // Collect this routine's counter sites first, then reserve their
        // storage in one block.
        let mut jobs: Vec<(Job, u32, u32)> = Vec::new(); // (where, site, index)
        match granularity {
            Granularity::Blocks => {
                for (bid, b) in cfg.blocks() {
                    if b.kind == BlockKind::Normal && b.editable && !b.insns.is_empty() {
                        jobs.push((Job::Block(bid), b.addr, 0));
                    }
                }
            }
            Granularity::Edges => {
                // Figure 1: edges out of blocks with more than one
                // successor.
                for (_, b) in cfg.blocks() {
                    if b.kind != BlockKind::Normal || b.succ().len() < 2 {
                        continue;
                    }
                    for (i, &e) in b.succ().iter().enumerate() {
                        if cfg.edge(e).editable {
                            jobs.push((Job::Edge(e), b.addr, i as u32));
                        }
                    }
                }
            }
            Granularity::Entries => {
                let addr = cfg.entry_addrs().first().copied().unwrap_or_default();
                jobs.push((Job::Block(cfg.entry_block()), addr, 0));
            }
        }
        let base = exec.reserve_data(4 * jobs.len().max(1) as u32);
        for (k, (job, site, index)) in jobs.into_iter().enumerate() {
            let counter = base + 4 * k as u32;
            sites.push(CounterSite {
                routine: routine.clone(),
                site,
                counter,
                index,
            });
            match job {
                Job::Block(bid) => {
                    cfg.add_code_at_block_start(bid, Snippet::counter_increment(counter))?
                }
                Job::Edge(e) => cfg.add_code_along(e, Snippet::counter_increment(counter))?,
            }
        }
        exec.install_edits(cfg)?;
    }

    let image = exec.write_edited()?;
    Ok(Profiled {
        image,
        counters: sites,
    })
}

impl Profiled {
    /// Runs the instrumented program and returns its counts.
    ///
    /// # Errors
    ///
    /// Propagates emulator failures.
    pub fn run(&self) -> Result<ProfileRun, ToolError> {
        let mut machine = Machine::load(&self.image)?;
        let outcome = machine.run()?;
        let mut counts = HashMap::new();
        for site in &self.counters {
            counts.insert(
                (site.routine.clone(), site.site, site.index),
                machine.read_word(site.counter),
            );
        }
        Ok(ProfileRun { outcome, counts })
    }
}

enum Job {
    Block(BlockId),
    Edge(eel_core::EdgeId),
}

/// A completed profile run.
#[derive(Debug)]
pub struct ProfileRun {
    /// The program's own outcome (exit code, dynamic counts).
    pub outcome: eel_emu::Outcome,
    /// `(routine, site, index) → execution count`.
    pub counts: HashMap<(String, u32, u32), u32>,
}

impl ProfileRun {
    /// Total of all counters.
    pub fn total(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Counts for a routine, summed.
    pub fn routine_total(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .filter(|((r, _, _), _)| r == name)
            .map(|(_, &c)| c as u64)
            .sum()
    }
}
