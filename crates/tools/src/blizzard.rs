//! Blizzard-S — fine-grain access control by executable editing (paper
//! §1, §5; Schoinas et al., ASPLOS VI).
//!
//! Blizzard-S implements distributed-shared-memory protection domains by
//! inserting fine-grain access tests before shared stores. The EEL
//! rewrite (§5) was ~1,300 lines instead of 2,800 and used live-register
//! analysis to pick a faster test sequence when the condition codes are
//! dead. This module reproduces the shape: every store gets an inline
//! state-table test; "invalid" lines fault to a handler that validates
//! the line and counts the fault.

use crate::ToolError;
use eel_core::{Executable, Snippet};
use eel_emu::Machine;
use eel_exe::Image;
use eel_isa::{Insn, Op, Reg, Src2};

/// State-table entries (one byte per 32-byte line, hashed).
pub const STATE_LINES: u32 = 1024;

/// The access-controlled program.
#[derive(Debug)]
pub struct AccessControlled {
    /// The edited executable.
    pub image: Image,
    /// Address of the fault counter.
    pub faults_addr: u32,
    /// Address of the check counter (every store checks).
    pub checks_addr: u32,
    /// Instrumented store sites.
    pub sites: u32,
}

fn pick3(site: Insn) -> [Reg; 3] {
    let used = site.reads().union(site.writes());
    let mut picks = Vec::new();
    for i in [5u8, 6, 7, 2, 3, 4, 16, 17, 18, 19, 20, 21] {
        if !used.contains(Reg(i)) {
            picks.push(Reg(i));
            if picks.len() == 3 {
                break;
            }
        }
    }
    [picks[0], picks[1], picks[2]]
}

fn check_snippet(site: Insn, state: u32, faults: u32, checks: u32) -> Result<Snippet, ToolError> {
    let (rs1, src2) = match site.op {
        Op::Store { rs1, src2, .. } => (rs1, src2),
        other => return Err(ToolError::Internal(format!("not a store: {other:?}"))),
    };
    let [a, b, c] = pick3(site);
    let ea = match src2 {
        Src2::Imm(v) => format!("add {rs1}, {v}, {a}"),
        Src2::Reg(r) => format!("add {rs1}, {r}, {a}"),
    };
    let mask = STATE_LINES - 1;
    let body = format!(
        r#"
        {ea}
        srl {a}, 5, {a}
        and {a}, {mask}, {a}
        sethi %hi({state}), {c}
        or {c}, %lo({state}), {c}
        add {c}, {a}, {c}
        sethi %hi({checks}), {a}
        ld [%lo({checks}) + {a}], {b}
        add {b}, 1, {b}
        st {b}, [%lo({checks}) + {a}]
        ldub [{c}], {b}
        cmp {b}, 1
        be Lvalid
        nop
        ! fault path: validate the line and count the fault
        mov 1, {b}
        stb {b}, [{c}]
        sethi %hi({faults}), {c}
        ld [%lo({faults}) + {c}], {b}
        add {b}, 1, {b}
        st {b}, [%lo({faults}) + {c}]
    Lvalid:
    "#
    );
    Ok(Snippet::from_asm(&body)?.with_scavenged(&[a, b, c]))
}

/// Inserts an access check before every store in normal blocks.
///
/// # Errors
///
/// Propagates analysis/editing failures.
pub fn instrument(image: Image) -> Result<AccessControlled, ToolError> {
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let state = exec.reserve_data(STATE_LINES);
    let faults_addr = exec.reserve_data(4);
    let checks_addr = exec.reserve_data(4);
    let mut sites = 0u32;

    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id)?;
        let stores: Vec<eel_core::InsnAt> = cfg
            .memory_sites()
            .into_iter()
            .filter(|m| matches!(m.insn.op, Op::Store { .. }))
            .collect();
        for m in stores {
            if let Some(addr) = m.addr {
                cfg.add_code_before(
                    addr,
                    check_snippet(m.insn, state, faults_addr, checks_addr)?,
                )?;
                sites += 1;
            }
        }
        // Stores hiding in delay slots.
        let (edge_jobs, call_jobs) =
            crate::delay_slot_memory_jobs(&cfg, |i| matches!(i.op, Op::Store { .. }));
        for (e, insn) in edge_jobs {
            cfg.add_code_along(e, check_snippet(insn, state, faults_addr, checks_addr)?)?;
            sites += 1;
        }
        for (a, insn) in call_jobs {
            cfg.add_code_before(a, check_snippet(insn, state, faults_addr, checks_addr)?)?;
            sites += 1;
        }
        exec.install_edits(cfg)?;
    }
    let image = exec.write_edited()?;
    Ok(AccessControlled {
        image,
        faults_addr,
        checks_addr,
        sites,
    })
}

/// Fault/check counts after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Program exit code.
    pub exit_code: u32,
    /// Stores that found their line invalid (first touch).
    pub faults: u32,
    /// Total checked stores.
    pub checks: u32,
    /// Dynamic cycles.
    pub cycles: u64,
}

impl AccessControlled {
    /// Runs the program and reads the counters.
    ///
    /// # Errors
    ///
    /// Propagates emulator failures.
    pub fn run(&self) -> Result<AccessStats, ToolError> {
        let mut machine = Machine::load(&self.image)?;
        let outcome = machine.run()?;
        Ok(AccessStats {
            exit_code: outcome.exit_code,
            faults: machine.read_word(self.faults_addr),
            checks: machine.read_word(self.checks_addr),
            cycles: outcome.cycles,
        })
    }
}
