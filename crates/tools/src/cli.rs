//! Shared command-line plumbing for the tool binaries.
//!
//! Every binary (`eelobjdump`, `eelrun`, `eelstat`, `qpt`, `wisc`,
//! `eelctl`) parses the same way: positional input plus `--flag [VALUE]`
//! pairs, uniform `-h`/`--help` and `--version`, and the same error
//! wording for missing values and unexpected arguments. [`Cli`] is that
//! loop's chassis; the per-tool flags stay in the binary.

use std::process::ExitCode;

/// One tool invocation's arguments, with the uniform flags already
/// handled.
pub struct Cli {
    tool: &'static str,
    usage: &'static str,
    args: Vec<String>,
    at: usize,
}

impl Cli {
    /// Collects the process arguments. `-h`/`--help` and `--version`
    /// anywhere on the line are handled here: the text goes to stdout and
    /// the caller receives `Err(ExitCode::SUCCESS)` to return from
    /// `main`.
    ///
    /// # Errors
    ///
    /// `Err(exit_code)` when the invocation was fully handled (help or
    /// version).
    pub fn new(tool: &'static str, usage: &'static str) -> Result<Cli, ExitCode> {
        Cli::from_args(tool, usage, std::env::args().skip(1).collect())
    }

    /// [`Cli::new`] with explicit arguments, for tests.
    ///
    /// # Errors
    ///
    /// As [`Cli::new`].
    pub fn from_args(
        tool: &'static str,
        usage: &'static str,
        args: Vec<String>,
    ) -> Result<Cli, ExitCode> {
        for arg in &args {
            match arg.as_str() {
                "-h" | "--help" => {
                    println!("usage: {tool} {usage}");
                    return Err(ExitCode::SUCCESS);
                }
                "--version" => {
                    println!("{tool} {}", env!("CARGO_PKG_VERSION"));
                    return Err(ExitCode::SUCCESS);
                }
                _ => {}
            }
        }
        Ok(Cli {
            tool,
            usage,
            args,
            at: 0,
        })
    }

    /// The next argument, or `None` when the line is exhausted.
    pub fn next_arg(&mut self) -> Option<String> {
        let arg = self.args.get(self.at).cloned();
        self.at += arg.is_some() as usize;
        arg
    }

    /// The value following a `--flag VALUE` pair, consuming it.
    ///
    /// # Errors
    ///
    /// Prints `TOOL: FLAG needs a value` and yields the failure exit code
    /// when the line ends instead.
    pub fn value(&mut self, flag: &str) -> Result<String, ExitCode> {
        self.next_arg().ok_or_else(|| {
            eprintln!("{}: {flag} needs a value", self.tool);
            ExitCode::FAILURE
        })
    }

    /// Like [`Cli::value`], but parsed.
    ///
    /// # Errors
    ///
    /// As [`Cli::value`], plus `TOOL: FLAG needs a NUMBER-like value` on
    /// parse failure.
    pub fn parsed_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, ExitCode> {
        let raw = self.value(flag)?;
        raw.parse().map_err(|_| {
            eprintln!("{}: cannot parse {raw:?} for {flag}", self.tool);
            ExitCode::FAILURE
        })
    }

    /// Reports an argument no pattern claimed.
    #[must_use]
    pub fn unexpected(&self, arg: &str) -> ExitCode {
        eprintln!("{}: unexpected argument {arg:?} (see --help)", self.tool);
        ExitCode::FAILURE
    }

    /// Unwraps the positional input argument every tool requires.
    ///
    /// # Errors
    ///
    /// Prints `TOOL: no input file` plus the usage line when absent.
    pub fn required_input(&self, input: Option<String>) -> Result<String, ExitCode> {
        input.ok_or_else(|| {
            eprintln!(
                "{}: no input file (usage: {} {})",
                self.tool, self.tool, self.usage
            );
            ExitCode::FAILURE
        })
    }

    /// Prints a `TOOL: MESSAGE` error and yields the failure exit code —
    /// the uniform error epilogue.
    #[must_use]
    pub fn fail(&self, message: impl std::fmt::Display) -> ExitCode {
        eprintln!("{}: {message}", self.tool);
        ExitCode::FAILURE
    }
}
