//! qpt's tracing analysis — backward address slices for abstract
//! execution (paper §3.4, Figure 4; Larus 1990).
//!
//! qpt traced memory addresses cheaply by *not* recording most of them:
//! a backward slice from each reference's address registers identifies
//! the instructions that recompute the address, so the trace regenerator
//! re-executes the slice instead of reading a logged value. This module
//! runs that analysis and reports how tractable a program's references
//! are — the paper's Figure 4 algorithm applied at scale.

use crate::ToolError;
use eel_core::{Executable, SliceMark, Slicer};
use eel_exe::Image;

/// Slice statistics for one routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineSlices {
    /// Routine name.
    pub routine: String,
    /// Memory-reference sites examined.
    pub references: usize,
    /// References whose every address input had a reaching definition.
    pub fully_sliced: usize,
    /// Instructions marked easy (no register inputs).
    pub easy: usize,
    /// Instructions marked hard (inputs sliced further).
    pub hard: usize,
    /// Instructions marked impossible (floating-point inputs).
    pub impossible: usize,
}

/// Whole-program slicing report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceAnalysis {
    /// Per-routine results.
    pub routines: Vec<RoutineSlices>,
}

impl TraceAnalysis {
    /// Total references across routines.
    pub fn references(&self) -> usize {
        self.routines.iter().map(|r| r.references).sum()
    }

    /// Fraction of references with complete static slices (the paper's
    /// case for abstract execution: most addresses are recomputable).
    pub fn fully_sliced_fraction(&self) -> f64 {
        let total = self.references();
        if total == 0 {
            return 0.0;
        }
        let full: usize = self.routines.iter().map(|r| r.fully_sliced).sum();
        full as f64 / total as f64
    }
}

/// Runs the backward-slice analysis over every routine.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn analyze(image: Image) -> Result<TraceAnalysis, ToolError> {
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let mut out = TraceAnalysis::default();
    for id in exec.all_routine_ids() {
        let cfg = exec.build_cfg(id)?;
        let mut slicer = Slicer::new(&cfg);
        let mut references = 0;
        let mut fully_sliced = 0;
        for (bid, block) in cfg.blocks() {
            for (i, ia) in block.insns.iter().enumerate() {
                if ia.insn.is_memory() {
                    references += 1;
                    if slicer.slice_address(bid, i) {
                        fully_sliced += 1;
                    }
                }
            }
        }
        out.routines.push(RoutineSlices {
            routine: exec.routine(id).name(),
            references,
            fully_sliced,
            easy: slicer.count(SliceMark::Easy),
            hard: slicer.count(SliceMark::Hard),
            impossible: slicer.count(SliceMark::Impossible),
        });
    }
    Ok(out)
}
