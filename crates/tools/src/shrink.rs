//! Whole-program dead-routine elimination — the *optimization* use of
//! executable editing (paper §1: "editing can manipulate an entire
//! program, which permits it to perform interprocedural analysis rather
//! than stopping at procedure boundaries" [Srivastava & Wall]).
//!
//! Routines unreachable from the entry point in the [call graph] are
//! removed from the edited executable. The transformation is *sound*:
//! it refuses when the call graph has unknown indirect call sites (a
//! function pointer could reach anything), exactly the conservatism a
//! linker-level optimizer needs.
//!
//! [call graph]: eel_core::CallGraph

use crate::ToolError;
use eel_core::{CallGraph, Executable};
use eel_exe::Image;

/// The result of shrinking.
#[derive(Debug)]
pub struct Shrunk {
    /// The smaller executable.
    pub image: Image,
    /// Names of the routines removed.
    pub removed: Vec<String>,
    /// Text bytes before / after.
    pub text_before: usize,
    /// Text bytes after removal.
    pub text_after: usize,
}

/// Removes routines unreachable from the entry point.
///
/// # Errors
///
/// [`ToolError::Unsupported`] when unknown indirect call sites make the
/// analysis unsound; EEL errors otherwise.
pub fn strip_dead_routines(image: Image) -> Result<Shrunk, ToolError> {
    let text_before = image.text.len();
    let entry = image.entry;
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let graph = CallGraph::build(&mut exec)?;
    if !graph.unknown_sites().is_empty() {
        return Err(ToolError::Unsupported(format!(
            "{} unknown indirect call site(s): any routine could be live",
            graph.unknown_sites().len()
        )));
    }
    let root = exec
        .routine_containing(entry)
        .ok_or_else(|| ToolError::Internal("entry outside every routine".into()))?;
    let mut removed = Vec::new();
    for id in exec.all_routine_ids() {
        if id != root && !graph.reachable(root, id) {
            removed.push(exec.routine(id).name());
            exec.remove_routine(id)?;
        }
    }
    let image = exec.write_edited()?;
    let text_after = image.text.len();
    Ok(Shrunk {
        image,
        removed,
        text_before,
        text_after,
    })
}
