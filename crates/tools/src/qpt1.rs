//! qpt1 — the *ad-hoc* block-count profiler, the paper's "before" picture.
//!
//! This is a deliberate reproduction of the pre-EEL style the paper
//! criticizes (§1: "Ad-hoc systems are unlikely to employ reliable,
//! general analyses for difficult constructs"). It is built directly on
//! `eel-isa`/`eel-exe` with no EEL analyses, and it makes exactly the
//! assumptions real ad-hoc instrumenters made:
//!
//! * the symbol table is complete and truthful (no hidden routines, no
//!   data masquerading as routines);
//! * `%g6`/`%g7` are dead at every block boundary (register *scavenging by
//!   fiat*, no liveness analysis);
//! * dispatch tables match one hardcoded pattern (`sethi`/`or`,
//!   `ld [base + idx]`, `jmp`), bounded by an immediately preceding
//!   `cmp`/`bgeu`;
//! * no branches land in delay slots;
//! * any other indirect jump is an error — no run-time fallback.
//!
//! Under those assumptions it instruments every basic block with a
//! counter. On inputs that violate them (SunPro tail calls, stripped or
//! degraded symbol tables) it fails where qpt2 succeeds — the paper's
//! robustness argument, reproduced as a test.

use crate::ToolError;
use eel_exe::{Image, Symbol, SymbolKind};
use eel_isa::{decode, Builder, Category, Cond, Insn, Op, Reg, Src2};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Words of instrumentation inserted at each block head.
const PREFIX_WORDS: u32 = 4;

/// An instrumented program with its counter directory.
#[derive(Debug)]
pub struct Qpt1Profiled {
    /// The instrumented executable.
    pub image: Image,
    /// Original block-start address → counter address.
    pub counters: BTreeMap<u32, u32>,
}

/// Instruments every basic block with an execution counter, ad-hoc style.
///
/// # Errors
///
/// [`ToolError::Unsupported`] whenever reality violates the tool's
/// assumptions (stripped input, unanalyzable indirect jump).
pub fn instrument(image: Image) -> Result<Qpt1Profiled, ToolError> {
    if image.is_stripped() {
        return Err(ToolError::Unsupported(
            "qpt1 trusts the symbol table; stripped executables are not supported".into(),
        ));
    }
    let text = (image.text_addr, image.text_end());

    // ---- pass 1: leaders, tables, target patches ------------------------
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut table_ranges: Vec<(u32, u32)> = Vec::new(); // [start, end)
    let mut table_words: BTreeSet<u32> = BTreeSet::new();

    for sym in &image.symbols {
        if sym.kind == SymbolKind::Routine && sym.value >= text.0 && sym.value < text.1 {
            leaders.insert(sym.value);
        }
    }
    if leaders.is_empty() {
        return Err(ToolError::Unsupported("no routine symbols".into()));
    }

    let word_of = |a: u32| image.word_at(a).unwrap_or(0);
    let mut addr = text.0;
    while addr < text.1 {
        if table_words.contains(&addr) {
            addr += 4;
            continue;
        }
        let insn = decode(word_of(addr));
        match insn.op {
            Op::Branch { cond, disp22, .. } if cond != Cond::Never => {
                let t = addr.wrapping_add((disp22 as u32) << 2);
                if t >= text.0 && t < text.1 {
                    leaders.insert(t);
                }
                leaders.insert(addr + 8);
            }
            Op::Call { .. } => {
                leaders.insert(addr + 8);
            }
            Op::Jmpl { rd, .. } => {
                match insn.jump_kind() {
                    Some(eel_isa::JumpKind::Return) => {
                        leaders.insert(addr + 8);
                    }
                    Some(eel_isa::JumpKind::IndirectCall) => {
                        leaders.insert(addr + 8);
                        let _ = rd;
                    }
                    _ => {
                        // The one dispatch pattern qpt1 knows.
                        let (table, count) =
                            match_dispatch_pattern(&image, text, addr).ok_or_else(|| {
                                ToolError::Unsupported(format!(
                                    "unanalyzable indirect jump at {addr:#x} (qpt1 has no run-time fallback)"
                                ))
                            })?;
                        table_ranges.push((table, table + 4 * count));
                        for i in 0..count {
                            table_words.insert(table + 4 * i);
                            let t = word_of(table + 4 * i);
                            if t >= text.0 && t < text.1 {
                                leaders.insert(t);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        addr += 4;
    }

    // ---- pass 2: layout with a counter prefix at each leader -------------
    // Two address maps: `map_target` sends a block start to its counter
    // prefix (so branches into the block execute the counter), while
    // `map_insn` sends each instruction to its own new position (for
    // PC-relative encoding).
    let mut map_target: HashMap<u32, u32> = HashMap::new();
    let mut map_insn: HashMap<u32, u32> = HashMap::new();
    let mut new_addr = text.0;
    let mut addr = text.0;
    let mut counters: BTreeMap<u32, u32> = BTreeMap::new();
    // Counters live after the original data (same convention as EEL).
    let counter_base = image.data_end().next_multiple_of(8);
    let mut next_counter = 0u32;
    let mut prev_was_cti = false;
    while addr < text.1 {
        let is_data = table_words.contains(&addr);
        map_target.insert(addr, new_addr);
        // No counter between a transfer and its delay slot.
        if leaders.contains(&addr) && !is_data && !prev_was_cti {
            counters.insert(addr, counter_base + 4 * next_counter);
            next_counter += 1;
            new_addr += 4 * PREFIX_WORDS;
        }
        map_insn.insert(addr, new_addr);
        new_addr += 4;
        prev_was_cti = !is_data && decode(word_of(addr)).is_delayed();
        addr += 4;
    }

    // ---- pass 3: emit ------------------------------------------------------
    let mut out: Vec<u8> = Vec::with_capacity((new_addr - text.0) as usize);
    let emit = |out: &mut Vec<u8>, w: u32| out.extend_from_slice(&w.to_be_bytes());
    let mut addr = text.0;
    let mut prev_was_cti = false;
    while addr < text.1 {
        let here = map_insn[&addr];
        let is_data = table_words.contains(&addr);
        if let Some(&counter) = counters.get(&addr) {
            if !prev_was_cti {
                // sethi %hi(c), %g6 ; ld [%g6+%lo], %g7 ; add ; st
                let lo = Src2::Imm(eel_isa::lo10(counter) as i32);
                emit(&mut out, Builder::sethi_hi(Reg(6), counter).word);
                emit(&mut out, Builder::ld(Reg(7), Reg(6), lo).word);
                emit(&mut out, Builder::add(Reg(7), Reg(7), Src2::Imm(1)).word);
                emit(&mut out, Builder::st(Reg(7), Reg(6), lo).word);
            }
        }
        if is_data {
            // Dispatch-table word: remap the code address it holds.
            let t = word_of(addr);
            let patched = *map_target.get(&t).unwrap_or(&t);
            emit(&mut out, patched);
            prev_was_cti = false;
            addr += 4;
            continue;
        }
        let insn = decode(word_of(addr));
        let word = match insn.op {
            Op::Branch {
                cond,
                annul,
                disp22,
                fp,
            } => {
                let t = addr.wrapping_add((disp22 as u32) << 2);
                let new_t = *map_target.get(&t).unwrap_or(&t);
                eel_isa::encode(&Op::Branch {
                    cond,
                    annul,
                    disp22: (new_t.wrapping_sub(here) as i32) >> 2,
                    fp,
                })
            }
            Op::Call { disp30 } => {
                let t = addr.wrapping_add((disp30 as u32) << 2);
                let new_t = *map_target.get(&t).unwrap_or(&t);
                eel_isa::encode(&Op::Call {
                    disp30: (new_t.wrapping_sub(here) as i32) >> 2,
                })
            }
            Op::Sethi { rd, .. } => {
                // Function-pointer / table-base materialization: patch
                // `sethi`/`or` pairs that build a text address.
                match sethi_or_text_address(&image, text, addr) {
                    Some(value) => {
                        let new_v = *map_target.get(&value).unwrap_or(&value);
                        Builder::sethi_hi(rd, new_v).word
                    }
                    None => insn.word,
                }
            }
            Op::Alu {
                op: eel_isa::AluOp::Or,
                cc: false,
                rd,
                rs1,
                src2: Src2::Imm(_),
            } if rd == rs1 && addr >= text.0 + 4 => {
                // The `or` half of a set pair.
                match sethi_or_text_address(&image, text, addr - 4) {
                    Some(value)
                        if {
                            let prev = decode(word_of(addr - 4));
                            matches!(prev.op, Op::Sethi { rd: prd, .. } if prd == rd)
                        } =>
                    {
                        let new_v = *map_target.get(&value).unwrap_or(&value);
                        Builder::or_lo(rd, rd, new_v).word
                    }
                    _ => insn.word,
                }
            }
            _ => insn.word,
        };
        emit(&mut out, word);
        prev_was_cti = insn.is_delayed();
        addr += 4;
    }

    // ---- assemble the output image -----------------------------------------
    let mut data = image.data.clone();
    data.extend(std::iter::repeat_n(0, image.bss_size as usize));
    let pad = (counter_base - (image.data_addr + data.len() as u32)) as usize;
    data.extend(std::iter::repeat_n(0, pad + 4 * next_counter as usize));

    let mut symbols: Vec<Symbol> = Vec::new();
    for s in &image.symbols {
        let mut s = s.clone();
        if let Some(&n) = map_target.get(&s.value) {
            s.value = n;
        }
        symbols.push(s);
    }

    let edited = Image {
        entry: *map_target.get(&image.entry).unwrap_or(&image.entry),
        text_addr: text.0,
        text: out,
        data_addr: image.data_addr,
        data,
        bss_size: 0,
        symbols,
        machine: image.machine,
    };
    edited
        .validate()
        .map_err(|e| ToolError::Unsupported(e.to_string()))?;
    Ok(Qpt1Profiled {
        image: edited,
        counters,
    })
}

/// The single dispatch pattern qpt1 recognizes: within the 8 preceding
/// instructions, `sethi`+`or` building the table base feeding
/// `ld [base + idx]`, plus a `cmp idx, N; bgeu` bound. Returns
/// `(table, entries)`.
fn match_dispatch_pattern(image: &Image, text: (u32, u32), jump: u32) -> Option<(u32, u32)> {
    // Find the load feeding the jump.
    let Op::Jmpl {
        rs1: jreg,
        src2: Src2::Imm(0),
        ..
    } = decode(image.word_at(jump)?).op
    else {
        return None;
    };
    let mut table: Option<u32> = None;
    let mut bound: Option<u32> = None;
    let mut a = jump;
    for _ in 0..8 {
        if a < text.0 + 4 {
            break;
        }
        a -= 4;
        let insn = decode(image.word_at(a)?);
        match insn.op {
            Op::Load { rd, rs1, .. } if rd == jreg => {
                // base register must be set by a sethi/or just above.
                let mut b = a;
                for _ in 0..4 {
                    if b < text.0 + 4 {
                        break;
                    }
                    b -= 4;
                    if let Some(v) = sethi_or_text_address(image, text, b) {
                        if decode(image.word_at(b)?).writes().contains(rs1) {
                            table = Some(v);
                            break;
                        }
                    }
                }
            }
            Op::Branch {
                cond: Cond::CarryClear | Cond::Gtu,
                ..
            } if a >= text.0 + 4 => {
                if let Op::Alu {
                    op: eel_isa::AluOp::Sub,
                    cc: true,
                    rd: Reg::G0,
                    src2: Src2::Imm(k),
                    ..
                } = decode(image.word_at(a - 4)?).op
                {
                    if k > 0 {
                        bound = Some(k as u32);
                    }
                }
            }
            _ => {}
        }
    }
    let table = table?;
    let count = bound.or_else(|| {
        // Scan fallback: consecutive words holding text addresses.
        let mut n = 0;
        while n < 1024 {
            match image.word_at(table + 4 * n) {
                Some(w) if w % 4 == 0 && w >= text.0 && w < text.1 => n += 1,
                _ => break,
            }
        }
        (n > 0).then_some(n)
    })?;
    Some((table, count))
}

/// If `addr` holds `sethi %hi(V), r` followed by `or r, %lo(V), r` and V
/// is a text address, returns V.
fn sethi_or_text_address(image: &Image, text: (u32, u32), addr: u32) -> Option<u32> {
    let hi = decode(image.word_at(addr)?);
    let Op::Sethi { rd, imm22 } = hi.op else {
        return None;
    };
    let lo = decode(image.word_at(addr + 4)?);
    let Op::Alu {
        op: eel_isa::AluOp::Or,
        cc: false,
        rd: ord,
        rs1,
        src2: Src2::Imm(v),
    } = lo.op
    else {
        return None;
    };
    if ord != rd || rs1 != rd || v < 0 {
        return None;
    }
    let value = (imm22 << 10) | v as u32;
    (value.is_multiple_of(4) && value >= text.0 && value < text.1).then_some(value)
}

/// Reads counters back from a finished machine.
pub fn read_counters(
    profiled: &Qpt1Profiled,
    machine: &mut eel_emu::Machine,
) -> BTreeMap<u32, u32> {
    profiled
        .counters
        .iter()
        .map(|(&site, &c)| (site, machine.read_word(c)))
        .collect()
}

/// This module's own source, for the tool-size comparison (Table 1).
pub const SOURCE: &str = include_str!("qpt1.rs");

#[allow(unused)]
fn _insn_is_cti(i: Insn) -> bool {
    matches!(
        i.category(),
        Category::Branch
            | Category::Call
            | Category::IndirectCall
            | Category::IndirectJump
            | Category::Return
    )
}
