//! `qpt` — the profiling CLI (the paper's tool, end to end).
//!
//! ```text
//! qpt IN.wef [-o OUT.wef] [--blocks|--edges|--entries] [--run] [--trace FILE]
//! ```
//!
//! With `--run`, executes the instrumented program in the emulator and
//! prints the non-zero counters as a profile.
//!
//! The image's machine tag picks the instrumenter: SPARC images take
//! the full qpt2 edge/block/entry placement; other machines take the
//! generic per-block counters of
//! [`eel_core::instrument_block_counters`] (`--blocks` only).

use eel_exe::Image;
use eel_tools::cli::Cli;
use eel_tools::obs_cli::ObsSession;
use eel_tools::qpt2::{instrument, Granularity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let mut cli = match Cli::new(
        "qpt",
        "IN.wef [-o OUT.wef] [--blocks|--edges|--entries] [--run] [--trace FILE]",
    ) {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input = None;
    let mut output = None;
    let mut granularity = Granularity::Edges;
    let mut run = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "-o" => {
                output = match cli.value("-o") {
                    Ok(o) => Some(o),
                    Err(code) => return code,
                }
            }
            "--blocks" => granularity = Granularity::Blocks,
            "--edges" => granularity = Granularity::Edges,
            "--entries" => granularity = Granularity::Entries,
            "--run" => run = true,
            "--trace" => match cli.value("--trace") {
                Ok(path) => obs.set_trace_path(&path),
                Err(code) => return code,
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => return cli.fail(format_args!("cannot read {input}: {e}")),
    };
    if eel_core::uses_generic_pipeline(image.machine) {
        if !matches!(granularity, Granularity::Blocks) {
            return cli.fail(format_args!(
                "a {} image supports --blocks only (the generic instrumenter places \
                 per-block counters)",
                image.machine.name()
            ));
        }
        let (edited, counters) = match eel_core::instrument_block_counters(&image) {
            Ok(r) => r,
            Err(e) => return cli.fail(e),
        };
        eprintln!("qpt: instrumented {} blocks", counters.len());
        if let Some(out) = &output {
            if let Err(e) = edited.write_file(out) {
                return cli.fail(format_args!("cannot write {out}: {e}"));
            }
        }
        if run {
            let mut machine = match eel_emu::AnyMachine::load(&edited) {
                Ok(m) => m,
                Err(e) => return cli.fail(e),
            };
            match machine.run() {
                Ok(outcome) => {
                    println!("# exit code: {}", outcome.exit_code);
                    println!("# cycles: {}", outcome.cycles);
                    let mut rows: Vec<(u32, u32)> = counters
                        .iter()
                        .map(|c| (machine.read_word(c.counter_addr), c.orig_start))
                        .filter(|(c, _)| *c > 0)
                        .collect();
                    rows.sort_by_key(|row| std::cmp::Reverse(row.0));
                    println!("{:>12}  block", "count");
                    for (c, addr) in rows {
                        println!("{c:>12}  {addr:#010x}");
                    }
                }
                Err(e) => return cli.fail(format_args!("run failed: {e}")),
            }
        }
        obs.finish("qpt");
        return ExitCode::SUCCESS;
    }
    let profiled = match instrument(image, granularity) {
        Ok(p) => p,
        Err(e) => return cli.fail(e),
    };
    eprintln!("qpt: instrumented {} sites", profiled.counters.len());
    if let Some(out) = &output {
        if let Err(e) = profiled.image.write_file(out) {
            return cli.fail(format_args!("cannot write {out}: {e}"));
        }
    }
    if run {
        match profiled.run() {
            Ok(result) => {
                println!("# exit code: {}", result.outcome.exit_code);
                println!("# cycles: {}", result.outcome.cycles);
                let mut rows: Vec<_> = result
                    .counts
                    .iter()
                    .filter(|(_, &c)| c > 0)
                    .map(|((r, site, idx), &c)| (c, r.clone(), *site, *idx))
                    .collect();
                rows.sort_by_key(|row| std::cmp::Reverse(row.0));
                println!("{:>12}  {:<20} {:>10}  edge", "count", "routine", "site");
                for (c, r, site, idx) in rows {
                    println!("{c:>12}  {r:<20} {site:>#10x}  {idx}");
                }
            }
            Err(e) => return cli.fail(format_args!("run failed: {e}")),
        }
    }
    obs.finish("qpt");
    ExitCode::SUCCESS
}
