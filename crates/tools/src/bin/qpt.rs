//! `qpt` — the profiling CLI (the paper's tool, end to end).
//!
//! ```text
//! qpt IN.wef [-o OUT.wef] [--blocks|--edges|--entries] [--run] [--trace FILE]
//! ```
//!
//! With `--run`, executes the instrumented program in the emulator and
//! prints the non-zero counters as a profile.

use eel_exe::Image;
use eel_tools::obs_cli::ObsSession;
use eel_tools::qpt2::{instrument, Granularity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut granularity = Granularity::Edges;
    let mut run = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
            }
            "--blocks" => granularity = Granularity::Blocks,
            "--edges" => granularity = Granularity::Edges,
            "--entries" => granularity = Granularity::Entries,
            "--run" => run = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => obs.set_trace_path(path),
                    None => {
                        eprintln!("qpt: --trace needs a file argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: qpt IN.wef [-o OUT.wef] [--blocks|--edges|--entries] [--run] [--trace FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("qpt: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("qpt: no input file (see --help)");
        return ExitCode::FAILURE;
    };
    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("qpt: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profiled = match instrument(image, granularity) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("qpt: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("qpt: instrumented {} sites", profiled.counters.len());
    if let Some(out) = &output {
        if let Err(e) = profiled.image.write_file(out) {
            eprintln!("qpt: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if run {
        match profiled.run() {
            Ok(result) => {
                println!("# exit code: {}", result.outcome.exit_code);
                println!("# cycles: {}", result.outcome.cycles);
                let mut rows: Vec<_> = result
                    .counts
                    .iter()
                    .filter(|(_, &c)| c > 0)
                    .map(|((r, site, idx), &c)| (c, r.clone(), *site, *idx))
                    .collect();
                rows.sort_by_key(|row| std::cmp::Reverse(row.0));
                println!("{:>12}  {:<20} {:>10}  edge", "count", "routine", "site");
                for (c, r, site, idx) in rows {
                    println!("{c:>12}  {r:<20} {site:>#10x}  {idx}");
                }
            }
            Err(e) => {
                eprintln!("qpt: run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    obs.finish("qpt");
    ExitCode::SUCCESS
}
