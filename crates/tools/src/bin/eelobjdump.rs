//! `eelobjdump` — disassemble and analyze a WEF executable.
//!
//! ```text
//! eelobjdump PROGRAM.wef [--cfg] [--symbols] [--trace FILE]
//! ```
//!
//! Default: a disassembly listing with routine headers and data-range
//! annotations (dispatch tables). `--cfg` prints per-routine CFG
//! summaries; `--symbols` dumps the symbol table; `--trace FILE` writes
//! an eel-obs trace of the analysis.

use eel_core::Executable;
use eel_exe::Image;
use eel_tools::cli::Cli;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let mut cli = match Cli::new(
        "eelobjdump",
        "PROGRAM.wef [--cfg] [--symbols] [--trace FILE]",
    ) {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input = None;
    let mut show_cfg = false;
    let mut show_symbols = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--cfg" => show_cfg = true,
            "--symbols" => show_symbols = true,
            "--trace" => match cli.value("--trace") {
                Ok(path) => obs.set_trace_path(&path),
                Err(code) => return code,
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => return cli.fail(format_args!("cannot read {input}: {e}")),
    };

    if show_symbols {
        println!("SYMBOL TABLE:");
        for s in &image.symbols {
            println!(
                "  {:#010x} {:<9} {:<6} {}",
                s.value,
                format!("{:?}", s.kind).to_lowercase(),
                if s.global { "global" } else { "local" },
                s.name
            );
        }
        println!();
    }

    let mut exec = match Executable::from_image(image) {
        Ok(e) => e,
        Err(e) => return cli.fail(e),
    };
    if let Err(e) = exec.read_contents() {
        return cli.fail(e);
    }
    if exec.discovery_source() == eel_core::DiscoverySource::Inferred {
        println!("; discovery: inferred (no symbol table; routine names are synthetic)");
        println!();
    }
    let generic = eel_core::uses_generic_pipeline(exec.image().machine);
    if generic {
        println!("; machine: {}", exec.image().machine.name());
        println!();
    }

    for id in exec.all_routine_ids() {
        let routine = exec.routine(id).clone();
        if generic {
            println!(
                "{:#010x} <{}>{}:",
                routine.start(),
                routine.name(),
                if routine.is_hidden() { " (hidden)" } else { "" }
            );
            let image = exec.image();
            if show_cfg {
                match eel_core::generic_cfg(image, &routine) {
                    Ok(cfg) => {
                        let edges: usize = cfg.blocks.iter().map(|b| b.succs.len()).sum();
                        println!("    ; blocks={} edges={edges}", cfg.blocks.len());
                    }
                    Err(e) => eprintln!("eelobjdump: {}: {e}", routine.name()),
                }
            }
            for line in eel_core::generic_disasm(image, &routine) {
                println!("  {line}");
            }
            println!();
            continue;
        }
        let cfg = match exec.build_cfg(id) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("eelobjdump: {}: {e}", routine.name());
                continue;
            }
        };
        println!(
            "{:#010x} <{}>{}:",
            routine.start(),
            routine.name(),
            if routine.is_hidden() { " (hidden)" } else { "" }
        );
        if show_cfg {
            let s = cfg.stats();
            println!(
                "    ; blocks={} (delay={} surrogate={}) edges={} uneditable={:.0}%{}",
                s.total_blocks(),
                s.delay_slot_blocks,
                s.call_surrogate_blocks,
                s.edges,
                100.0 * s.uneditable_edge_fraction(),
                if cfg.is_incomplete() {
                    " INCOMPLETE"
                } else {
                    ""
                },
            );
        }
        let image = exec.image();
        let mut addr = routine.start();
        while addr < routine.end() {
            let word = image.word_at(addr).unwrap_or(0);
            let in_table = cfg
                .data_ranges()
                .iter()
                .any(|r| addr >= r.start && addr < r.end);
            if in_table {
                println!("  {addr:#010x}:  {word:08x}    .word {word:#010x}  ; dispatch table");
            } else {
                println!("  {addr:#010x}:  {word:08x}    {}", eel_isa::decode(word));
            }
            addr += 4;
        }
        println!();
    }
    obs.finish("eelobjdump");
    ExitCode::SUCCESS
}
