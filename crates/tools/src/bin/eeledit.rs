//! `eeledit` — interactive and scripted executable patching.
//!
//! ```text
//! eeledit FILE.wef [--script FILE.eel] [-o OUT.wef]
//! ```
//!
//! Opens an edit session over `FILE.wef`. With `--script`, the command
//! script runs as a batch: every reply is printed to stdout and the
//! session exits non-zero on the first error. Without it, `eeledit`
//! reads commands from stdin as a REPL — multi-line `{ ... }` bodies
//! are buffered until the braces balance, `quit`/`exit` (or EOF) leave
//! the loop, and a failed command reports its error and leaves the
//! session's pending edits untouched.
//!
//! `apply` (explicit, or implicit at the end of a `--script` run that
//! logged edits but never applied) writes the edited image to the path
//! given with `-o`; without `-o` the apply report is printed but the
//! image is discarded. `dry-run` never writes — it prints the same
//! report `apply` would, computed on a scratch copy.
//!
//! See `docs/EDITING.md` for the command grammar and worked examples.

use eel_edit::{statement_complete, EditSession, Reply};
use eel_exe::Image;
use eel_tools::cli::Cli;
use std::io::{BufRead as _, IsTerminal as _, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut cli = match Cli::new("eeledit", "FILE.wef [--script FILE.eel] [-o OUT.wef]") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input: Option<String> = None;
    let mut script: Option<String> = None;
    let mut output: Option<String> = None;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--script" => {
                script = match cli.value("--script") {
                    Ok(s) => Some(s),
                    Err(code) => return code,
                }
            }
            "-o" => {
                output = match cli.value("-o") {
                    Ok(o) => Some(o),
                    Err(code) => return code,
                }
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(input) => input,
        Err(code) => return code,
    };
    let image = match Image::read_file(&input) {
        Ok(image) => image,
        Err(e) => return cli.fail(format_args!("cannot load {input}: {e}")),
    };
    if eel_core::uses_generic_pipeline(image.machine) {
        return cli.fail(format_args!(
            "{input} is a {} image; the edit-command engine is sparc-only \
             (qpt --blocks places generic block counters)",
            image.machine.name()
        ));
    }
    let mut session = match EditSession::new(Arc::new(image)) {
        Ok(session) => session,
        Err(e) => return cli.fail(format_args!("cannot analyze {input}: {e}")),
    };

    match script {
        Some(path) => run_batch(&cli, &mut session, &path, output.as_deref()),
        None => run_repl(&cli, &mut session, output.as_deref()),
    }
}

/// Batch mode: the whole script parses up front, then replays through
/// the session; edits left pending at the end are applied implicitly so
/// a script of bare edit commands still produces an image.
fn run_batch(cli: &Cli, session: &mut EditSession, path: &str, output: Option<&str>) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => return cli.fail(format_args!("cannot read {path}: {e}")),
    };
    let replies = match session.run_script(&src) {
        Ok(replies) => replies,
        Err(e) => return cli.fail(e),
    };
    let mut applied: Option<Image> = None;
    for reply in &replies {
        println!("{}", reply.render());
        if let Reply::Applied(result) = reply {
            applied = Some(result.image.clone());
        }
    }
    if applied.is_none() && session.pending() > 0 {
        match session.apply() {
            Ok(result) => {
                println!("{}", Reply::Applied(result.clone()).render());
                applied = Some(result.image);
            }
            Err(e) => return cli.fail(e),
        }
    }
    write_applied(cli, applied.as_ref(), output)
}

/// Interactive mode: statements are buffered until their braces
/// balance, so multi-line `insert-before f { ... }` bodies work the way
/// they do in script files.
fn run_repl(cli: &Cli, session: &mut EditSession, output: Option<&str>) -> ExitCode {
    let interactive = std::io::stdin().is_terminal();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut applied: Option<Image> = None;
    if interactive {
        println!("eeledit: {} routines; try `list` (quit with `quit`)", {
            match session.exec_line("list") {
                Ok(Reply::Text(text)) => text.lines().count().saturating_sub(1),
                _ => 0,
            }
        });
    }
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "eel> " } else { "...> " });
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => return cli.fail(format_args!("stdin: {e}")),
        }
        if buffer.is_empty() && matches!(line.trim(), "quit" | "exit") {
            break;
        }
        buffer.push_str(&line);
        if !statement_complete(&buffer) {
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        if stmt.trim().is_empty() {
            continue;
        }
        match session.exec_line(&stmt) {
            Ok(reply) => {
                println!("{}", reply.render());
                if let Reply::Applied(result) = reply {
                    applied = Some(result.image);
                }
            }
            Err(e) => eprintln!("eeledit: {e}"),
        }
    }
    write_applied(cli, applied.as_ref(), output)
}

fn write_applied(cli: &Cli, applied: Option<&Image>, output: Option<&str>) -> ExitCode {
    match (applied, output) {
        (Some(image), Some(out)) => match image.write_file(out) {
            Ok(()) => {
                eprintln!("eeledit: wrote {out}");
                ExitCode::SUCCESS
            }
            Err(e) => cli.fail(format_args!("cannot write {out}: {e}")),
        },
        (Some(_), None) => {
            eprintln!("eeledit: applied image discarded (no -o OUT.wef given)");
            ExitCode::SUCCESS
        }
        (None, Some(out)) => {
            eprintln!("eeledit: nothing applied; {out} not written");
            ExitCode::SUCCESS
        }
        (None, None) => ExitCode::SUCCESS,
    }
}
