//! `wisc` — the Wisc compiler CLI.
//!
//! ```text
//! wisc INPUT.wisc -o OUT.wef [--machine sparc|mips] [--sunpro] [--no-fill]
//!      [--strip] [--emit-asm] [--mutate-routine N] [--trace FILE]
//! ```
//!
//! `--machine` picks the code generator (default sparc); the output
//! image's WEF header carries the chosen tag, which is what every
//! downstream consumer — eel-serve, the emulator, the analysis tools —
//! dispatches on. `--mutate-routine N` emits a *near-duplicate twin*:
//! after compiling, one ALU immediate in the N-th eligible routine
//! (modulo the eligible count) is bumped, so the output differs from
//! the unmutated build in exactly one word — the workload for
//! exercising eel-serve's per-routine fragment cache.

use eel_cc::{compile_str, compile_to_asm, Options, Personality};
use eel_exe::Machine;
use eel_tools::cli::Cli;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let mut cli = match Cli::new(
        "wisc",
        "INPUT.wisc -o OUT.wef [--machine sparc|mips] [--sunpro] [--no-fill] [--strip] \
         [--emit-asm] [--mutate-routine N] [--trace FILE]",
    ) {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input = None;
    let mut output = None;
    let mut options = Options::default();
    let mut emit_asm = false;
    let mut mutate: Option<usize> = None;
    let mut machine = Machine::Sparc;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "-o" => {
                output = match cli.value("-o") {
                    Ok(o) => Some(o),
                    Err(code) => return code,
                }
            }
            "--machine" => match cli.value("--machine") {
                Ok(name) => match Machine::from_name(&name) {
                    Some(m) => machine = m,
                    None => return cli.fail(format_args!("unknown machine {name:?}")),
                },
                Err(code) => return code,
            },
            "--sunpro" => options.personality = Personality::SunPro,
            "--no-fill" => options.fill_delay_slots = false,
            "--strip" => options.strip = true,
            "--emit-asm" => emit_asm = true,
            "--mutate-routine" => match cli.value("--mutate-routine") {
                Ok(n) => match n.parse() {
                    Ok(n) => mutate = Some(n),
                    Err(_) => return cli.fail(format_args!("bad routine index {n:?}")),
                },
                Err(code) => return code,
            },
            "--trace" => match cli.value("--trace") {
                Ok(path) => obs.set_trace_path(&path),
                Err(code) => return code,
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => return cli.fail(format_args!("cannot read {input}: {e}")),
    };
    if emit_asm {
        if machine != Machine::Sparc {
            return cli.fail(format_args!(
                "--emit-asm is sparc-only (no {} assembly printer yet)",
                machine.name()
            ));
        }
        match compile_to_asm(&source, &options) {
            Ok(asm) => {
                print!("{asm}");
                obs.finish("wisc");
                return ExitCode::SUCCESS;
            }
            Err(e) => return cli.fail(e),
        }
    }
    let mut image = match machine {
        Machine::Sparc => match compile_str(&source, &options) {
            Ok(i) => i,
            Err(e) => return cli.fail(e),
        },
        other => {
            let program = match eel_cc::parse(&source) {
                Ok(p) => p,
                Err(e) => return cli.fail(e),
            };
            let compiled = match other {
                Machine::Mips => eel_progen::compile_mips(&program),
                _ => Err(format!(
                    "no {} code generator yet (add one following docs/MACHINES.md)",
                    other.name()
                )),
            };
            match compiled {
                Ok(mut i) => {
                    if options.strip {
                        i.strip();
                    }
                    i
                }
                Err(e) => return cli.fail(e),
            }
        }
    };
    if let Some(k) = mutate {
        match eel_progen::mutate_routine(&mut image, k) {
            Some((name, addr)) => {
                eprintln!("wisc: mutated one ALU immediate in {name} at {addr:#010x}");
            }
            None => return cli.fail("no routine with an ALU immediate to mutate"),
        }
    }
    let output = output.unwrap_or_else(|| format!("{input}.wef"));
    if let Err(e) = image.write_file(&output) {
        return cli.fail(format_args!("cannot write {output}: {e}"));
    }
    eprintln!(
        "wisc: {} -> {} ({}, {} text bytes, {} routines)",
        input,
        output,
        image.machine.name(),
        image.text.len(),
        image
            .symbols
            .iter()
            .filter(|s| s.kind == eel_exe::SymbolKind::Routine)
            .count()
    );
    obs.finish("wisc");
    ExitCode::SUCCESS
}
