//! `wisc` — the Wisc compiler CLI.
//!
//! ```text
//! wisc INPUT.wisc -o OUT.wef [--sunpro] [--no-fill] [--strip] [--emit-asm] [--trace FILE]
//! ```

use eel_cc::{compile_str, compile_to_asm, Options, Personality};
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut options = Options::default();
    let mut emit_asm = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
            }
            "--sunpro" => options.personality = Personality::SunPro,
            "--no-fill" => options.fill_delay_slots = false,
            "--strip" => options.strip = true,
            "--emit-asm" => emit_asm = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => obs.set_trace_path(path),
                    None => {
                        eprintln!("wisc: --trace needs a file argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: wisc INPUT.wisc -o OUT.wef [--sunpro] [--no-fill] [--strip] \
                     [--emit-asm] [--trace FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("wisc: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("wisc: no input file (see --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wisc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if emit_asm {
        match compile_to_asm(&source, &options) {
            Ok(asm) => {
                print!("{asm}");
                obs.finish("wisc");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("wisc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let image = match compile_str(&source, &options) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("wisc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let output = output.unwrap_or_else(|| format!("{input}.wef"));
    if let Err(e) = image.write_file(&output) {
        eprintln!("wisc: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wisc: {} -> {} ({} text bytes, {} routines)",
        input,
        output,
        image.text.len(),
        image
            .symbols
            .iter()
            .filter(|s| s.kind == eel_exe::SymbolKind::Routine)
            .count()
    );
    obs.finish("wisc");
    ExitCode::SUCCESS
}
