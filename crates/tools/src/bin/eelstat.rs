//! `eelstat` — run the full EEL analysis pipeline over an executable and
//! report where the time goes.
//!
//! ```text
//! eelstat PROGRAM.wef [--run] [--trace FILE]
//! ```
//!
//! Loads the WEF image, analyzes it (`read_contents`), builds and lays
//! out every routine (`write_edited`), then prints the eel-obs report:
//! the span tree (load → CFG build → normalize → liveness → layout) with
//! per-phase wall times, plus the block / edge / interned-instruction
//! counters. `--run` additionally executes the program in the emulator so
//! the dynamic `emu.*` counters appear.
//!
//! Unlike the other tools, recording defaults to *on* (summary mode) when
//! `EEL_OBS` is unset — reporting is this tool's whole job. `EEL_OBS`
//! still selects the format, and `--trace FILE` redirects the report to a
//! Chrome `trace_event` file (or JSON lines under `EEL_OBS=json`).

use eel_core::Executable;
use eel_emu::AnyMachine;
use eel_exe::Image;
use eel_tools::cli::Cli;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    if std::env::var_os("EEL_OBS").is_none() {
        eel_obs::set_mode(eel_obs::Mode::Summary);
    }
    let mut cli = match Cli::new("eelstat", "PROGRAM.wef [--run] [--trace FILE]") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input = None;
    let mut run = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--run" => run = true,
            "--trace" => match cli.value("--trace") {
                Ok(path) => obs.set_trace_path(&path),
                Err(code) => return code,
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(i) => i,
        Err(code) => return code,
    };

    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => return cli.fail(format_args!("cannot read {input}: {e}")),
    };
    let mut exec = match Executable::from_image(image.clone()) {
        Ok(e) => e,
        Err(e) => return cli.fail(e),
    };
    if let Err(e) = exec.read_contents() {
        return cli.fail(e);
    }
    let routines = exec.all_routine_ids().len();
    // Per-routine content keys (the fragment-cache addresses), so the
    // report includes the core.routine_key.* counters.
    let keys = exec.routine_keys();
    let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
    // Drive the whole pipeline. SPARC: CFG build + delay-slot
    // normalization, liveness, and layout for every routine (discovery
    // included). Other machines: the generic description-derived CFG
    // and liveness passes (the `core.generic.*` spans).
    if eel_core::uses_generic_pipeline(image.machine) {
        for id in exec.all_routine_ids() {
            let routine = exec.routine(id).clone();
            match eel_core::generic_cfg(exec.image(), &routine) {
                Ok(cfg) => {
                    let _ = eel_core::generic_liveness(exec.image(), &cfg);
                }
                Err(e) => eprintln!("eelstat: {}: {e}", routine.name()),
            }
        }
    } else if let Err(e) = exec.write_edited() {
        return cli.fail(e);
    }
    if run {
        let outcome = AnyMachine::load(&image).and_then(|mut m| m.run());
        match outcome {
            Ok(o) => eprintln!("eelstat: ran {input}: exit code {}", o.exit_code),
            Err(e) => return cli.fail(format_args!("run failed: {e}")),
        }
    }
    eprintln!(
        "eelstat: analyzed {input}: {routines} routines ({} distinct content keys, \
         machine: {}, discovery: {})",
        distinct.len(),
        image.machine.name(),
        exec.discovery_source().as_str()
    );
    if let Some(report) = obs.finish_report("eelstat") {
        print!("{report}");
    }
    ExitCode::SUCCESS
}
