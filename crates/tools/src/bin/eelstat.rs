//! `eelstat` — run the full EEL analysis pipeline over an executable and
//! report where the time goes.
//!
//! ```text
//! eelstat PROGRAM.wef [--run] [--trace FILE]
//! ```
//!
//! Loads the WEF image, analyzes it (`read_contents`), builds and lays
//! out every routine (`write_edited`), then prints the eel-obs report:
//! the span tree (load → CFG build → normalize → liveness → layout) with
//! per-phase wall times, plus the block / edge / interned-instruction
//! counters. `--run` additionally executes the program in the emulator so
//! the dynamic `emu.*` counters appear.
//!
//! Unlike the other tools, recording defaults to *on* (summary mode) when
//! `EEL_OBS` is unset — reporting is this tool's whole job. `EEL_OBS`
//! still selects the format, and `--trace FILE` redirects the report to a
//! Chrome `trace_event` file (or JSON lines under `EEL_OBS=json`).

use eel_core::Executable;
use eel_emu::Machine;
use eel_exe::Image;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    if std::env::var_os("EEL_OBS").is_none() {
        eel_obs::set_mode(eel_obs::Mode::Summary);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut run = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--run" => run = true,
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => obs.set_trace_path(path),
                    None => {
                        eprintln!("eelstat: --trace needs a file argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                eprintln!("usage: eelstat PROGRAM.wef [--run] [--trace FILE]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("eelstat: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("eelstat: no input file (see --help)");
        return ExitCode::FAILURE;
    };

    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("eelstat: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut exec = match Executable::from_image(image.clone()) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("eelstat: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = exec.read_contents() {
        eprintln!("eelstat: {e}");
        return ExitCode::FAILURE;
    }
    let routines = exec.all_routine_ids().len();
    // Drive the whole pipeline: CFG build + delay-slot normalization,
    // liveness, and layout for every routine (discovery included).
    if let Err(e) = exec.write_edited() {
        eprintln!("eelstat: {e}");
        return ExitCode::FAILURE;
    }
    if run {
        let outcome = Machine::load(&image).and_then(|mut m| m.run());
        match outcome {
            Ok(o) => eprintln!("eelstat: ran {input}: exit code {}", o.exit_code),
            Err(e) => {
                eprintln!("eelstat: run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("eelstat: analyzed {input}: {routines} routines");
    if let Some(report) = obs.finish_report("eelstat") {
        print!("{report}");
    }
    ExitCode::SUCCESS
}
