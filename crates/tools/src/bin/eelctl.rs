//! `eelctl` — command-line client for the eel-serve daemon.
//!
//! ```text
//! eelctl OP [FILE.wef ...] [--addr HOST:PORT] [--path] [--batch]
//!        [--script FILE.eel] [-o OUT.wef]
//! ```
//!
//! `OP` is one of the analysis operations (`disasm`, `cfg-summary`,
//! `liveness`, `stat`, `instrument`), the write operation (`edit`,
//! which additionally needs `--script FILE.eel` and ships the script
//! with the image so the server runs the edit session), or a control
//! operation (`ping`, `metrics`, `shutdown`). Analysis ops take one or
//! more WEF files —
//! more than one is batch mode, each sent as its own request. By default
//! each request opens its own connection; `--batch` pipelines them all
//! through one persistent session connection (protocol v2), letting the
//! server work on every file concurrently — output order still follows
//! the command line. By default the image bytes travel inline; `--path`
//! sends the (absolute) path for the server to read instead.
//! `instrument` and `edit` write the edited executable to `-o OUT.wef`
//! (single file only); the other ops print text to stdout.
//!
//! The server address comes from `--addr`, else the `EEL_SERVE_ADDR`
//! environment variable, else `127.0.0.1:7099`. Alternatively
//! `--cluster HOST:PORT,HOST:PORT,...` routes each request across a
//! fleet of daemons by consistent hash of the image it operates on
//! (see `eel_serve::ClusterClient`): the same image always lands on the
//! same shard (whose caches stay hot for it), an unreachable shard
//! fails over to the next on the ring, and the status line reports
//! which shard was routed. Control ops under `--cluster` fan out to
//! **every** shard. Cache status for each
//! request goes to stderr — `cache miss` (computed fresh), `cache hit`
//! (served from the server's memory LRU or deduped onto an in-flight
//! twin), or `cache hit (disk)` (loaded from the daemon's `--cache-dir`
//! spill tier, e.g. after a restart) — so scripts can check dedupe and
//! warm-restart behavior without disturbing the payload on stdout. A
//! computed analysis response additionally reports per-routine fragment
//! reuse as `(fragments H/T)`: H of the image's T routines were
//! stitched from the daemon's fragment cache instead of re-analyzed.

use eel_serve::{CacheTier, Client, ClusterClient, Payload, Request, Response};
use eel_tools::cli::Cli;
use std::io::Write as _;
use std::process::ExitCode;

const CONTROL_OPS: &[&str] = &["ping", "metrics", "shutdown"];

fn main() -> ExitCode {
    let mut cli = match Cli::new(
        "eelctl",
        "OP [FILE.wef ...] [--addr HOST:PORT | --cluster H:P,H:P,...] [--path] [--batch] [--script FILE.eel] [-o OUT.wef]",
    ) {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut op: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut addr: Option<String> = None;
    let mut cluster_addrs: Option<String> = None;
    let mut by_path = false;
    let mut batch = false;
    let mut script: Option<String> = None;
    let mut output: Option<String> = None;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--addr" => {
                addr = match cli.value("--addr") {
                    Ok(a) => Some(a),
                    Err(code) => return code,
                }
            }
            "--cluster" => {
                cluster_addrs = match cli.value("--cluster") {
                    Ok(c) => Some(c),
                    Err(code) => return code,
                }
            }
            "--path" => by_path = true,
            "--batch" => batch = true,
            "--script" => {
                script = match cli.value("--script") {
                    Ok(s) => Some(s),
                    Err(code) => return code,
                }
            }
            "-o" => {
                output = match cli.value("-o") {
                    Ok(o) => Some(o),
                    Err(code) => return code,
                }
            }
            other if op.is_none() => op = Some(other.to_string()),
            other => files.push(other.to_string()),
        }
    }
    let Some(op) = op else {
        return cli.fail("no operation (see --help)");
    };
    if addr.is_some() && cluster_addrs.is_some() {
        return cli.fail("--addr and --cluster are mutually exclusive");
    }
    let cluster: Option<ClusterClient> = match cluster_addrs {
        Some(list) => {
            let shards: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect();
            if shards.is_empty() {
                return cli.fail("--cluster needs at least one HOST:PORT");
            }
            Some(ClusterClient::connect(shards))
        }
        None => None,
    };
    let addr = addr
        .or_else(|| std::env::var("EEL_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7099".into());
    let client = Client::connect(addr);

    if CONTROL_OPS.contains(&op.as_str()) {
        if !files.is_empty() {
            return cli.fail(format_args!("{op} takes no files"));
        }
        // Control is fleet-wide under --cluster: every shard answers
        // (or reports why it can't), one section per shard.
        if let Some(cluster) = &cluster {
            let many = cluster.addrs().len() > 1;
            let mut failed = false;
            for (shard, result) in cluster.control_each(&op) {
                match result {
                    Ok(Response::Ok { body, .. }) => {
                        if many {
                            println!("==> {shard} <==");
                        }
                        let _ = std::io::stdout().write_all(&body);
                    }
                    Ok(Response::Err(msg)) => {
                        eprintln!("eelctl: {op} {shard}: {msg}");
                        failed = true;
                    }
                    Ok(Response::Busy) => {
                        eprintln!("eelctl: {op} {shard}: server busy, try again");
                        failed = true;
                    }
                    Err(e) => {
                        eprintln!("eelctl: {op} {shard}: request failed: {e}");
                        failed = true;
                    }
                }
            }
            return if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        return match client.control(&op) {
            Ok(Response::Ok { body, .. }) => {
                let _ = std::io::stdout().write_all(&body);
                ExitCode::SUCCESS
            }
            Ok(Response::Err(msg)) => cli.fail(msg),
            Ok(Response::Busy) => cli.fail("server busy"),
            Err(e) => cli.fail(format_args!("request failed: {e}")),
        };
    }

    if files.is_empty() {
        return cli.fail(format_args!("{op} needs at least one WEF file"));
    }
    if output.is_some() && (!matches!(op.as_str(), "instrument" | "edit") || files.len() != 1) {
        return cli.fail("-o applies to instrument/edit with a single file");
    }
    let script = match (op.as_str(), script) {
        ("edit", None) => return cli.fail("edit needs --script FILE.eel"),
        ("edit", Some(path)) => {
            if by_path {
                return cli.fail("edit sends the image inline (drop --path)");
            }
            match std::fs::read_to_string(&path) {
                Ok(src) => Some(src),
                Err(e) => return cli.fail(format_args!("cannot read {path}: {e}")),
            }
        }
        (_, Some(_)) => return cli.fail("--script applies to the edit op"),
        (_, None) => None,
    };
    let mut failed = false;
    let mut payloads: Vec<(&String, Payload)> = Vec::new();
    for file in &files {
        let payload = if let Some(script) = &script {
            match std::fs::read(file) {
                Ok(wef) => Payload::Edit {
                    wef,
                    script: script.clone(),
                },
                Err(e) => {
                    eprintln!("eelctl: cannot read {file}: {e}");
                    failed = true;
                    continue;
                }
            }
        } else if by_path {
            Payload::Path(file.clone())
        } else {
            match std::fs::read(file) {
                Ok(bytes) => Payload::Inline(bytes),
                Err(e) => {
                    eprintln!("eelctl: cannot read {file}: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        payloads.push((file, payload));
    }

    // Under --cluster every request is routed by consistent hash; the
    // status line reports the shard so scripts can check placement.
    let requests: Vec<Request> = payloads
        .iter()
        .map(|(_, payload)| Request {
            op: op.clone(),
            payload: payload.clone(),
        })
        .collect();
    let shard_of = |req: &Request| -> Option<String> {
        cluster
            .as_ref()
            .map(|c| c.addrs()[c.shard_for(req)].clone())
    };

    // One connection per request, or — with --batch — everything
    // pipelined through per-shard sessions (window 0 = server default),
    // responses reordered back to command-line order by the client.
    let responses: Vec<(&String, Option<String>, std::io::Result<Response>)> = if batch {
        let batched = match &cluster {
            Some(c) => c.batch(&requests, 0),
            None => client.batch(&requests, 0),
        };
        match batched {
            Ok(resps) => payloads
                .iter()
                .zip(&requests)
                .zip(resps)
                .map(|(((file, _), req), resp)| (*file, shard_of(req), Ok(resp)))
                .collect(),
            Err(e) => {
                eprintln!("eelctl: batch session failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        payloads
            .iter()
            .zip(&requests)
            .map(|((file, _), req)| {
                let resp = match &cluster {
                    Some(c) => c.request(req),
                    None => client.request(req),
                };
                (*file, shard_of(req), resp)
            })
            .collect()
    };

    for (file, shard, resp) in responses {
        match resp {
            Ok(Response::Ok {
                tier,
                body,
                fragments,
                discovery,
                machine,
            }) => {
                eprintln!(
                    "eelctl: {op} {file}: {}{}{}{}{}",
                    match tier {
                        CacheTier::Computed => "cache miss",
                        CacheTier::Memory => "cache hit",
                        CacheTier::Disk => "cache hit (disk)",
                    },
                    match &shard {
                        Some(s) => format!(" (shard {s})"),
                        None => String::new(),
                    },
                    match fragments {
                        Some((hits, total)) if total > 0 => format!(" (fragments {hits}/{total})"),
                        _ => String::new(),
                    },
                    match discovery {
                        Some(d) => format!(" (discovery {})", d.as_str()),
                        None => String::new(),
                    },
                    match machine {
                        Some(m) => format!(" (machine {})", m.name()),
                        None => String::new(),
                    }
                );
                if let Some(out) = &output {
                    if let Err(e) = std::fs::write(out, &body) {
                        eprintln!("eelctl: cannot write {out}: {e}");
                        failed = true;
                    }
                } else if files.len() > 1 {
                    println!("==> {file} <==");
                    let _ = std::io::stdout().write_all(&body);
                } else {
                    let _ = std::io::stdout().write_all(&body);
                }
            }
            Ok(Response::Err(msg)) => {
                eprintln!("eelctl: {op} {file}: {msg}");
                failed = true;
            }
            Ok(Response::Busy) => {
                eprintln!("eelctl: {op} {file}: server busy, try again");
                failed = true;
            }
            Err(e) => {
                eprintln!("eelctl: {op} {file}: request failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
