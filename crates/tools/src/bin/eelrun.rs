//! `eelrun` — run a WEF executable in the emulator.
//!
//! ```text
//! eelrun PROGRAM.wef [--stats] [--limit N] [--trace FILE]
//! ```
//!
//! The image's WEF machine tag picks the emulator backend (SPARC, or
//! the description-derived MIPS interpreter).

use eel_emu::AnyMachine;
use eel_exe::Image;
use eel_tools::cli::Cli;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let mut cli = match Cli::new("eelrun", "PROGRAM.wef [--stats] [--limit N] [--trace FILE]") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let mut input = None;
    let mut stats = false;
    let mut limit = None;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--limit" => {
                limit = match cli.parsed_value::<u64>("--limit") {
                    Ok(n) => Some(n),
                    Err(code) => return code,
                }
            }
            "--trace" => match cli.value("--trace") {
                Ok(path) => obs.set_trace_path(&path),
                Err(code) => return code,
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => return cli.unexpected(other),
        }
    }
    let input = match cli.required_input(input) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => return cli.fail(format_args!("cannot read {input}: {e}")),
    };
    let mut machine = match AnyMachine::load(&image) {
        Ok(m) => m,
        Err(e) => return cli.fail(e),
    };
    if let Some(n) = limit {
        machine = machine.with_step_limit(n);
    }
    match machine.run() {
        Ok(outcome) => {
            print!("{}", outcome.output_str());
            if stats {
                eprintln!(
                    "cycles={} executed={} loads={} stores={} transfers={}",
                    outcome.cycles,
                    outcome.executed,
                    outcome.loads,
                    outcome.stores,
                    outcome.transfers
                );
            }
            obs.finish("eelrun");
            ExitCode::from((outcome.exit_code & 0xff) as u8)
        }
        Err(e) => cli.fail(e),
    }
}
