//! `eelrun` — run a WEF executable in the emulator.
//!
//! ```text
//! eelrun PROGRAM.wef [--stats] [--limit N] [--trace FILE]
//! ```

use eel_emu::Machine;
use eel_exe::Image;
use eel_tools::obs_cli::ObsSession;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut obs = ObsSession::begin();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut stats = false;
    let mut limit = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => stats = true,
            "--limit" => {
                i += 1;
                limit = args.get(i).and_then(|s| s.parse().ok());
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => obs.set_trace_path(path),
                    None => {
                        eprintln!("eelrun: --trace needs a file argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                eprintln!("usage: eelrun PROGRAM.wef [--stats] [--limit N] [--trace FILE]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("eelrun: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("eelrun: no input file (see --help)");
        return ExitCode::FAILURE;
    };
    let image = match Image::read_file(&input) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("eelrun: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = match Machine::load(&image) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("eelrun: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = limit {
        machine = machine.with_step_limit(n);
    }
    match machine.run() {
        Ok(outcome) => {
            print!("{}", outcome.output_str());
            if stats {
                eprintln!(
                    "cycles={} executed={} loads={} stores={} transfers={}",
                    outcome.cycles,
                    outcome.executed,
                    outcome.loads,
                    outcome.stores,
                    outcome.transfers
                );
            }
            obs.finish("eelrun");
            ExitCode::from((outcome.exit_code & 0xff) as u8)
        }
        Err(e) => {
            eprintln!("eelrun: {e}");
            ExitCode::FAILURE
        }
    }
}
