//! Elsie — a direct-execution architectural simulator front end (paper
//! §5: "Elsie replaces loads, stores, and system calls in a program with
//! simulator calls (using EEL) and then loads the edited executable into
//! the simulator").
//!
//! This reproduction demonstrates the *replacement* editing mode (delete
//! plus insert, not just insert): system calls are deleted and replaced
//! by a call into an added run-time routine that accounts for the event
//! and performs the system call itself; loads and stores get accounting
//! calls alongside them. The run-time routine is "another program" added
//! to the executable, as §5 says Active Memory does.

use crate::ToolError;
use eel_core::{Executable, Snippet};
use eel_emu::Machine;
use eel_exe::Image;
use eel_isa::Op;

/// The simulator-instrumented program.
#[derive(Debug)]
pub struct Simulated {
    /// The edited executable.
    pub image: Image,
    /// Address of the (loads, stores, syscalls) counter triple.
    pub counters_addr: u32,
}

/// Event counts after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCounts {
    /// Program exit code.
    pub exit_code: u32,
    /// Loads observed by the simulator hooks.
    pub loads: u32,
    /// Stores observed.
    pub stores: u32,
    /// System calls observed.
    pub syscalls: u32,
}

/// Instruments a program Elsie-style.
///
/// # Errors
///
/// Propagates analysis/editing failures.
pub fn instrument(image: Image) -> Result<Simulated, ToolError> {
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let counters_addr = exec.reserve_data(12);
    let loads_c = counters_addr;
    let stores_c = counters_addr + 4;
    let sys_c = counters_addr + 8;

    // The simulator routine for system calls: count, then perform the
    // trap on the program's behalf, then return. All program registers
    // are preserved except what the kernel itself clobbers.
    exec.add_runtime_routine(
        "__elsie_syscall",
        &format!(
            r#"
        __elsie_syscall:
            st %g6, [%sp - 120]
            st %g7, [%sp - 128]
            sethi %hi({sys_c}), %g6
            ld [%lo({sys_c}) + %g6], %g7
            add %g7, 1, %g7
            st %g7, [%lo({sys_c}) + %g6]
            ld [%sp - 120], %g6
            ld [%sp - 128], %g7
            ta 0
            retl
            nop
        "#
        ),
    );

    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id)?;
        // Memory accounting (simulator "calls" inlined as counters).
        let mems = cfg.memory_sites();
        for m in mems {
            let Some(addr) = m.addr else { continue };
            let counter = match m.insn.op {
                Op::Load { .. } => loads_c,
                Op::Store { .. } => stores_c,
                _ => continue,
            };
            cfg.add_code_before(addr, Snippet::counter_increment(counter))?;
        }
        // Memory references hiding in delay slots.
        let (edge_jobs, call_jobs) = crate::delay_slot_memory_jobs(&cfg, |_| true);
        for (e, insn) in edge_jobs {
            let counter = if matches!(insn.op, Op::Load { .. }) {
                loads_c
            } else {
                stores_c
            };
            cfg.add_code_along(e, Snippet::counter_increment(counter))?;
        }
        for (a, insn) in call_jobs {
            let counter = if matches!(insn.op, Op::Load { .. }) {
                loads_c
            } else {
                stores_c
            };
            cfg.add_code_before(a, Snippet::counter_increment(counter))?;
        }
        // System calls: replace `ta 0` with a call to the simulator
        // routine (which re-issues the trap itself).
        let traps: Vec<u32> = cfg
            .blocks()
            .flat_map(|(_, b)| b.insns.clone())
            .filter(|ia| matches!(ia.insn.op, Op::Trap { .. }))
            .filter_map(|ia| ia.addr)
            .collect();
        for addr in traps {
            cfg.delete_insn(addr)?;
            // The call clobbers %o7, which may be live: preserve it
            // around the call. (The callee returns past its own delay.)
            let snippet = Snippet::from_asm(
                r#"
                st %o7, [%sp - 112]
                call .
                nop
                ld [%sp - 112], %o7
            "#,
            )?
            .with_call(1, "__elsie_syscall");
            cfg.add_code_before(addr, snippet)?;
        }
        exec.install_edits(cfg)?;
    }
    let image = exec.write_edited()?;
    Ok(Simulated {
        image,
        counters_addr,
    })
}

impl Simulated {
    /// Runs the program and reads the simulator's event counts.
    ///
    /// # Errors
    ///
    /// Propagates emulator failures.
    pub fn run(&self) -> Result<SimCounts, ToolError> {
        let mut machine = Machine::load(&self.image)?;
        let outcome = machine.run()?;
        Ok(SimCounts {
            exit_code: outcome.exit_code,
            loads: machine.read_word(self.counters_addr),
            stores: machine.read_word(self.counters_addr + 4),
            syscalls: machine.read_word(self.counters_addr + 8),
        })
    }
}
