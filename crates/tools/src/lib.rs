//! # eel-tools: the tools the EEL paper built and measured
//!
//! Every application §1/§5 attributes to EEL (or its predecessors), as a
//! working tool on this reproduction's stack:
//!
//! | Module | Paper tool | What it does here |
//! |---|---|---|
//! | [`qpt2`] | qpt rewritten on EEL (§5, Table 1, Figures 1–2) | block/edge/entry profiling via EEL edits |
//! | [`qpt1`] | the original ad-hoc qpt (Table 1's baseline) | standalone block profiler with the classic fragile assumptions |
//! | [`active_memory`] | Active Memory [Lebeck & Wood] | inline cache-tag tests before every reference (the "2–7× slowdown" tool) |
//! | [`blizzard`] | Blizzard-S fine-grain access control | inline state-table tests before stores, liveness-tuned |
//! | [`elsie`] | Elsie direct-execution simulator | replaces system calls with simulator calls; accounts loads/stores |
//! | [`tracer`] | qpt's abstract-execution tracing | Figure 4 backward address slices, program-wide |
//! | [`shrink`] | §1's optimization use (OM/ATOM lineage) | call-graph-driven dead-routine elimination |
//!
//! ## Example: profile edges (the paper's Figure 1 tool)
//!
//! ```
//! use eel_tools::qpt2::{instrument, Granularity};
//!
//! let image = eel_cc::compile_str(
//!     "fn main() { var i; var t = 0;
//!        for (i = 0; i < 7; i = i + 1) { t = t + i; } return t; }",
//!     &eel_cc::Options::default(),
//! )?;
//! let profiled = instrument(image, Granularity::Edges)?;
//! let run = profiled.run()?;
//! assert_eq!(run.outcome.exit_code, 21);
//! assert!(run.total() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod active_memory;
pub mod blizzard;
pub mod cli;
pub mod elsie;
pub mod qpt1;
pub mod qpt2;
pub mod shrink;
pub mod tracer;

use std::fmt;

/// Errors from the tool layer.
#[derive(Debug)]
pub enum ToolError {
    /// An EEL analysis/editing failure.
    Eel(eel_core::EelError),
    /// An emulator failure while running an instrumented program.
    Run(eel_emu::RunError),
    /// The input violates a tool's (documented) assumptions — qpt1's
    /// specialty.
    Unsupported(String),
    /// A tool bug surfaced as an error.
    Internal(String),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Eel(e) => write!(f, "eel error: {e}"),
            ToolError::Run(e) => write!(f, "run error: {e}"),
            ToolError::Unsupported(m) => write!(f, "unsupported input: {m}"),
            ToolError::Internal(m) => write!(f, "internal tool error: {m}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<eel_core::EelError> for ToolError {
    fn from(e: eel_core::EelError) -> ToolError {
        ToolError::Eel(e)
    }
}

impl From<eel_emu::RunError> for ToolError {
    fn from(e: eel_emu::RunError) -> ToolError {
        ToolError::Run(e)
    }
}

/// Instrumentation jobs for delay-slot memory references: per-edge and
/// before-transfer placements.
pub(crate) type DelaySlotJobs = (
    Vec<(eel_core::EdgeId, eel_isa::Insn)>,
    Vec<(u32, eel_isa::Insn)>,
);

/// Finds memory references hiding in delay-slot blocks and returns where
/// to instrument them instead: `(editable edges, before-transfer sites)`.
/// This is the paper's "find an alternative location to edit" (§3.3).
pub(crate) fn delay_slot_memory_jobs(
    cfg: &eel_core::Cfg,
    want: impl Fn(&eel_isa::Insn) -> bool,
) -> DelaySlotJobs {
    let mut edges = Vec::new();
    let mut before = Vec::new();
    for (_, block) in cfg.blocks() {
        if block.kind != eel_core::BlockKind::DelaySlot {
            continue;
        }
        let Some(first) = block.insns.first().copied() else {
            continue;
        };
        if !first.insn.is_memory() || !want(&first.insn) {
            continue;
        }
        for &e in block.pred() {
            if cfg.edge(e).editable {
                edges.push((e, first.insn));
            } else if let Some(term) = cfg.block(cfg.edge(e).from).terminator() {
                if let Some(a) = term.addr {
                    before.push((a, first.insn));
                }
            }
        }
    }
    (edges, before)
}

/// Shared observability glue for the CLI binaries: `EEL_OBS` start-up and
/// the common `--trace FILE` flag.
pub mod obs_cli {
    use std::path::PathBuf;

    /// Per-invocation observability state. Construct with [`ObsSession::begin`]
    /// before argument parsing, route `--trace FILE` to
    /// [`ObsSession::set_trace_path`], and call [`ObsSession::finish`] on the
    /// success path.
    pub struct ObsSession {
        trace: Option<PathBuf>,
    }

    impl ObsSession {
        /// Reads `EEL_OBS` and starts a session.
        pub fn begin() -> ObsSession {
            eel_obs::init_from_env();
            ObsSession { trace: None }
        }

        /// Notes a `--trace FILE` request; turns recording on (Chrome
        /// trace format) when `EEL_OBS` did not already pick a mode.
        pub fn set_trace_path(&mut self, path: &str) {
            if eel_obs::mode() == eel_obs::Mode::Off {
                eel_obs::set_mode(eel_obs::Mode::Chrome);
            }
            self.trace = Some(PathBuf::from(path));
        }

        /// Emits whatever the mode calls for: the trace file when one was
        /// requested, otherwise the mode's report on stderr.
        pub fn finish(&self, tool: &str) {
            if let Some(report) = self.finish_report(tool) {
                eprint!("{report}");
            }
        }

        /// Like [`ObsSession::finish`], but hands back the rendered report
        /// (when no trace file was requested) instead of printing it, for
        /// tools whose report *is* their primary output.
        pub fn finish_report(&self, tool: &str) -> Option<String> {
            match (self.trace.as_deref(), eel_obs::mode()) {
                (_, eel_obs::Mode::Off) => None,
                (Some(path), _) => {
                    if let Err(e) = eel_obs::write_trace_file(path) {
                        eprintln!("{tool}: cannot write trace {}: {e}", path.display());
                    }
                    None
                }
                (None, eel_obs::Mode::Summary) => Some(eel_obs::render_summary()),
                (None, eel_obs::Mode::Json) => Some(eel_obs::render_json_lines()),
                (None, eel_obs::Mode::Chrome) => Some(eel_obs::render_chrome_trace()),
            }
        }
    }
}

/// Counts non-comment, non-blank lines — the Table 1 "tool size" metric.
pub fn source_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!") && !l.starts_with('!')
        })
        .count()
}

/// qpt2's own source (for the Table 1 tool-size comparison).
pub const QPT2_SOURCE: &str = include_str!("qpt2.rs");
/// qpt1's own source.
pub const QPT1_SOURCE: &str = include_str!("qpt1.rs");
