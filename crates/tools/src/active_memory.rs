//! Active Memory — cache simulation by executable editing (paper §1, §5).
//!
//! Lebeck & Wood's Active Memory lowered cache simulation to a 2–7×
//! slowdown by inserting a quick state test before each load/store
//! instead of post-processing an address trace. This module reproduces
//! it: every memory reference gets an inline direct-mapped-cache tag
//! check that bumps a hit or miss counter (and updates the tag on miss).
//!
//! Because the inline test writes the condition codes, snippet
//! materialization automatically wraps it with `rd %psr`/`wr %psr` *only
//! where `icc` is live* — the same liveness-driven fast-path optimization
//! the paper credits to the EEL rewrite of Blizzard (§5).

use crate::ToolError;
use eel_core::{Executable, Snippet};
use eel_emu::Machine;
use eel_exe::Image;
use eel_isa::{Insn, Op, Reg, RegSet, Src2};

/// Cache geometry: direct-mapped, `LINES` lines of `1 << LINE_SHIFT`
/// bytes.
pub const LINES: u32 = 256;
/// log2 of the line size (32-byte lines).
pub const LINE_SHIFT: u32 = 5;

/// The instrumented program plus the addresses of its statistics.
#[derive(Debug)]
pub struct CacheSim {
    /// The edited executable.
    pub image: Image,
    /// Address of the hit counter.
    pub hits_addr: u32,
    /// Address of the miss counter.
    pub misses_addr: u32,
    /// Number of instrumented reference sites.
    pub sites: u32,
    /// How many sites needed the condition-code save/restore (slow
    /// sequence) vs the fast one.
    pub cc_saved_sites: u32,
}

/// Result of running the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Program outcome.
    pub exit_code: u32,
    /// Cache hits observed by the instrumentation.
    pub hits: u32,
    /// Cache misses observed.
    pub misses: u32,
    /// Dynamic cycles of the instrumented program.
    pub cycles: u64,
}

/// Picks three placeholder registers distinct from everything the site
/// instruction touches (so substitution cannot capture a site operand).
fn pick_placeholders(site: Insn) -> [Reg; 3] {
    let used = site.reads().union(site.writes());
    let mut picks = Vec::new();
    for i in [5u8, 6, 7, 2, 3, 4, 16, 17, 18, 19, 20, 21] {
        if !used.contains(Reg(i)) {
            picks.push(Reg(i));
            if picks.len() == 3 {
                break;
            }
        }
    }
    [picks[0], picks[1], picks[2]]
}

/// The inline tag-check snippet for one memory reference.
fn check_snippet(site: Insn, tags: u32, hits: u32, misses: u32) -> Result<Snippet, ToolError> {
    let (rs1, src2) = match site.op {
        Op::Load { rs1, src2, .. } | Op::Store { rs1, src2, .. } => (rs1, src2),
        other => {
            return Err(ToolError::Internal(format!(
                "not a memory reference: {other:?}"
            )))
        }
    };
    let [a, b, c] = pick_placeholders(site);
    let ea = match src2 {
        Src2::Imm(v) => format!("add {rs1}, {v}, {a}"),
        Src2::Reg(r) => format!("add {rs1}, {r}, {a}"),
    };
    let line_mask = LINES - 1;
    let tag_shift = LINE_SHIFT + LINES.trailing_zeros();
    let body = format!(
        r#"
        {ea}
        srl {a}, {LINE_SHIFT}, {b}
        and {b}, {line_mask}, {b}
        sll {b}, 2, {b}
        sethi %hi({tags}), {c}
        or {c}, %lo({tags}), {c}
        add {c}, {b}, {c}
        ld [{c}], {b}
        srl {a}, {tag_shift}, {a}
        cmp {a}, {b}
        be Lhit
        nop
        st {a}, [{c}]
        sethi %hi({misses}), {c}
        ld [%lo({misses}) + {c}], {b}
        add {b}, 1, {b}
        ba Lend
        st {b}, [%lo({misses}) + {c}]
    Lhit:
        sethi %hi({hits}), {c}
        ld [%lo({hits}) + {c}], {b}
        add {b}, 1, {b}
        st {b}, [%lo({hits}) + {c}]
    Lend:
    "#
    );
    Ok(Snippet::from_asm(&body)?.with_scavenged(&[a, b, c]))
}

/// Instruments every memory reference in normal blocks with the inline
/// cache test. (References hiding in delay slots are reached through the
/// adjacent edit points, as in the paper's "find an alternative
/// location".)
///
/// # Errors
///
/// Propagates analysis/editing failures.
pub fn instrument(image: Image) -> Result<CacheSim, ToolError> {
    let mut exec = Executable::from_image(image)?;
    exec.read_contents()?;
    let tags = exec.reserve_data(4 * LINES);
    let hits_addr = exec.reserve_data(4);
    let misses_addr = exec.reserve_data(4);
    let mut sites = 0u32;
    let mut cc_saved_sites = 0u32;

    for id in exec.all_routine_ids() {
        let mut cfg = exec.build_cfg(id)?;
        let live = eel_core::Liveness::compute(&cfg);
        let mems = cfg.memory_sites();
        for m in mems {
            let Some(addr) = m.addr else { continue };
            // Count how many sites will take the slow (cc-saving) path,
            // for the §5 optimization statistics.
            if let Some((b, i)) = cfg.block_at(addr) {
                if live.live_before(&cfg, b, i).contains(Reg::ICC) {
                    cc_saved_sites += 1;
                }
            }
            let snippet = check_snippet(m.insn, tags, hits_addr, misses_addr)?;
            cfg.add_code_before(addr, snippet)?;
            sites += 1;
        }
        // Delay-slot references: check them on their edges.
        let (edge_jobs, call_jobs) = crate::delay_slot_memory_jobs(&cfg, |_| true);
        for (e, insn) in edge_jobs {
            cfg.add_code_along(e, check_snippet(insn, tags, hits_addr, misses_addr)?)?;
            sites += 1;
        }
        for (a, insn) in call_jobs {
            cfg.add_code_before(a, check_snippet(insn, tags, hits_addr, misses_addr)?)?;
            sites += 1;
        }
        exec.install_edits(cfg)?;
    }
    let image = exec.write_edited()?;
    Ok(CacheSim {
        image,
        hits_addr,
        misses_addr,
        sites,
        cc_saved_sites,
    })
}

impl CacheSim {
    /// Runs the instrumented program and reads back the statistics.
    ///
    /// # Errors
    ///
    /// Propagates emulator failures.
    pub fn run(&self) -> Result<CacheStats, ToolError> {
        let mut machine = Machine::load(&self.image)?;
        let outcome = machine.run()?;
        Ok(CacheStats {
            exit_code: outcome.exit_code,
            hits: machine.read_word(self.hits_addr),
            misses: machine.read_word(self.misses_addr),
            cycles: outcome.cycles,
        })
    }
}

/// A reference Rust model of the same cache, fed by an emulator memory
/// trace — the ground truth the instrumented counts must match exactly.
#[derive(Debug)]
pub struct ReferenceCache {
    tags: Vec<Option<u32>>,
    /// Hits so far.
    pub hits: u32,
    /// Misses so far.
    pub misses: u32,
}

impl Default for ReferenceCache {
    fn default() -> Self {
        ReferenceCache {
            tags: vec![None; LINES as usize],
            hits: 0,
            misses: 0,
        }
    }
}

impl ReferenceCache {
    /// Creates an empty cache.
    pub fn new() -> ReferenceCache {
        ReferenceCache::default()
    }

    /// Simulates one access.
    pub fn access(&mut self, addr: u32) {
        let line = ((addr >> LINE_SHIFT) & (LINES - 1)) as usize;
        let tag = addr >> (LINE_SHIFT + LINES.trailing_zeros());
        if self.tags[line] == Some(tag) {
            self.hits += 1;
        } else {
            self.tags[line] = Some(tag);
            self.misses += 1;
        }
    }
}

/// Keep the unused import warnings away in minimal builds.
const _: fn() -> RegSet = RegSet::new;
