//! Integration tests for the paper's tools, validated against emulator
//! ground truth on the progen workload suite.

use eel_cc::{compile_str, Options, Personality};
use eel_emu::{run_image, Machine};
use eel_progen::{compile, degrade_symbols, suite};
use eel_tools::{active_memory, blizzard, elsie, qpt1, qpt2, tracer};

fn small_program() -> &'static str {
    r#"
    global data[64];
    fn touch(i) { data[i & 63] = data[i & 63] + i; return data[i & 63]; }
    fn main() {
        var i; var t = 0;
        for (i = 0; i < 30; i = i + 1) {
            if (i % 3 == 0) { t = t + touch(i); } else { t = t - 1; }
        }
        print(t);
        return t & 255;
    }"#
}

// ---------------------------------------------------------------- qpt2

#[test]
fn qpt2_block_counts_match_reality() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let profiled = qpt2::instrument(image, qpt2::Granularity::Blocks).unwrap();
    let run = profiled.run().unwrap();
    assert_eq!(run.outcome.exit_code, plain.exit_code);
    assert_eq!(run.outcome.output, plain.output);
    // touch() is called 10 times: its entry block count must be 10.
    let touch_entry = run
        .counts
        .iter()
        .filter(|((r, _, _), _)| r == "touch")
        .map(|((_, site, _), &c)| (site, c))
        .min()
        .map(|(_, c)| c);
    assert_eq!(touch_entry, Some(10));
}

#[test]
fn qpt2_edge_counts_sum_to_branch_executions() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let profiled = qpt2::instrument(image, qpt2::Granularity::Edges).unwrap();
    let run = profiled.run().unwrap();
    // Every counted edge execution corresponds to a multi-way transfer.
    assert!(
        run.total() >= 30,
        "loop branches run 30+ times: {}",
        run.total()
    );
}

#[test]
fn qpt2_entry_counts() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let profiled = qpt2::instrument(image, qpt2::Granularity::Entries).unwrap();
    let run = profiled.run().unwrap();
    assert_eq!(run.routine_total("touch"), 10);
    assert_eq!(run.routine_total("main"), 1);
}

#[test]
fn qpt2_handles_what_qpt1_cannot() {
    // SunPro tail calls: qpt2 instruments them (run-time translation),
    // qpt1 refuses — the paper's robustness argument.
    let tail_src = r#"
        fn helper(x) { return x * 2 + 1; }
        fn caller(x) { return helper(x + 3); }
        fn main() { return caller(10); }"#;
    let opts = Options {
        personality: Personality::SunPro,
        ..Options::default()
    };
    let image = compile_str(tail_src, &opts).unwrap();
    let plain = run_image(&image).unwrap();

    let qpt1_result = qpt1::instrument(image.clone());
    assert!(
        matches!(qpt1_result, Err(eel_tools::ToolError::Unsupported(_))),
        "qpt1 must reject the unanalyzable tail-call jump"
    );

    let profiled = qpt2::instrument(image, qpt2::Granularity::Blocks).unwrap();
    let run = profiled.run().unwrap();
    assert_eq!(run.outcome.exit_code, plain.exit_code);

    // Degraded symbol table: same story.
    let opts = Options::default();
    let plain_small = run_image(&compile_str(small_program(), &opts).unwrap()).unwrap();
    let mut degraded = compile_str(small_program(), &opts).unwrap();
    degrade_symbols(&mut degraded, 7);
    let profiled = qpt2::instrument(degraded, qpt2::Granularity::Blocks).unwrap();
    assert_eq!(
        profiled.run().unwrap().outcome.exit_code,
        plain_small.exit_code
    );
}

// ---------------------------------------------------------------- qpt1

#[test]
fn qpt1_block_counts_match_qpt2() {
    // On inputs satisfying its assumptions, the ad-hoc tool agrees with
    // the EEL tool.
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();

    let p1 = qpt1::instrument(image.clone()).unwrap();
    let mut m1 = Machine::load(&p1.image).unwrap();
    let o1 = m1.run().unwrap();
    assert_eq!(o1.exit_code, plain.exit_code, "qpt1 preserved behavior");
    assert_eq!(o1.output, plain.output);
    let c1 = qpt1::read_counters(&p1, &mut m1);
    let total1: u64 = c1.values().map(|&v| v as u64).sum();

    let p2 = qpt2::instrument(image, qpt2::Granularity::Blocks).unwrap();
    let run2 = p2.run().unwrap();
    let total2 = run2.total();
    // qpt1 counts every leader-started region, qpt2 counts EEL basic
    // blocks; totals are close but not defined identically — both must
    // at least count the 30 loop iterations in main.
    assert!(total1 >= 30, "qpt1 total {total1}");
    assert!(total2 >= 30, "qpt2 total {total2}");
    // main's loop body block: both tools must report exactly 30 for the
    // instruction at the loop's addition site. Compare the max counters,
    // which for this program is the inner loop block.
    let max1 = c1.values().max().copied().unwrap_or(0);
    let max2 = run2.counts.values().max().copied().unwrap_or(0);
    assert_eq!(max1, max2, "hottest block count agrees");
}

#[test]
fn qpt1_works_on_jump_tables() {
    let src = r#"
        fn classify(x) {
            switch (x % 5) {
                case 0: { return 1; }
                case 1: { return 2; }
                case 2: { return 3; }
                case 3: { return 4; }
                default: { return 9; }
            }
        }
        fn main() {
            var i; var t = 0;
            for (i = 0; i < 25; i = i + 1) { t = t + classify(i); }
            return t;
        }"#;
    let image = compile_str(src, &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let p = qpt1::instrument(image).unwrap();
    let out = run_image(&p.image).unwrap();
    assert_eq!(out.exit_code, plain.exit_code);
}

#[test]
fn qpt1_refuses_stripped_binaries_qpt2_does_not() {
    // Refusal path 1: no symbol table. qpt1's whole discovery is "trust
    // the symbols", so it must refuse outright — with the documented
    // message, pinned here — while qpt2 profiles the same image via
    // EEL's hidden-routine discovery and preserves behavior.
    let opts = Options {
        strip: true,
        ..Options::default()
    };
    let image = compile_str(small_program(), &opts).unwrap();
    assert!(image.is_stripped());
    let plain = run_image(&image).unwrap();

    match qpt1::instrument(image.clone()) {
        Err(eel_tools::ToolError::Unsupported(msg)) => {
            assert!(
                msg.contains("stripped executables are not supported"),
                "refusal must name the assumption: {msg}"
            );
            assert!(msg.contains("trusts the symbol table"), "{msg}");
        }
        other => panic!("qpt1 must refuse stripped input: {other:?}"),
    }

    let profiled = qpt2::instrument(image, qpt2::Granularity::Blocks).unwrap();
    let run = profiled.run().unwrap();
    assert_eq!(run.outcome.exit_code, plain.exit_code);
    assert_eq!(run.outcome.output, plain.output);
    assert!(
        run.total() >= 30,
        "qpt2 still counts the loop: {}",
        run.total()
    );
}

#[test]
fn qpt1_refusal_message_pins_the_tail_call_divergence() {
    // Refusal path 2: SunPro tail calls produce an indirect jump outside
    // qpt1's single dispatch pattern. Pin the exact divergence: qpt1's
    // error names the jump and its lack of a run-time fallback; qpt2
    // handles the same image (run-time address translation, §3.2).
    let tail_src = r#"
        fn helper(x) { return x * 2 + 1; }
        fn caller(x) { return helper(x + 3); }
        fn main() { return caller(10); }"#;
    let opts = Options {
        personality: Personality::SunPro,
        ..Options::default()
    };
    let image = compile_str(tail_src, &opts).unwrap();

    match qpt1::instrument(image.clone()) {
        Err(eel_tools::ToolError::Unsupported(msg)) => {
            assert!(
                msg.contains("unanalyzable indirect jump"),
                "refusal must name the jump: {msg}"
            );
            assert!(
                msg.contains("no run-time fallback"),
                "refusal must name the missing capability qpt2 has: {msg}"
            );
        }
        other => panic!("qpt1 must refuse the tail call: {other:?}"),
    }
    assert!(
        qpt2::instrument(image, qpt2::Granularity::Blocks).is_ok(),
        "qpt2 instruments the same image"
    );
}

// ------------------------------------------------------- active memory

#[test]
fn active_memory_matches_reference_cache_exactly() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    // Ground truth: reference cache fed by the emulator's memory trace.
    let mut machine = Machine::load(&image).unwrap().with_mem_trace();
    let plain = machine.run().unwrap();
    let trace = machine.take_mem_trace();
    let mut reference = active_memory::ReferenceCache::new();
    for r in &trace {
        reference.access(r.addr);
    }

    let sim = active_memory::instrument(image).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.exit_code, plain.exit_code);
    assert_eq!(
        stats.hits + stats.misses,
        (plain.loads + plain.stores) as u32,
        "every reference checked exactly once"
    );
    assert_eq!(
        stats.hits, reference.hits,
        "hit counts agree with ground truth"
    );
    assert_eq!(
        stats.misses, reference.misses,
        "miss counts agree with ground truth"
    );
}

#[test]
fn active_memory_slowdown_in_paper_range() {
    // The paper quotes a 2–7× slowdown for Active Memory. Measure the
    // dynamic-cycle ratio on a real workload.
    let w = &suite()[1]; // compress-like
    let image = compile(w, Personality::Gcc).unwrap();
    let plain = run_image(&image).unwrap();
    let sim = active_memory::instrument(image).unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(stats.exit_code, plain.exit_code);
    let slowdown = stats.cycles as f64 / plain.cycles as f64;
    assert!(
        (1.5..=12.0).contains(&slowdown),
        "slowdown {slowdown:.2}x out of plausible range"
    );
}

// ------------------------------------------------------------ blizzard

#[test]
fn blizzard_counts_every_store_and_faults_once_per_line() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let ac = blizzard::instrument(image).unwrap();
    let stats = ac.run().unwrap();
    assert_eq!(stats.exit_code, plain.exit_code);
    assert_eq!(stats.checks as u64, plain.stores, "every store checked");
    assert!(stats.faults > 0, "first touches fault");
    assert!(stats.faults <= stats.checks);
}

// --------------------------------------------------------------- elsie

#[test]
fn elsie_accounts_memory_and_syscalls() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let sim = elsie::instrument(image).unwrap();
    let counts = sim.run().unwrap();
    assert_eq!(counts.exit_code, plain.exit_code);
    assert_eq!(counts.loads as u64, plain.loads, "simulator saw every load");
    assert_eq!(
        counts.stores as u64, plain.stores,
        "simulator saw every store"
    );
    // print() issues one write; exit is one more trap.
    assert_eq!(counts.syscalls, 2, "write + exit");
}

// -------------------------------------------------------------- tracer

#[test]
fn tracer_slices_most_references() {
    let image = compile_str(small_program(), &Options::default()).unwrap();
    let analysis = tracer::analyze(image).unwrap();
    assert!(analysis.references() > 20);
    assert!(
        analysis.fully_sliced_fraction() > 0.5,
        "most addresses statically recomputable: {}",
        analysis.fully_sliced_fraction()
    );
    let easy: usize = analysis.routines.iter().map(|r| r.easy).sum();
    let impossible: usize = analysis.routines.iter().map(|r| r.impossible).sum();
    assert!(
        easy > 0,
        "sethi-style roots are easy somewhere in the program"
    );
    assert_eq!(impossible, 0, "no floating point here");
}

// ------------------------------------------------------------ the suite

#[test]
fn all_tools_preserve_suite_behavior() {
    // The heavyweight cross-product: every tool on a couple of suite
    // programs, behavior preserved.
    for w in suite().into_iter().take(3) {
        let image = compile(&w, Personality::Gcc).unwrap();
        let plain = run_image(&image).unwrap();

        let p2 = qpt2::instrument(image.clone(), qpt2::Granularity::Edges).unwrap();
        let r2 = p2.run().unwrap();
        assert_eq!(r2.outcome.exit_code, plain.exit_code, "{} qpt2", w.name);
        assert_eq!(r2.outcome.output, plain.output, "{} qpt2", w.name);

        let am = active_memory::instrument(image.clone()).unwrap();
        let s = am.run().unwrap();
        assert_eq!(s.exit_code, plain.exit_code, "{} active-memory", w.name);
        assert_eq!(
            (s.hits + s.misses) as u64,
            plain.loads + plain.stores,
            "{} reference count",
            w.name
        );

        let bz = blizzard::instrument(image.clone()).unwrap();
        let b = bz.run().unwrap();
        assert_eq!(b.exit_code, plain.exit_code, "{} blizzard", w.name);

        let el = elsie::instrument(image).unwrap();
        let e = el.run().unwrap();
        assert_eq!(e.exit_code, plain.exit_code, "{} elsie", w.name);
        assert_eq!(e.loads as u64, plain.loads, "{} elsie loads", w.name);
    }
}

#[test]
fn tool_sizes_tell_the_papers_story() {
    // Table 1 context: the ad-hoc tool is much bigger than the EEL tool,
    // because EEL owns the analysis (qpt: 14,500 lines → qpt2: 6,276).
    let q1 = eel_tools::source_lines(eel_tools::QPT1_SOURCE);
    let q2 = eel_tools::source_lines(eel_tools::QPT2_SOURCE);
    assert!(
        q1 > q2,
        "ad-hoc qpt1 ({q1} lines) should dwarf EEL-based qpt2 ({q2} lines)"
    );
}

#[test]
fn active_memory_cc_save_path_works_when_icc_is_live() {
    // Hand-written code keeps the condition codes live ACROSS a load
    // (cmp ... ld ... bne): the inline cache test writes icc, so snippet
    // materialization must wrap it with rd/wr %psr — and the loop must
    // still terminate correctly.
    let image = eel_asm::assemble(
        r#"
        .global main
    main:
        mov 0, %l0
        set cell, %l2
    loop:
        add %l0, 1, %l0
        cmp %l0, 5
        ld [%l2], %l1       ! icc live across this load
        bne loop
        nop
        mov %l1, %o0
        add %o0, %l0, %o0   ! 42 + 5
        mov 1, %g1
        ta 0
        nop
        .data
    cell:
        .word 42
    "#,
    )
    .unwrap();
    let plain = run_image(&image).unwrap();
    assert_eq!(plain.exit_code, 47);

    let sim = active_memory::instrument(image).unwrap();
    assert!(
        sim.cc_saved_sites >= 1,
        "the load between cmp and bne needs the slow (psr-saving) sequence"
    );
    let stats = sim.run().unwrap();
    assert_eq!(
        stats.exit_code, 47,
        "condition codes preserved through the check"
    );
    assert_eq!(
        (stats.hits + stats.misses) as u64,
        plain.loads + plain.stores
    );
}

// -------------------------------------------------------------- shrink

#[test]
fn shrink_removes_dead_routines_soundly() {
    let src = r#"
        fn used(x) { return x * 2; }
        fn dead1(x) { return x + 1; }
        fn dead2(x) { return dead1(x) + 2; }
        fn main() { print(used(21)); return used(21); }
    "#;
    let image = compile_str(src, &Options::default()).unwrap();
    let plain = run_image(&image).unwrap();
    let shrunk = eel_tools::shrink::strip_dead_routines(image).unwrap();
    assert!(
        shrunk.removed.contains(&"dead1".to_string()),
        "{:?}",
        shrunk.removed
    );
    assert!(shrunk.removed.contains(&"dead2".to_string()));
    assert!(!shrunk.removed.contains(&"used".to_string()));
    assert!(!shrunk.removed.contains(&"__print_int".to_string()));
    assert!(
        shrunk.text_after < shrunk.text_before,
        "{} -> {}",
        shrunk.text_before,
        shrunk.text_after
    );
    let out = run_image(&shrunk.image).unwrap();
    assert_eq!(out.exit_code, plain.exit_code);
    assert_eq!(out.output, plain.output);
}

#[test]
fn shrink_refuses_programs_with_function_pointers() {
    let src = r#"
        fn maybe(x) { return x; }
        fn main() { var p = &maybe; return (*p)(3); }
    "#;
    let image = compile_str(src, &Options::default()).unwrap();
    match eel_tools::shrink::strip_dead_routines(image) {
        Err(eel_tools::ToolError::Unsupported(msg)) => {
            assert!(msg.contains("unknown indirect"), "{msg}");
        }
        other => panic!("must refuse: {other:?}"),
    }
}

// ------------------------------------------------------------ stripped

/// Non-zero counts keyed by `(site, index)` — comparable across a
/// stripped/unstripped twin pair, whose routine *names* necessarily
/// differ (`fib` vs `sub_10234`).
fn nonzero_by_site(run: &qpt2::ProfileRun) -> std::collections::BTreeMap<(u32, u32), u32> {
    run.counts
        .iter()
        .filter(|(_, &c)| c != 0)
        .map(|(&(_, site, index), &c)| ((site, index), c))
        .collect()
}

#[test]
fn qpt2_stripped_twin_block_counts_match_unstripped() {
    // The eel-strip acceptance bar, at the tool level: profiling a
    // stripped image is emu-equivalent to profiling its unstripped twin.
    // suite()[0] (the spim-like interpreter) carries dispatch tables, so
    // this also exercises jump-table resolution inside inference.
    let w = &suite()[0];
    let image = compile(w, Personality::Gcc).unwrap();
    let mut stripped = image.clone();
    stripped.strip();
    assert!(stripped.is_stripped());

    let base = qpt2::instrument(image, qpt2::Granularity::Blocks)
        .unwrap()
        .run()
        .unwrap();
    let twin = qpt2::instrument(stripped, qpt2::Granularity::Blocks)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(base.outcome.exit_code, twin.outcome.exit_code);
    assert_eq!(base.outcome.output, twin.outcome.output);
    let base_counts = nonzero_by_site(&base);
    assert_eq!(base_counts, nonzero_by_site(&twin), "block counts diverge");
    assert!(!base_counts.is_empty(), "profile counted nothing");
}

#[test]
fn wisc_strip_mode_is_deterministic_and_twins_the_normal_build() {
    // Satellite: `wisc --strip` must be a deterministic twin of the
    // normal build — same text and data, empty symbol table.
    let dir = std::env::temp_dir().join(format!("eel-wisc-strip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("p.wisc");
    std::fs::write(&src, small_program()).unwrap();
    let build = |args: &[&str], out: &std::path::Path| {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_wisc"))
            .arg(&src)
            .arg("-o")
            .arg(out)
            .args(args)
            .status()
            .unwrap();
        assert!(status.success(), "wisc {args:?} failed");
        std::fs::read(out).unwrap()
    };
    let plain = build(&[], &dir.join("plain.wef"));
    let s1 = build(&["--strip"], &dir.join("s1.wef"));
    let s2 = build(&["--strip"], &dir.join("s2.wef"));
    assert_eq!(s1, s2, "--strip builds are not byte-identical");

    let plain = eel_exe::Image::from_bytes(&plain).unwrap();
    let stripped = eel_exe::Image::from_bytes(&s1).unwrap();
    assert!(!plain.is_stripped());
    assert!(stripped.is_stripped());
    assert_eq!(plain.text, stripped.text, "--strip changed the text");
    assert_eq!(plain.data, stripped.data, "--strip changed the data");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eelstat_and_eelobjdump_work_on_stripped_images() {
    // Satellite: the offline tools must fall back to inferred discovery
    // and synthetic names on a symbol-less image rather than erroring or
    // printing an empty report.
    let dir = std::env::temp_dir().join(format!("eel-stripped-tools-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let opts = Options {
        strip: true,
        ..Options::default()
    };
    let image = compile_str(small_program(), &opts).unwrap();
    let wef = dir.join("stripped.wef");
    std::fs::write(&wef, image.to_bytes()).unwrap();

    let stat = std::process::Command::new(env!("CARGO_BIN_EXE_eelstat"))
        .arg(&wef)
        .output()
        .unwrap();
    assert!(stat.status.success(), "eelstat failed on a stripped image");
    let err = String::from_utf8_lossy(&stat.stderr);
    assert!(err.contains("discovery: inferred"), "{err}");

    let dump = std::process::Command::new(env!("CARGO_BIN_EXE_eelobjdump"))
        .arg(&wef)
        .output()
        .unwrap();
    assert!(
        dump.status.success(),
        "eelobjdump failed on a stripped image"
    );
    let out = String::from_utf8_lossy(&dump.stdout);
    assert!(out.contains("discovery: inferred"), "missing header note");
    assert!(out.contains("<sub_"), "no synthetic routine names:\n{out}");
    // main, touch, and the print runtime all execute: the listing must
    // cover at least those three routines.
    assert!(out.matches("<sub_").count() >= 3, "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}
