//! End-to-end session tests: scripted insert/delete/replace edits across
//! multiple routines, emulator equivalence between the original and the
//! edited image, dry-run/apply agreement, and exact undo/revert.

use eel_core::{Analysis, BlockKind};
use eel_edit::{fnv1a64, EditError, EditSession, Reply};
use eel_exe::Image;
use eel_isa::{AluOp, Op, Src2};
use std::sync::Arc;

/// A two-routine program with stable behavior: output + exit code cover
/// both functions.
fn two_routine_image() -> Image {
    eel_cc::compile_str(
        "fn helper(x) { return x * 3 + 1; }
         fn main() {
           var i; var t = 0;
           for (i = 0; i < 5; i = i + 1) { t = t + helper(i); }
           print(t);
           return t;
         }",
        &eel_cc::Options::default(),
    )
    .expect("compile")
}

fn session_over(image: Image) -> EditSession {
    EditSession::new(Arc::new(image)).expect("open session")
}

/// Finds, inside `routine`, an editable `mov imm, rd` (an or-immediate
/// off `%g0`, imm >= 1, not a terminator) to target with
/// `replace`/`delete`, and returns `(addr, rd, imm)`.
fn find_mov_imm(routine: &str) -> (u32, String, i32) {
    let image = two_routine_image();
    let analysis = Analysis::compute(Arc::new(image)).unwrap();
    let mut exec = eel_core::Executable::from_analysis(&analysis);
    let id = exec
        .all_routine_ids()
        .into_iter()
        .find(|&id| exec.routine(id).name() == routine)
        .expect("routine exists");
    let cfg = exec.build_cfg(id).unwrap();
    for (_, b) in cfg.blocks() {
        if b.kind != BlockKind::Normal || !b.editable {
            continue;
        }
        for (i, at) in b.insns.iter().enumerate() {
            // Skip the terminator (and its delay-slot position).
            if i + 1 == b.insns.len() && b.terminator().is_some() {
                continue;
            }
            let Some(addr) = at.addr else { continue };
            if let Op::Alu {
                op: AluOp::Or,
                cc: false,
                rd,
                rs1,
                src2: Src2::Imm(v),
            } = at.insn.op
            {
                if rs1 == eel_isa::Reg(0) && v >= 1 {
                    return (addr, rd.to_string(), v);
                }
            }
        }
    }
    panic!("no mov-immediate found in {routine}");
}

#[test]
fn scripted_edits_across_two_routines_preserve_behavior() {
    let image = two_routine_image();
    let original = eel_emu::run_image(&image).expect("run original");

    let mut session = session_over(image);

    // Routine 1 (main): counter insert; routine 2 (helper): a
    // behavior-preserving replace (split the mov) and, back in main, a
    // delete that reinserts the identical instruction.
    let (addr, rd, v) = find_mov_imm("helper");
    session.exec_line("counter main").expect("counter insert");
    session
        .exec_line(&format!(
            "replace @{addr:#x} {{ mov {}, {rd} ; add {rd}, 1, {rd} }}",
            v - 1
        ))
        .expect("identity-split replace");
    let (daddr, drd, dv) = find_mov_imm("main");
    session
        .exec_line(&format!("delete @{daddr:#x}"))
        .expect("delete");
    session
        .exec_line(&format!("insert-before @{daddr:#x} {{ mov {dv}, {drd} }}"))
        .expect("reinsert identical instruction");
    assert_eq!(session.pending(), 4);

    let applied = session.apply().expect("apply");
    assert!(
        applied.report.text_after > applied.report.text_before,
        "edits must grow the text segment"
    );
    let edited = eel_emu::run_image(&applied.image).expect("run edited");
    assert_eq!(edited.exit_code, original.exit_code);
    assert_eq!(edited.output, original.output);
}

#[test]
fn dry_run_predicts_apply_exactly() {
    let mut session = session_over(two_routine_image());
    session.exec_line("counter main:b1").expect("counter");
    session
        .exec_line("insert-after helper { add %g6, 0, %g6 } scavenge %g6")
        .expect("insert-after");
    let predicted = session.dry_run().expect("dry-run");
    let applied = session.apply().expect("apply");
    assert_eq!(predicted, applied.report);
    assert_eq!(predicted.image_hash, fnv1a64(&applied.image.to_bytes()));
}

#[test]
fn undo_restores_prior_state_exactly() {
    let mut session = session_over(two_routine_image());
    session.exec_line("counter main").expect("counter");
    let before = session.dry_run().expect("baseline dry-run");
    session
        .exec_line("insert-before helper { add %g6, 1, %g6 } scavenge %g6")
        .expect("insert");
    let with_edit = session.dry_run().expect("dry-run with edit");
    assert_ne!(before, with_edit);
    match session.exec_line("undo").expect("undo") {
        Reply::Text(msg) => assert!(msg.contains("insert-before"), "{msg}"),
        other => panic!("undo returned {other:?}"),
    }
    assert_eq!(session.pending(), 1);
    let after_undo = session.dry_run().expect("dry-run after undo");
    assert_eq!(before, after_undo);
}

#[test]
fn undo_on_empty_log_errors() {
    let mut session = session_over(two_routine_image());
    assert_eq!(
        session.exec_line("undo").unwrap_err(),
        EditError::NothingToUndo
    );
}

#[test]
fn revert_then_apply_reproduces_input_bytes() {
    let image = two_routine_image();
    let input_bytes = image.to_bytes();
    let mut session = session_over(image);
    session.exec_line("counter main").expect("counter");
    session.exec_line("counter helper").expect("counter");
    session.exec_line("revert").expect("revert");
    assert_eq!(session.pending(), 0);
    let applied = session.apply().expect("apply with empty log");
    assert_eq!(applied.image.to_bytes(), input_bytes);
}

#[test]
fn sessions_survive_failed_commands_unchanged() {
    let mut session = session_over(two_routine_image());
    session.exec_line("counter main").expect("counter");
    let baseline = session.dry_run().expect("dry-run");
    // Unknown routine, bad block index, control-transfer delete: each
    // must fail and leave the session state intact.
    assert!(matches!(
        session.exec_line("counter nosuch").unwrap_err(),
        EditError::UnknownRoutine(_)
    ));
    assert!(matches!(
        session.exec_line("counter main:b999").unwrap_err(),
        EditError::BadTarget(_)
    ));
    // Replace against a control transfer fails inside the core after the
    // delete half; the session must roll the half-applied edit back.
    let call_addr = {
        let image = two_routine_image();
        let analysis = Analysis::compute(Arc::new(image)).unwrap();
        let mut exec = eel_core::Executable::from_analysis(&analysis);
        let id = exec
            .all_routine_ids()
            .into_iter()
            .find(|&id| exec.routine(id).name() == "main")
            .unwrap();
        let cfg = exec.build_cfg(id).unwrap();
        let found = cfg
            .blocks()
            .filter(|(_, b)| b.kind == BlockKind::Normal)
            .find_map(|(_, b)| b.terminator().and_then(|t| t.addr));
        found
    };
    if let Some(addr) = call_addr {
        assert!(matches!(
            session.exec_line(&format!("replace @{addr:#x} {{ nop }}")),
            Err(EditError::Core(_))
        ));
    }
    assert_eq!(session.pending(), 1);
    assert_eq!(session.dry_run().expect("dry-run"), baseline);
}

#[test]
fn scripts_run_end_to_end_with_implicit_apply() {
    let image = two_routine_image();
    let original = eel_emu::run_image(&image).expect("run original");
    let mut session = session_over(image);
    let script = "# instrument both routines\ncounter main\ncounter helper\n";
    let result = session.run_script_to_image(script).expect("script");
    assert_eq!(result.report.commands, 2);
    let edited = eel_emu::run_image(&result.image).expect("run edited");
    assert_eq!(edited.exit_code, original.exit_code);
    assert_eq!(edited.output, original.output);
    // The two counters live in reserved data past the original segment.
    assert!(result.report.data_after >= result.report.data_before + 16);
}

#[test]
fn same_script_twice_is_byte_identical() {
    let image = two_routine_image();
    let script = "counter main\ncounter helper\napply\n";
    let one = EditSession::new(Arc::new(image.clone()))
        .unwrap()
        .run_script_to_image(script)
        .expect("first run");
    let two = EditSession::new(Arc::new(image))
        .unwrap()
        .run_script_to_image(script)
        .expect("second run");
    assert_eq!(one.image.to_bytes(), two.image.to_bytes());
    assert_eq!(one.report, two.report);
}

#[test]
fn block_and_insn_coordinates_resolve_like_show_listings() {
    let mut session = session_over(two_routine_image());
    let listing = match session.exec_line("show main").expect("show") {
        Reply::Text(t) => t,
        other => panic!("show returned {other:?}"),
    };
    assert!(listing.contains("b0 @"), "{listing}");
    assert!(listing.contains("i0"), "{listing}");
    // b0:i0 is the routine's first instruction: both spellings must
    // resolve to the same edit.
    session.exec_line("counter main:b0:i0").expect("b0:i0");
    let by_index = session.dry_run().expect("dry-run");
    session.exec_line("revert").expect("revert");
    session.exec_line("counter main").expect("by name");
    let by_name = session.dry_run().expect("dry-run");
    assert_eq!(by_index, by_name);
}

#[test]
fn progen_binary_survives_a_multi_routine_script() {
    let program = eel_progen::random_program(
        7,
        &eel_progen::GenConfig {
            functions: 3,
            stmts_per_fn: 6,
            max_depth: 2,
            globals: 2,
            arrays: 1,
        },
    );
    let image = eel_cc::compile_ast(&program, &eel_cc::Options::default()).expect("compile");
    let original = eel_emu::run_image(&image).expect("run original");

    let analysis = Arc::new(Analysis::compute(Arc::new(image)).expect("analyze"));
    let mut session = EditSession::from_analysis(Arc::clone(&analysis));
    // Counter every routine with a symbol name — a whole-program edit
    // across all routines.
    let names: Vec<String> = analysis
        .routines()
        .iter()
        .filter(|r| r.has_symbol_name())
        .map(|r| r.name())
        .collect();
    assert!(
        names.len() >= 2,
        "progen image has {} routines",
        names.len()
    );
    for name in &names {
        session
            .exec_line(&format!("counter {name}"))
            .unwrap_or_else(|e| panic!("counter {name}: {e}"));
    }
    let predicted = session.dry_run().expect("dry-run");
    let applied = session.apply().expect("apply");
    assert_eq!(predicted, applied.report);
    let edited = eel_emu::run_image(&applied.image).expect("run edited");
    assert_eq!(edited.exit_code, original.exit_code);
    assert_eq!(edited.output, original.output);
}
