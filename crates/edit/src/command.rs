//! The `eeledit` command language.
//!
//! A script is a sequence of newline-separated statements. Snippet bodies
//! are brace-delimited and may span lines; inside a body, `;` separates
//! instructions (the assembler sees one instruction per line). Comments
//! run from `#` (or `!` / `//`, the assembler's comment leaders are
//! accepted uniformly) to end of line — but only *outside* a brace body,
//! where the assembler strips its own.
//!
//! ```text
//! # count how often main's second block runs
//! counter main:b1
//! insert-before fib { add %g6, 1, %g6 } scavenge %g6
//! delete @0x40000104
//! replace main:b0:i2 { add %o0, 2, %o1 ; add %o1, -1, %o1 }
//! dry-run
//! apply
//! ```
//!
//! Grammar (one statement per line, case-sensitive):
//!
//! ```text
//! statement  := list | show NAME | undo | revert | dry-run | apply
//!             | delete TARGET
//!             | counter TARGET
//!             | (insert-before | insert-after | replace) TARGET BODY [SCAVENGE]
//! TARGET     := @ADDR | NAME | NAME:bN | NAME:bN:iM
//! BODY       := '{' asm ( ';' asm )* '}'
//! SCAVENGE   := 'scavenge' %reg+
//! ```

use crate::EditError;
use eel_isa::Reg;
use std::fmt;

/// Where an edit lands: a raw text address, a routine's first instruction,
/// the first instruction of the routine's N-th normal block (in address
/// order), or the M-th instruction of that block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// `@0x40000120` or `@1073742112` — an absolute text address.
    Addr(u32),
    /// `main` — the routine's entry instruction.
    Routine(String),
    /// `main:b2` — first instruction of the routine's block #2.
    Block {
        /// Routine name.
        routine: String,
        /// Normal-block index in address order, from 0.
        block: usize,
    },
    /// `main:b2:i5` — instruction #5 of block #2.
    Insn {
        /// Routine name.
        routine: String,
        /// Normal-block index in address order, from 0.
        block: usize,
        /// Instruction index within the block, from 0.
        insn: usize,
    },
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Addr(a) => write!(f, "@{a:#010x}"),
            Target::Routine(r) => write!(f, "{r}"),
            Target::Block { routine, block } => write!(f, "{routine}:b{block}"),
            Target::Insn {
                routine,
                block,
                insn,
            } => write!(f, "{routine}:b{block}:i{insn}"),
        }
    }
}

/// One parsed session command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list` — routines with pending edit counts.
    List,
    /// `show NAME` — the routine's blocks and instructions, with the
    /// `bN:iM` coordinates other commands accept.
    Show(String),
    /// `insert-before TARGET { asm } [scavenge %r..]`
    InsertBefore {
        /// Where the snippet lands.
        target: Target,
        /// Snippet body, one instruction per line.
        asm: String,
        /// Registers the snippet asks the scavenger to rename.
        scavenge: Vec<Reg>,
    },
    /// `insert-after TARGET { asm } [scavenge %r..]`
    InsertAfter {
        /// Where the snippet lands.
        target: Target,
        /// Snippet body, one instruction per line.
        asm: String,
        /// Registers the snippet asks the scavenger to rename.
        scavenge: Vec<Reg>,
    },
    /// `delete TARGET`
    Delete {
        /// The instruction to remove.
        target: Target,
    },
    /// `replace TARGET { asm } [scavenge %r..]` — delete the instruction
    /// and splice the snippet in its place.
    Replace {
        /// The instruction to replace.
        target: Target,
        /// Snippet body, one instruction per line.
        asm: String,
        /// Registers the snippet asks the scavenger to rename.
        scavenge: Vec<Reg>,
    },
    /// `counter TARGET` — reserve a data word and splice an increment of
    /// it before the target (the qpt building block, as one command).
    Counter {
        /// The instruction the counter fires before.
        target: Target,
    },
    /// `undo` — drop the most recent edit.
    Undo,
    /// `revert` — drop every pending edit.
    Revert,
    /// `dry-run` — lay the edited program out and report the layout
    /// without committing anything.
    DryRun,
    /// `apply` — lay out and produce the edited image.
    Apply,
}

impl Command {
    /// Whether the command records an edit in the session log (as opposed
    /// to querying or controlling the session).
    pub fn is_edit(&self) -> bool {
        matches!(
            self,
            Command::InsertBefore { .. }
                | Command::InsertAfter { .. }
                | Command::Delete { .. }
                | Command::Replace { .. }
                | Command::Counter { .. }
        )
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn body(asm: &str) -> String {
            asm.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .collect::<Vec<_>>()
                .join(" ; ")
        }
        fn scav(regs: &[Reg]) -> String {
            if regs.is_empty() {
                String::new()
            } else {
                let list: Vec<String> = regs.iter().map(|r| r.to_string()).collect();
                format!(" scavenge {}", list.join(" "))
            }
        }
        match self {
            Command::List => write!(f, "list"),
            Command::Show(r) => write!(f, "show {r}"),
            Command::InsertBefore {
                target,
                asm,
                scavenge,
            } => write!(
                f,
                "insert-before {target} {{ {} }}{}",
                body(asm),
                scav(scavenge)
            ),
            Command::InsertAfter {
                target,
                asm,
                scavenge,
            } => write!(
                f,
                "insert-after {target} {{ {} }}{}",
                body(asm),
                scav(scavenge)
            ),
            Command::Delete { target } => write!(f, "delete {target}"),
            Command::Replace {
                target,
                asm,
                scavenge,
            } => write!(f, "replace {target} {{ {} }}{}", body(asm), scav(scavenge)),
            Command::Counter { target } => write!(f, "counter {target}"),
            Command::Undo => write!(f, "undo"),
            Command::Revert => write!(f, "revert"),
            Command::DryRun => write!(f, "dry-run"),
            Command::Apply => write!(f, "apply"),
        }
    }
}

/// Whether `buf` is a complete statement: every `{` has its `}`. The
/// REPL keeps reading lines while this is false.
pub fn statement_complete(buf: &str) -> bool {
    brace_depth(buf) <= 0
}

fn brace_depth(s: &str) -> i32 {
    let mut depth = 0;
    for c in s.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Splits a script into complete statements (brace bodies may span
/// lines), discarding blank lines and whole-line comments. Returns
/// `(line_number, statement)` pairs; line numbers are 1-based and point
/// at the statement's first line.
fn split_statements(src: &str) -> Result<Vec<(usize, String)>, EditError> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut start = 0usize;
    for (i, raw) in src.lines().enumerate() {
        // Outside a body, strip comments here; inside, the assembler
        // strips its own (same leaders), so passing them through is safe.
        let line = if buf.is_empty() {
            strip_comment(raw)
        } else {
            raw.to_string()
        };
        if buf.is_empty() {
            if line.trim().is_empty() {
                continue;
            }
            start = i + 1;
            buf = line;
        } else {
            buf.push('\n');
            buf.push_str(&line);
        }
        if statement_complete(&buf) {
            out.push((start, std::mem::take(&mut buf)));
        }
    }
    if !buf.is_empty() {
        return Err(EditError::Parse {
            line: start,
            message: "unterminated '{' body".into(),
        });
    }
    Ok(out)
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'#' | b'!' => break,
            b'/' if bytes.get(i + 1) == Some(&b'/') => break,
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// Parses a whole script into commands.
///
/// # Errors
///
/// [`EditError::Parse`] with the 1-based line number of the offending
/// statement.
pub fn parse_script(src: &str) -> Result<Vec<Command>, EditError> {
    split_statements(src)?
        .into_iter()
        .map(|(line, stmt)| parse_statement(&stmt).map_err(|e| e.at_line(line)))
        .collect()
}

/// Parses one complete statement (braces balanced). Use
/// [`statement_complete`] to decide when an interactively built buffer
/// is ready.
///
/// # Errors
///
/// [`EditError::Parse`] (line 1) when the statement is malformed.
pub fn parse_statement(stmt: &str) -> Result<Command, EditError> {
    let bad = |message: String| EditError::Parse { line: 1, message };
    let stmt = stmt.trim();
    let (head, rest) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(i) => (&stmt[..i], stmt[i..].trim_start()),
        None => (stmt, ""),
    };
    let only = |cmd: &str| -> Result<(), EditError> {
        if rest.is_empty() {
            Ok(())
        } else {
            Err(bad(format!("{cmd} takes no arguments, got {rest:?}")))
        }
    };
    match head {
        "list" => only("list").map(|()| Command::List),
        "undo" => only("undo").map(|()| Command::Undo),
        "revert" => only("revert").map(|()| Command::Revert),
        "dry-run" => only("dry-run").map(|()| Command::DryRun),
        "apply" => only("apply").map(|()| Command::Apply),
        "show" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                Err(bad("show takes exactly one routine name".into()))
            } else {
                Ok(Command::Show(rest.to_string()))
            }
        }
        "delete" => Ok(Command::Delete {
            target: parse_target(rest)?,
        }),
        "counter" => Ok(Command::Counter {
            target: parse_target(rest)?,
        }),
        "insert-before" | "insert-after" | "replace" => {
            let (target, asm, scavenge) = parse_edit_args(head, rest)?;
            Ok(match head {
                "insert-before" => Command::InsertBefore {
                    target,
                    asm,
                    scavenge,
                },
                "insert-after" => Command::InsertAfter {
                    target,
                    asm,
                    scavenge,
                },
                _ => Command::Replace {
                    target,
                    asm,
                    scavenge,
                },
            })
        }
        other => Err(bad(format!(
            "unknown command {other:?} (expected list, show, insert-before, \
             insert-after, delete, replace, counter, undo, revert, dry-run, apply)"
        ))),
    }
}

/// `TARGET { body } [scavenge %r..]` for the three snippet commands.
fn parse_edit_args(cmd: &str, rest: &str) -> Result<(Target, String, Vec<Reg>), EditError> {
    let bad = |message: String| EditError::Parse { line: 1, message };
    let open = rest
        .find('{')
        .ok_or_else(|| bad(format!("{cmd} needs a {{ ... }} snippet body")))?;
    let close = rest
        .rfind('}')
        .ok_or_else(|| bad(format!("{cmd}: unterminated snippet body")))?;
    if close < open {
        return Err(bad(format!("{cmd}: '}}' before '{{'")));
    }
    let target = parse_target(rest[..open].trim())?;
    let body = rest[open + 1..close].replace(';', "\n");
    if body.trim().is_empty() {
        return Err(bad(format!("{cmd}: empty snippet body")));
    }
    let tail = rest[close + 1..].trim();
    let scavenge = if tail.is_empty() {
        Vec::new()
    } else if let Some(regs) = tail.strip_prefix("scavenge") {
        let mut out = Vec::new();
        for tok in regs.split_whitespace() {
            out.push(
                Reg::parse(tok).ok_or_else(|| bad(format!("scavenge: bad register {tok:?}")))?,
            );
        }
        if out.is_empty() {
            return Err(bad("scavenge needs at least one register".into()));
        }
        out
    } else {
        return Err(bad(format!("{cmd}: unexpected trailing {tail:?}")));
    };
    Ok((target, body, scavenge))
}

/// Parses a target spec: `@0xADDR`, `@DECIMAL`, `name`, `name:bN`, or
/// `name:bN:iM`.
///
/// # Errors
///
/// [`EditError::Parse`] for malformed specs.
pub fn parse_target(spec: &str) -> Result<Target, EditError> {
    let bad = |message: String| EditError::Parse { line: 1, message };
    let spec = spec.trim();
    if spec.is_empty() {
        return Err(bad("missing target".into()));
    }
    if let Some(num) = spec.strip_prefix('@') {
        let addr = if let Some(hex) = num.strip_prefix("0x").or_else(|| num.strip_prefix("0X")) {
            u32::from_str_radix(hex, 16)
        } else {
            num.parse()
        }
        .map_err(|_| bad(format!("bad address {num:?}")))?;
        if addr % 4 != 0 {
            return Err(bad(format!("address {addr:#x} is not word-aligned")));
        }
        return Ok(Target::Addr(addr));
    }
    if spec.contains(char::is_whitespace) {
        return Err(bad(format!("bad target {spec:?}")));
    }
    let mut parts = spec.split(':');
    let routine = parts.next().unwrap_or_default().to_string();
    if routine.is_empty() {
        return Err(bad(format!("bad target {spec:?}")));
    }
    let index = |part: &str, prefix: char| -> Result<usize, EditError> {
        part.strip_prefix(prefix)
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(format!("expected {prefix}N, got {part:?} in {spec:?}")))
    };
    match (parts.next(), parts.next(), parts.next()) {
        (None, _, _) => Ok(Target::Routine(routine)),
        (Some(b), None, _) => Ok(Target::Block {
            routine,
            block: index(b, 'b')?,
        }),
        (Some(b), Some(i), None) => Ok(Target::Insn {
            routine,
            block: index(b, 'b')?,
            insn: index(i, 'i')?,
        }),
        (Some(_), Some(_), Some(_)) => Err(bad(format!("too many ':' in target {spec:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_parse() {
        assert_eq!(
            parse_target("@0x40000120").unwrap(),
            Target::Addr(0x40000120)
        );
        assert_eq!(parse_target("@64").unwrap(), Target::Addr(64));
        assert_eq!(
            parse_target("main").unwrap(),
            Target::Routine("main".into())
        );
        assert_eq!(
            parse_target("main:b2").unwrap(),
            Target::Block {
                routine: "main".into(),
                block: 2
            }
        );
        assert_eq!(
            parse_target("fib:b0:i3").unwrap(),
            Target::Insn {
                routine: "fib".into(),
                block: 0,
                insn: 3
            }
        );
    }

    #[test]
    fn bad_targets_are_rejected() {
        for spec in ["", "@zz", "@0x41", "main:x2", "main:b2:j1", "a:b1:i2:i3"] {
            assert!(parse_target(spec).is_err(), "{spec:?} should fail");
        }
    }

    #[test]
    fn statements_parse() {
        assert_eq!(parse_statement("list").unwrap(), Command::List);
        assert_eq!(
            parse_statement("show main").unwrap(),
            Command::Show("main".into())
        );
        let cmd =
            parse_statement("insert-before main:b1 { add %g6, 1, %g6 } scavenge %g6").unwrap();
        match cmd {
            Command::InsertBefore {
                target,
                asm,
                scavenge,
            } => {
                assert_eq!(
                    target,
                    Target::Block {
                        routine: "main".into(),
                        block: 1
                    }
                );
                assert_eq!(asm.trim(), "add %g6, 1, %g6");
                assert_eq!(scavenge, vec![Reg::parse("%g6").unwrap()]);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn semicolons_split_snippet_instructions() {
        let cmd = parse_statement("replace @64 { add %o0, 1, %o0 ; sub %o0, 1, %o0 }").unwrap();
        match cmd {
            Command::Replace { asm, .. } => {
                assert_eq!(asm.lines().filter(|l| !l.trim().is_empty()).count(), 2);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn scripts_span_lines_and_skip_comments() {
        let script =
            "# comment\nlist\n\ninsert-after main {\n  add %g6, 1, %g6\n} scavenge %g6\napply\n";
        let cmds = parse_script(script).unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0], Command::List);
        assert!(matches!(cmds[1], Command::InsertAfter { .. }));
        assert_eq!(cmds[2], Command::Apply);
    }

    #[test]
    fn unterminated_body_reports_its_line() {
        let err = parse_script("list\ninsert-before main { add %g6, 1, %g6\n").unwrap_err();
        match err {
            EditError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unterminated"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_statement_line() {
        let err = parse_script("list\n\nfrobnicate main\n").unwrap_err();
        match err {
            EditError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_round_trips() {
        for stmt in [
            "list",
            "show main",
            "delete @0x00000040",
            "counter main:b1",
            "undo",
            "revert",
            "dry-run",
            "apply",
        ] {
            let cmd = parse_statement(stmt).unwrap();
            assert_eq!(cmd.to_string(), stmt);
            assert_eq!(parse_statement(&cmd.to_string()).unwrap(), cmd);
        }
        let cmd =
            parse_statement("insert-before main:b1 { add %g6, 1, %g6 } scavenge %g6").unwrap();
        assert_eq!(parse_statement(&cmd.to_string()).unwrap(), cmd);
    }

    #[test]
    fn repl_completion_probe() {
        assert!(statement_complete("list"));
        assert!(!statement_complete("insert-before main {"));
        assert!(statement_complete("insert-before main { nop }"));
    }
}
