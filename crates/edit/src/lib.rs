//! # eel-edit — command-driven patch sessions over EEL executables
//!
//! The paper's thesis is that executable *editing* is a library concern
//! (§3.5, §6); this crate is the user-facing driver for that machinery.
//! It layers a small command language — `insert-before`, `insert-after`,
//! `delete`, `replace`, `counter`, plus session control (`list`, `show`,
//! `undo`, `revert`, `dry-run`, `apply`) — over
//! [`eel_core::Executable`] / [`eel_core::Cfg`], with snippet bodies
//! assembled by `eel_asm` and spliced through the register-scavenging
//! [`eel_core::Snippet`] pipeline.
//!
//! The engine is **pure and zero-I/O** (the XEDIT lineage: a command
//! interpreter over an in-memory document). Files, sockets, and prompts
//! live in the callers: the `eeledit` binary (REPL + `--script` batch)
//! and eel-serve's `edit` op, which runs a script against a cached
//! [`eel_core::Analysis`] and content-addresses the result by
//! `(image_hash, script_hash)`.
//!
//! ## Session model
//!
//! A [`EditSession`] keeps a *log of validated commands*, not a mutated
//! image. Each edit command is resolved (target → address) and checked
//! against a scratch CFG immediately, so errors surface at the command
//! prompt; `dry-run` and `apply` then *replay* the log against a fresh
//! [`eel_core::Executable`] built from the shared analysis. Replay is
//! deterministic, which yields the session's two guarantees for free:
//! `dry-run` predicts exactly the layout `apply` produces, and `undo` /
//! `revert` (popping / clearing the log) restore prior state exactly.
//! A session with an empty log reproduces the input image byte for byte
//! (see `Executable::write_edited`'s clean fast path).
//!
//! ```
//! use eel_edit::EditSession;
//! use std::sync::Arc;
//!
//! let image = eel_cc::compile_str(
//!     "fn main() { return 41; }",
//!     &eel_cc::Options::default(),
//! )?;
//! let mut session = EditSession::new(Arc::new(image))?;
//! session.exec_line("counter main")?;
//! let report = session.dry_run()?;
//! let applied = session.apply()?;
//! assert_eq!(report, applied.report);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod command;
pub mod session;

pub use command::{
    parse_script, parse_statement, parse_target, statement_complete, Command, Target,
};
pub use session::{ApplyResult, DryRunReport, EditSession, Reply, RoutineDelta};

use std::fmt;

/// Errors from parsing or executing session commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// A statement failed to parse; `line` is 1-based within the script.
    Parse {
        /// 1-based line of the offending statement.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A target named a routine the executable does not have.
    UnknownRoutine(String),
    /// A target resolved to nothing editable (bad block/insn index,
    /// address outside any routine, synthesized instruction, ...).
    BadTarget(String),
    /// `undo` with an empty log.
    NothingToUndo,
    /// The core library rejected the edit (uneditable block, control
    /// transfer, register pressure, layout overflow, ...).
    Core(String),
}

impl EditError {
    pub(crate) fn at_line(self, line: usize) -> EditError {
        match self {
            EditError::Parse { message, .. } => EditError::Parse { line, message },
            other => other,
        }
    }
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::Parse { line, message } => write!(f, "line {line}: {message}"),
            EditError::UnknownRoutine(name) => write!(f, "no routine named {name:?}"),
            EditError::BadTarget(what) => write!(f, "bad target: {what}"),
            EditError::NothingToUndo => write!(f, "nothing to undo"),
            EditError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<eel_core::EelError> for EditError {
    fn from(e: eel_core::EelError) -> EditError {
        EditError::Core(e.to_string())
    }
}

/// FNV-1a over `bytes` — the session's cheap, dependency-free image
/// fingerprint. [`DryRunReport::image_hash`] uses it so a dry-run and the
/// subsequent apply can be compared without holding both images.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
