//! The patch-session state machine.
//!
//! See the crate docs for the model: a session is a log of validated
//! edit commands over a shared [`Analysis`]; `dry-run` and `apply`
//! replay the log against a fresh [`Executable`]. Nothing here touches
//! a file or socket.

use crate::command::{Command, Target};
use crate::{fnv1a64, EditError};
use eel_core::{Analysis, BlockKind, Cfg, Executable, RoutineId, Snippet};
use eel_exe::Image;
use eel_isa::Reg;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// One validated, resolved edit in the session log.
#[derive(Debug, Clone)]
struct LoggedEdit {
    /// The command as entered (kept for `list` and undo messages).
    cmd: Command,
    /// The routine the resolved address lives in.
    routine: RoutineId,
    /// The resolved original text address the edit anchors to.
    addr: u32,
}

/// What a command returned.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A rendered listing or confirmation line.
    Text(String),
    /// The `dry-run` layout prediction.
    DryRun(DryRunReport),
    /// The `apply` result: the edited image plus the report that
    /// describes it (identical to what `dry-run` predicted).
    Applied(ApplyResult),
}

impl Reply {
    /// The reply rendered for a terminal or log.
    pub fn render(&self) -> String {
        match self {
            Reply::Text(s) => s.clone(),
            Reply::DryRun(r) => r.to_string(),
            Reply::Applied(a) => format!("applied\n{}", a.report),
        }
    }
}

/// The outcome of `apply`: the edited image and its layout report.
#[derive(Debug, Clone)]
pub struct ApplyResult {
    /// The edited executable.
    pub image: Image,
    /// The same report a `dry-run` at this log state produces.
    pub report: DryRunReport,
}

/// Per-routine layout delta for routines the session edited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineDelta {
    /// Routine name.
    pub name: String,
    /// Number of logged edits targeting it.
    pub edits: usize,
    /// Original start address.
    pub start_before: u32,
    /// Start address in the edited image (`None` if layout dropped it,
    /// which a session never does).
    pub start_after: Option<u32>,
}

/// The layout summary `dry-run` predicts and `apply` realizes. Replay is
/// deterministic, so two reports from the same log state are equal —
/// including [`DryRunReport::image_hash`], an FNV-1a fingerprint of the
/// laid-out WEF bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DryRunReport {
    /// Logged edit commands replayed.
    pub commands: usize,
    /// Entry point before editing.
    pub entry_before: u32,
    /// Entry point after layout.
    pub entry_after: u32,
    /// Text bytes before.
    pub text_before: usize,
    /// Text bytes after.
    pub text_after: usize,
    /// Data bytes before (bss not materialized).
    pub data_before: usize,
    /// Data bytes after (bss + reservations materialized when edited).
    pub data_after: usize,
    /// Deltas for each edited routine, in address order.
    pub routines: Vec<RoutineDelta>,
    /// FNV-1a of the edited image's WEF bytes.
    pub image_hash: u64,
}

impl fmt::Display for DryRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "edits: {}  text: {} -> {} bytes  data: {} -> {} bytes  entry: {:#010x} -> {:#010x}",
            self.commands,
            self.text_before,
            self.text_after,
            self.data_before,
            self.data_after,
            self.entry_before,
            self.entry_after
        )?;
        for r in &self.routines {
            writeln!(
                f,
                "  {}: {} edit{}  {:#010x} -> {}",
                r.name,
                r.edits,
                if r.edits == 1 { "" } else { "s" },
                r.start_before,
                match r.start_after {
                    Some(a) => format!("{a:#010x}"),
                    None => "(removed)".into(),
                }
            )?;
        }
        write!(f, "image-hash: {:016x}", self.image_hash)
    }
}

/// A command-driven patch session. See the crate docs for the model.
pub struct EditSession {
    analysis: Arc<Analysis>,
    /// Scratch executable + CFGs mirroring the log, used to validate
    /// incoming commands eagerly and to resolve `name:bN:iM` targets.
    scratch: Executable,
    cfgs: BTreeMap<RoutineId, Cfg>,
    log: Vec<LoggedEdit>,
}

impl EditSession {
    /// Opens a session on an image: validates it and runs routine
    /// discovery once.
    ///
    /// # Errors
    ///
    /// [`EditError::Core`] when the image fails validation or discovery.
    pub fn new(image: Arc<Image>) -> Result<EditSession, EditError> {
        let analysis = Analysis::compute(image)?;
        Ok(EditSession::from_analysis(Arc::new(analysis)))
    }

    /// Opens a session on an already-shared analysis (the eel-serve hot
    /// path: the analysis came from the cache, no rediscovery).
    pub fn from_analysis(analysis: Arc<Analysis>) -> EditSession {
        let scratch = Executable::from_analysis(&analysis);
        EditSession {
            analysis,
            scratch,
            cfgs: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Number of edits pending in the log.
    pub fn pending(&self) -> usize {
        self.log.len()
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    ///
    /// Parse errors, resolution errors, or core edit rejections; the
    /// session state is unchanged when an error is returned.
    pub fn exec_line(&mut self, stmt: &str) -> Result<Reply, EditError> {
        let cmd = crate::command::parse_statement(stmt)?;
        self.exec(&cmd)
    }

    /// Executes one parsed command.
    ///
    /// # Errors
    ///
    /// As [`EditSession::exec_line`], minus parsing.
    pub fn exec(&mut self, cmd: &Command) -> Result<Reply, EditError> {
        let _obs = eel_obs::span("edit.command");
        eel_obs::counter!("edit.commands").add(1);
        match cmd {
            Command::List => Ok(Reply::Text(self.render_list())),
            Command::Show(name) => {
                let id = self.find_routine(name)?;
                self.ensure_cfg(id)?;
                Ok(Reply::Text(self.render_show(id)))
            }
            Command::Undo => {
                let undone = self.log.pop().ok_or(EditError::NothingToUndo)?;
                eel_obs::counter!("edit.undo").add(1);
                self.rebuild_scratch()?;
                Ok(Reply::Text(format!("undid: {}", undone.cmd)))
            }
            Command::Revert => {
                let n = self.log.len();
                self.log.clear();
                self.rebuild_scratch()?;
                Ok(Reply::Text(format!(
                    "reverted {n} edit{}",
                    if n == 1 { "" } else { "s" }
                )))
            }
            Command::DryRun => {
                eel_obs::counter!("edit.dry_run").add(1);
                let (report, _) = self.replay()?;
                Ok(Reply::DryRun(report))
            }
            Command::Apply => {
                eel_obs::counter!("edit.apply").add(1);
                let (report, image) = self.replay()?;
                Ok(Reply::Applied(ApplyResult { image, report }))
            }
            edit => {
                let target = match edit {
                    Command::InsertBefore { target, .. }
                    | Command::InsertAfter { target, .. }
                    | Command::Delete { target }
                    | Command::Replace { target, .. }
                    | Command::Counter { target } => target,
                    _ => unreachable!("non-edit commands handled above"),
                };
                let (routine, addr) = self.resolve(target)?;
                let logged = LoggedEdit {
                    cmd: edit.clone(),
                    routine,
                    addr,
                };
                // Validate by applying to the scratch state. On failure
                // the scratch may hold a half-applied edit (e.g. the
                // delete half of a replace) — rebuild it from the log.
                match Self::apply_one(&mut self.scratch, &mut self.cfgs, &logged) {
                    Ok(()) => {
                        eel_obs::counter!("edit.edits").add(1);
                        let msg = format!("#{}: {} @ {addr:#010x}", self.log.len() + 1, edit);
                        self.log.push(logged);
                        Ok(Reply::Text(msg))
                    }
                    Err(e) => {
                        self.rebuild_scratch()?;
                        Err(e)
                    }
                }
            }
        }
    }

    /// Parses and executes a whole script, stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first parse or execution error; earlier commands remain
    /// executed.
    pub fn run_script(&mut self, src: &str) -> Result<Vec<Reply>, EditError> {
        let _obs = eel_obs::span("edit.script");
        let cmds = crate::command::parse_script(src)?;
        let mut replies = Vec::with_capacity(cmds.len());
        for cmd in &cmds {
            replies.push(self.exec(cmd)?);
        }
        Ok(replies)
    }

    /// Runs a script and returns the applied image: the last `apply`'s
    /// result if the script has one, otherwise an implicit final apply.
    /// This is the serve `edit` op's entry point.
    ///
    /// # Errors
    ///
    /// As [`EditSession::run_script`].
    pub fn run_script_to_image(&mut self, src: &str) -> Result<ApplyResult, EditError> {
        let mut replies = self.run_script(src)?;
        while let Some(last) = replies.pop() {
            if let Reply::Applied(a) = last {
                return Ok(a);
            }
        }
        let (report, image) = self.replay()?;
        eel_obs::counter!("edit.apply").add(1);
        Ok(ApplyResult { image, report })
    }

    /// Lays the edited program out without committing anything.
    ///
    /// # Errors
    ///
    /// Layout failures (register pressure, overflow) surface here.
    pub fn dry_run(&mut self) -> Result<DryRunReport, EditError> {
        eel_obs::counter!("edit.dry_run").add(1);
        self.replay().map(|(report, _)| report)
    }

    /// Lays the edited program out and returns the edited image. The
    /// session stays usable afterwards (each replay is independent).
    ///
    /// # Errors
    ///
    /// As [`EditSession::dry_run`].
    pub fn apply(&mut self) -> Result<ApplyResult, EditError> {
        eel_obs::counter!("edit.apply").add(1);
        self.replay()
            .map(|(report, image)| ApplyResult { image, report })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn find_routine(&self, name: &str) -> Result<RoutineId, EditError> {
        self.scratch
            .all_routine_ids()
            .into_iter()
            .find(|&id| self.scratch.routine(id).name() == name)
            .ok_or_else(|| EditError::UnknownRoutine(name.to_string()))
    }

    fn ensure_cfg(&mut self, id: RoutineId) -> Result<(), EditError> {
        if !self.cfgs.contains_key(&id) {
            let cfg = self.scratch.build_cfg(id)?;
            self.cfgs.insert(id, cfg);
        }
        Ok(())
    }

    /// Normal blocks in address order — the `bN` coordinate space.
    fn normal_blocks(cfg: &Cfg) -> Vec<&eel_core::Block> {
        let mut blocks: Vec<&eel_core::Block> = cfg
            .blocks()
            .filter(|(_, b)| b.kind == BlockKind::Normal)
            .map(|(_, b)| b)
            .collect();
        blocks.sort_by_key(|b| b.addr);
        blocks
    }

    fn resolve(&mut self, target: &Target) -> Result<(RoutineId, u32), EditError> {
        match target {
            Target::Addr(addr) => {
                let id = self.scratch.routine_containing(*addr).ok_or_else(|| {
                    EditError::BadTarget(format!("{addr:#010x} is outside every routine"))
                })?;
                Ok((id, *addr))
            }
            Target::Routine(name) => {
                let id = self.find_routine(name)?;
                Ok((id, self.scratch.routine(id).start()))
            }
            Target::Block { routine, block } | Target::Insn { routine, block, .. } => {
                let id = self.find_routine(routine)?;
                self.ensure_cfg(id)?;
                let cfg = &self.cfgs[&id];
                let blocks = Self::normal_blocks(cfg);
                let b = blocks.get(*block).ok_or_else(|| {
                    EditError::BadTarget(format!(
                        "{routine} has {} blocks, no b{block}",
                        blocks.len()
                    ))
                })?;
                let index = match target {
                    Target::Insn { insn, .. } => *insn,
                    _ => 0,
                };
                let at = b.insns.get(index).ok_or_else(|| {
                    EditError::BadTarget(format!(
                        "{routine}:b{block} has {} instructions, no i{index}",
                        b.insns.len()
                    ))
                })?;
                let addr = at.addr.ok_or_else(|| {
                    EditError::BadTarget(format!(
                        "{routine}:b{block}:i{index} is synthesized (no original address)"
                    ))
                })?;
                Ok((id, addr))
            }
        }
    }

    fn build_snippet(asm: &str, scavenge: &[Reg]) -> Result<Snippet, EditError> {
        let snippet = Snippet::from_asm(asm)?;
        Ok(if scavenge.is_empty() {
            snippet
        } else {
            snippet.with_scavenged(scavenge)
        })
    }

    /// Applies one logged edit to an executable + CFG-map pair. Used
    /// identically for eager validation (scratch) and replay, which is
    /// what makes the two agree.
    fn apply_one(
        exec: &mut Executable,
        cfgs: &mut BTreeMap<RoutineId, Cfg>,
        e: &LoggedEdit,
    ) -> Result<(), EditError> {
        if let std::collections::btree_map::Entry::Vacant(slot) = cfgs.entry(e.routine) {
            slot.insert(exec.build_cfg(e.routine)?);
        }
        match &e.cmd {
            Command::Counter { .. } => {
                let counter = exec.reserve_data(8);
                let cfg = cfgs.get_mut(&e.routine).expect("just inserted");
                cfg.add_code_before(e.addr, Snippet::counter_increment(counter))?;
            }
            Command::InsertBefore { asm, scavenge, .. } => {
                let snippet = Self::build_snippet(asm, scavenge)?;
                cfgs.get_mut(&e.routine)
                    .expect("just inserted")
                    .add_code_before(e.addr, snippet)?;
            }
            Command::InsertAfter { asm, scavenge, .. } => {
                let snippet = Self::build_snippet(asm, scavenge)?;
                cfgs.get_mut(&e.routine)
                    .expect("just inserted")
                    .add_code_after(e.addr, snippet)?;
            }
            Command::Delete { .. } => {
                cfgs.get_mut(&e.routine)
                    .expect("just inserted")
                    .delete_insn(e.addr)?;
            }
            Command::Replace { asm, scavenge, .. } => {
                // Delete + insert-before at the same address: layout
                // emits before-snippets ahead of the deleted original
                // slot, so this splices the snippet exactly in place.
                let snippet = Self::build_snippet(asm, scavenge)?;
                let cfg = cfgs.get_mut(&e.routine).expect("just inserted");
                cfg.delete_insn(e.addr)?;
                cfg.add_code_before(e.addr, snippet)?;
            }
            other => {
                return Err(EditError::Core(format!(
                    "internal: {other} is not an edit command"
                )))
            }
        }
        Ok(())
    }

    /// Rebuilds the scratch state by replaying the log onto a fresh
    /// executable (after undo/revert, or after a failed half-applied
    /// command).
    fn rebuild_scratch(&mut self) -> Result<(), EditError> {
        self.scratch = Executable::from_analysis(&self.analysis);
        self.cfgs.clear();
        let log = std::mem::take(&mut self.log);
        for e in &log {
            // Every entry applied cleanly to this exact state before.
            Self::apply_one(&mut self.scratch, &mut self.cfgs, e)
                .map_err(|err| EditError::Core(format!("internal: log replay failed: {err}")))?;
        }
        self.log = log;
        Ok(())
    }

    /// Replays the log against a fresh executable and lays it out.
    fn replay(&self) -> Result<(DryRunReport, Image), EditError> {
        let _obs = eel_obs::span("edit.replay");
        let mut exec = Executable::from_analysis(&self.analysis);
        let mut cfgs: BTreeMap<RoutineId, Cfg> = BTreeMap::new();
        for e in &self.log {
            Self::apply_one(&mut exec, &mut cfgs, e)?;
        }
        let mut edits_per_routine: BTreeMap<RoutineId, usize> = BTreeMap::new();
        for e in &self.log {
            *edits_per_routine.entry(e.routine).or_insert(0) += 1;
        }
        for (_, cfg) in std::mem::take(&mut cfgs) {
            exec.install_edits(cfg)?;
        }
        let before = self.analysis.image();
        let (entry_before, text_before, data_before) =
            (before.entry, before.text.len(), before.data.len());
        let image = exec.write_edited()?;
        let routines = edits_per_routine
            .into_iter()
            .map(|(id, edits)| {
                let r = exec.routine(id);
                RoutineDelta {
                    name: r.name(),
                    edits,
                    start_before: r.start(),
                    start_after: exec.edited_addr(r.start()),
                }
            })
            .collect();
        let report = DryRunReport {
            commands: self.log.len(),
            entry_before,
            entry_after: image.entry,
            text_before,
            text_after: image.text.len(),
            data_before,
            data_after: image.data.len(),
            routines,
            image_hash: fnv1a64(&image.to_bytes()),
        };
        Ok((report, image))
    }

    fn render_list(&self) -> String {
        let mut out = String::new();
        let mut edits_per_routine: BTreeMap<RoutineId, usize> = BTreeMap::new();
        for e in &self.log {
            *edits_per_routine.entry(e.routine).or_insert(0) += 1;
        }
        for id in self.scratch.all_routine_ids() {
            let r = self.scratch.routine(id);
            let edits = edits_per_routine.get(&id).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:#010x}  {:5} bytes  {}{}{}",
                r.start(),
                r.size(),
                r.name(),
                if r.is_hidden() { " (hidden)" } else { "" },
                if edits > 0 {
                    format!("  [{edits} edit{}]", if edits == 1 { "" } else { "s" })
                } else {
                    String::new()
                }
            );
        }
        let _ = write!(
            out,
            "{} pending edit{}",
            self.log.len(),
            if self.log.len() == 1 { "" } else { "s" }
        );
        out
    }

    fn render_show(&self, id: RoutineId) -> String {
        let r = self.scratch.routine(id);
        let cfg = &self.cfgs[&id];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} @ {:#010x} ({} bytes{})",
            r.name(),
            r.start(),
            r.size(),
            if cfg.is_incomplete() {
                ", INCOMPLETE CFG"
            } else {
                ""
            }
        );
        for (n, b) in Self::normal_blocks(cfg).iter().enumerate() {
            let _ = writeln!(
                out,
                "  b{n} @ {:#010x}{}:",
                b.addr,
                if b.editable { "" } else { " (uneditable)" }
            );
            for (m, at) in b.insns.iter().enumerate() {
                match at.addr {
                    Some(a) => {
                        let _ = writeln!(out, "    i{m}  {a:#010x}  {}", at.insn);
                    }
                    None => {
                        let _ = writeln!(out, "    i{m}  --------    {}", at.insn);
                    }
                }
            }
        }
        out.pop();
        out
    }
}
