//! Named counters, gauges, and log-bucketed histograms.
//!
//! Handles are `Arc`-backed, so the registry lock is only taken on first
//! lookup; the hot path is one relaxed load (enabled check) plus one
//! relaxed atomic RMW. The [`crate::counter!`] macro caches the handle in
//! a static so repeated lookups by name disappear entirely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets; bucket `i` holds values
/// whose bit length is `i` (bucket 0 is the value zero).
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// A monotonically increasing count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`; a no-op unless observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value; a no-op unless observability is enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` samples with power-of-two buckets. Percentile
/// estimates come from the bucket boundaries, so they are coarse (within
/// 2×) but cheap and allocation-free to record.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value that lands in `bucket` (its representative in
/// reports and percentile estimates).
fn bucket_ceiling(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    /// Records a sample; a no-op unless observability is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let cell = &*self.0;
        cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`), from
    /// bucket ceilings; `None` when empty. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_ceiling(i));
            }
        }
        Some(self.0.max.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Looks up (or creates) a counter by name.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    Counter(Arc::clone(
        reg.counters.entry(name.to_string()).or_default(),
    ))
}

/// Looks up (or creates) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    Gauge(Arc::clone(reg.gauges.entry(name.to_string()).or_default()))
}

/// Looks up (or creates) a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    Histogram(Arc::clone(
        reg.histograms.entry(name.to_string()).or_default(),
    ))
}

/// Caches a [`Counter`] handle in a static, so hot paths skip the
/// registry lock entirely: `eel_obs::counter!("emu.instructions").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __EEL_OBS_COUNTER: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        __EEL_OBS_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// Caches a [`Histogram`] handle in a static, like [`crate::counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __EEL_OBS_HISTOGRAM: std::sync::OnceLock<$crate::Histogram> =
            std::sync::OnceLock::new();
        __EEL_OBS_HISTOGRAM.get_or_init(|| $crate::histogram($name))
    }};
}

/// Point-in-time value of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: i64,
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// Everything in the registry, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Takes a snapshot of the global registry.
    pub fn capture() -> MetricsSnapshot {
        let reg = registry().lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(n, c)| CounterSnapshot {
                    name: n.clone(),
                    value: c.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(n, g)| GaugeSnapshot {
                    name: n.clone(),
                    value: g.load(Ordering::Relaxed),
                })
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), Histogram(Arc::clone(h)).snapshot()))
                .collect(),
        }
    }

    /// The value of a counter, or 0 when absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }
}

pub(crate) fn reset_metrics() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for c in reg.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
}
