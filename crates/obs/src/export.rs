//! Exporters: human summary table, JSON lines, Chrome `trace_event`.

use crate::metrics::MetricsSnapshot;
use crate::span::{snapshot_spans, SpanRecord};
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_dur(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// One node of the aggregated span tree: siblings with the same name under
/// the same parent merge into a single line with a count.
struct Agg {
    name: String,
    count: u64,
    total_ns: u64,
    children: Vec<Agg>,
}

fn aggregate(spans: &[SpanRecord]) -> Vec<Agg> {
    fn collect(spans: &[SpanRecord], parent: u64) -> Vec<Agg> {
        spans
            .iter()
            .filter(|s| s.parent == parent)
            .map(|s| Agg {
                name: s.name.clone(),
                count: 1,
                total_ns: s.dur_ns,
                children: collect(spans, s.id),
            })
            .collect()
    }
    fn merge_tree(nodes: Vec<Agg>) -> Vec<Agg> {
        let mut merged: Vec<Agg> = Vec::new();
        for a in nodes {
            match merged.iter_mut().find(|m| m.name == a.name) {
                Some(m) => {
                    m.count += a.count;
                    m.total_ns += a.total_ns;
                    m.children.extend(a.children);
                }
                None => merged.push(a),
            }
        }
        for m in &mut merged {
            m.children = merge_tree(std::mem::take(&mut m.children));
        }
        merged.sort_by_key(|m| std::cmp::Reverse(m.total_ns));
        merged
    }
    merge_tree(collect(spans, 0))
}

/// Renders the human-readable report: aggregated span tree (per-phase
/// wall times and counts) followed by the metrics tables.
pub fn render_summary() -> String {
    let spans = snapshot_spans();
    let metrics = MetricsSnapshot::capture();
    let mut out = String::new();
    out.push_str("== eel-obs summary ==\n");
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        out.push_str("span tree (wall clock):\n");
        fn walk(out: &mut String, nodes: &[Agg], depth: usize) {
            for n in nodes {
                let indent = "  ".repeat(depth + 1);
                let label = format!("{indent}{}", n.name);
                let _ = writeln!(
                    out,
                    "{label:<44} {:>7}x {:>12}",
                    n.count,
                    fmt_dur(n.total_ns)
                );
                walk(out, &n.children, depth + 1);
            }
        }
        walk(&mut out, &aggregate(&spans), 0);
    }
    let live_counters: Vec<_> = metrics.counters.iter().filter(|c| c.value != 0).collect();
    if !live_counters.is_empty() {
        out.push_str("counters:\n");
        for c in live_counters {
            let _ = writeln!(out, "  {:<42} {:>14}", c.name, c.value);
        }
    }
    let live_gauges: Vec<_> = metrics.gauges.iter().filter(|g| g.value != 0).collect();
    if !live_gauges.is_empty() {
        out.push_str("gauges:\n");
        for g in live_gauges {
            let _ = writeln!(out, "  {:<42} {:>14}", g.name, g.value);
        }
    }
    let live_hists: Vec<_> = metrics
        .histograms
        .iter()
        .filter(|(_, h)| h.count != 0)
        .collect();
    if !live_hists.is_empty() {
        out.push_str("histograms (p50/p90/p99/max of power-of-two buckets):\n");
        for (name, h) in live_hists {
            let _ = writeln!(
                out,
                "  {:<42} n={} p50<={} p90<={} p99<={} max={}",
                name, h.count, h.p50, h.p90, h.p99, h.max
            );
        }
    }
    out
}

/// Renders JSON lines: one `{"type":"span",...}` object per span, then
/// one `{"type":"counter"|"gauge"|"histogram",...}` per metric.
pub fn render_json_lines() -> String {
    let mut out = String::new();
    for s in snapshot_spans() {
        let _ = writeln!(
            out,
            r#"{{"type":"span","name":"{}","id":{},"parent":{},"thread":{},"start_ns":{},"dur_ns":{}}}"#,
            json_escape(&s.name),
            s.id,
            s.parent,
            s.thread,
            s.start_ns,
            s.dur_ns
        );
    }
    let m = MetricsSnapshot::capture();
    for c in &m.counters {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":"{}","value":{}}}"#,
            json_escape(&c.name),
            c.value
        );
    }
    for g in &m.gauges {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":"{}","value":{}}}"#,
            json_escape(&g.name),
            g.value
        );
    }
    for (name, h) in &m.histograms {
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":"{}","count":{},"sum":{},"max":{},"p50":{},"p90":{},"p99":{}}}"#,
            json_escape(name),
            h.count,
            h.sum,
            h.max,
            h.p50,
            h.p90,
            h.p99
        );
    }
    out
}

/// Renders Chrome `trace_event` JSON (the "JSON array format"): complete
/// (`ph:"X"`) events with microsecond timestamps, plus counter events.
/// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn render_chrome_trace() -> String {
    let spans = snapshot_spans();
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 8);
    events.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"eel"}}"#.to_string(),
    );
    for s in &spans {
        events.push(format!(
            r#"{{"name":"{}","cat":"eel","ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":{}}}"#,
            json_escape(&s.name),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.thread
        ));
    }
    let end_ts = spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max()
        .unwrap_or(0) as f64
        / 1e3;
    for c in &MetricsSnapshot::capture().counters {
        if c.value != 0 {
            events.push(format!(
                r#"{{"name":"{}","cat":"eel","ph":"C","ts":{end_ts:.3},"pid":1,"args":{{"value":{}}}}}"#,
                json_escape(&c.name),
                c.value
            ));
        }
    }
    format!("[\n{}\n]\n", events.join(",\n"))
}

/// Writes the trace for the current mode to `path`: JSON lines when the
/// mode is [`crate::Mode::Json`], Chrome trace JSON otherwise.
///
/// # Errors
///
/// Propagates the underlying file I/O error.
pub fn write_trace_file(path: &std::path::Path) -> std::io::Result<()> {
    let body = match crate::mode() {
        crate::Mode::Json => render_json_lines(),
        _ => render_chrome_trace(),
    };
    std::fs::write(path, body)
}
