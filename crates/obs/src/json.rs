//! A minimal JSON parser, used to validate exported Chrome traces (tests
//! and `eelstat`) without external dependencies. Parses the full JSON
//! grammar into a [`Value`] tree; numbers are kept as `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object's field, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // exports; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null,"e":"x\n\"y\""}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("b").unwrap().get("e").unwrap().as_str(),
            Some("x\n\"y\"")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("nope").is_err());
    }
}
