//! # eel-obs: zero-dependency observability for the EEL pipeline
//!
//! The paper's evaluation (§5) is a set of *measurements* — analysis cost
//! per routine, CFG census, instrumentation slowdowns. This crate is the
//! substrate those measurements hang off: hierarchical wall-clock
//! **spans**, a registry of named **counters / gauges / histograms**, and
//! **exporters** (human summary table, JSON lines, Chrome `trace_event`
//! JSON loadable in `chrome://tracing` / Perfetto).
//!
//! Everything is `std`-only and thread-safe. The subsystem is controlled
//! by the `EEL_OBS` environment variable (`off`, `summary`, `json`,
//! `chrome`) or programmatically via [`set_mode`]. When disabled, a span
//! or metric update costs a single relaxed atomic load.
//!
//! Consumers register dot-hierarchical names so exported tables group
//! naturally: `core.cfg.*` (CFG construction), `emu.*` (dynamic
//! counts), `serve.*` (the analysis service: request/queue counters,
//! per-op latency histograms, and the cache tiers —
//! `serve.cache.{hit,miss}` for the memory LRU,
//! `serve.cache.disk.{hit,miss,write,evict,corrupt}` plus the
//! `serve.cache.disk.bytes` gauge and `serve.latency.disk.{load,spill}`
//! histograms for the on-disk spill tier). The operator-facing
//! reference for the `serve.*` family lives in `docs/OPERATIONS.md`.
//!
//! ```
//! eel_obs::set_mode(eel_obs::Mode::Summary);
//! {
//!     let _outer = eel_obs::span("analyze");
//!     let _inner = eel_obs::span("liveness");
//!     eel_obs::counter!("blocks").add(12);
//! }
//! let report = eel_obs::render_summary();
//! assert!(report.contains("analyze"));
//! assert!(report.contains("liveness"));
//! eel_obs::reset();
//! ```

mod export;
pub mod json;
mod metrics;
mod span;

pub use export::{render_chrome_trace, render_json_lines, render_summary, write_trace_file};
pub use metrics::{
    counter, gauge, histogram, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use span::{snapshot_spans, span, span_owned, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU8, Ordering};

/// What the subsystem records and how reports are rendered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(u8)]
pub enum Mode {
    /// Record nothing; hot paths pay one relaxed atomic load.
    #[default]
    Off = 0,
    /// Record; render a human-readable span tree + metrics table.
    Summary = 1,
    /// Record; render JSON lines (one object per span / metric).
    Json = 2,
    /// Record; render Chrome `trace_event` JSON.
    Chrome = 3,
}

impl Mode {
    /// Parses an `EEL_OBS` value; unknown strings mean [`Mode::Off`].
    pub fn parse(s: &str) -> Mode {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "on" | "1" => Mode::Summary,
            "json" => Mode::Json,
            "chrome" | "trace" => Mode::Chrome,
            _ => Mode::Off,
        }
    }
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// The current mode.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Summary,
        2 => Mode::Json,
        3 => Mode::Chrome,
        _ => Mode::Off,
    }
}

/// True when recording is on. This is the only cost the instrumented hot
/// paths pay when observability is disabled.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Sets the mode programmatically (overrides the environment).
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Initializes the mode from `EEL_OBS` (`off`, `summary`, `json`,
/// `chrome`). Binaries call this once at startup; a missing or unknown
/// value leaves the subsystem off. Returns the chosen mode.
pub fn init_from_env() -> Mode {
    let m = std::env::var("EEL_OBS")
        .map(|v| Mode::parse(&v))
        .unwrap_or(Mode::Off);
    set_mode(m);
    m
}

/// Clears all recorded spans and metric values (mode is untouched).
/// Benchmarks and tests use this to isolate measurements.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse() {
        assert_eq!(Mode::parse("summary"), Mode::Summary);
        assert_eq!(Mode::parse("JSON"), Mode::Json);
        assert_eq!(Mode::parse("chrome"), Mode::Chrome);
        assert_eq!(Mode::parse("off"), Mode::Off);
        assert_eq!(Mode::parse("garbage"), Mode::Off);
    }
}
