//! Hierarchical wall-clock spans with a thread-safe global collector.
//!
//! A [`span`] returns a guard; the span covers guard creation to drop.
//! Parentage is tracked per thread, so nested guards form a tree and
//! concurrent threads get independent branches. Finished spans land in a
//! global collector drained by the exporters.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A finished span, in nanoseconds relative to the process epoch.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique nonzero id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Span name (phase or phase:detail).
    pub name: String,
    /// Start offset from the process epoch, ns.
    pub start_ns: u64,
    /// Wall-clock duration, ns.
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Starts a span named by a static string; the usual entry point.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    start_span(name.to_string())
}

/// Starts a span with a computed name (e.g. a routine name). The name is
/// only materialized when recording is on — pass a closure.
#[inline]
pub fn span_owned<F: FnOnce() -> String>(name: F) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    start_span(name())
}

fn start_span(name: String) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    let started = Instant::now();
    let start_ns = started.duration_since(epoch()).as_nanos() as u64;
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            name,
            started,
            start_ns,
        }),
    }
}

struct LiveSpan {
    id: u64,
    parent: u64,
    name: String,
    started: Instant,
    start_ns: u64,
}

/// Guard for an in-progress span; records it on drop.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = live.started.elapsed().as_nanos() as u64;
        CURRENT.with(|c| c.set(live.parent));
        let rec = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            start_ns: live.start_ns,
            dur_ns,
            thread: thread_id(),
        };
        if let Ok(mut spans) = collector().lock() {
            spans.push(rec);
        }
    }
}

/// Snapshot of every finished span, in completion order.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    collector().lock().map(|s| s.clone()).unwrap_or_default()
}

pub(crate) fn reset_spans() {
    if let Ok(mut spans) = collector().lock() {
        spans.clear();
    }
}
