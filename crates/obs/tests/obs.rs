//! Integration tests for the observability subsystem: span parentage,
//! histogram percentile monotonicity, concurrent counter increments, and
//! Chrome-trace round-tripping through a JSON parse.
//!
//! The subsystem is a process-wide singleton, so tests that record spans
//! or reset state serialize on a mutex.

use eel_obs::{json, Mode};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panicking test must not wedge the others.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn nested_spans_report_parentage_and_durations() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Summary);
    eel_obs::reset();

    {
        let _outer = eel_obs::span("outer_phase");
        {
            let _inner = eel_obs::span("inner_phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let _sibling = eel_obs::span("sibling_phase");
    }
    let _root2 = eel_obs::span("second_root");
    drop(_root2);

    let spans = eel_obs::snapshot_spans();
    eel_obs::set_mode(Mode::Off);

    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    let outer = find("outer_phase");
    let inner = find("inner_phase");
    let sibling = find("sibling_phase");
    let root2 = find("second_root");

    assert_eq!(outer.parent, 0, "outer is a root");
    assert_eq!(root2.parent, 0, "second root is a root");
    assert_eq!(inner.parent, outer.id, "inner nests under outer");
    assert_eq!(sibling.parent, outer.id, "sibling nests under outer");

    // Durations are non-negative by type; check they are sane and that the
    // parent covers the slept-in child.
    assert!(inner.dur_ns >= 1_000_000, "inner saw the 2ms sleep");
    assert!(outer.dur_ns >= inner.dur_ns, "outer covers inner");
    for s in &spans {
        assert!(s.start_ns + s.dur_ns >= s.start_ns, "no overflow");
    }

    // The summary renders the tree with both phases.
    eel_obs::set_mode(Mode::Summary);
    let summary = eel_obs::render_summary();
    eel_obs::set_mode(Mode::Off);
    assert!(summary.contains("outer_phase"));
    assert!(summary.contains("inner_phase"));
}

#[test]
fn histogram_percentiles_are_monotone() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Summary);
    let h = eel_obs::histogram("test.monotone.hist");
    for v in [0u64, 1, 1, 3, 7, 9, 100, 1000, 65_536, 1 << 40] {
        h.record(v);
    }
    let qs: Vec<u64> = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        .iter()
        .map(|&q| h.quantile(q).expect("non-empty"))
        .collect();
    eel_obs::set_mode(Mode::Off);
    for w in qs.windows(2) {
        assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
    }
    assert_eq!(h.count(), 10);
    // p100 upper bound must cover the max sample.
    assert!(*qs.last().unwrap() >= 1 << 40);
}

#[test]
fn concurrent_counter_increments_lose_no_updates() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Summary);
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let c = eel_obs::counter("test.concurrent.counter");
                for _ in 0..per_thread {
                    c.incr();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = eel_obs::counter("test.concurrent.counter").get();
    eel_obs::set_mode(Mode::Off);
    assert_eq!(total, threads as u64 * per_thread);
}

#[test]
fn chrome_trace_round_trips_through_json_parse() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Chrome);
    eel_obs::reset();
    {
        let _a = eel_obs::span("phase \"quoted\\name"); // exercises escaping
        let _b = eel_obs::span("child");
    }
    eel_obs::counter("test.trace.counter").add(42);
    let trace = eel_obs::render_chrome_trace();
    eel_obs::set_mode(Mode::Off);

    let doc = json::parse(&trace).expect("chrome trace is valid JSON");
    let events = doc.as_array().expect("top level is an array");
    assert!(events.len() >= 3, "metadata + 2 spans + counter");

    let mut span_names = Vec::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
                assert!(e.get("pid").is_some() && e.get("tid").is_some());
                span_names.push(e.get("name").and_then(|v| v.as_str()).unwrap().to_string());
            }
            "C" => {
                assert!(e
                    .get("args")
                    .unwrap()
                    .get("value")
                    .unwrap()
                    .as_f64()
                    .is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(span_names.iter().any(|n| n == "phase \"quoted\\name"));
    assert!(span_names.iter().any(|n| n == "child"));
}

#[test]
fn json_lines_export_each_line_parses() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Json);
    eel_obs::reset();
    {
        let _s = eel_obs::span("jsonl_phase");
    }
    eel_obs::counter("test.jsonl.counter").add(7);
    eel_obs::histogram("test.jsonl.hist").record(12);
    let lines = eel_obs::render_json_lines();
    eel_obs::set_mode(Mode::Off);
    let mut saw_span = false;
    let mut saw_counter = false;
    for line in lines.lines() {
        let v = json::parse(line).expect("each line is a JSON object");
        match v.get("type").and_then(|t| t.as_str()) {
            Some("span") => {
                saw_span |= v.get("name").and_then(|n| n.as_str()) == Some("jsonl_phase");
            }
            Some("counter") => {
                if v.get("name").and_then(|n| n.as_str()) == Some("test.jsonl.counter") {
                    assert_eq!(v.get("value").unwrap().as_f64(), Some(7.0));
                    saw_counter = true;
                }
            }
            Some("gauge") | Some("histogram") => {}
            other => panic!("unexpected line type {other:?}"),
        }
    }
    assert!(saw_span && saw_counter);
}

#[test]
fn disabled_mode_records_nothing() {
    let _g = obs_lock();
    eel_obs::set_mode(Mode::Off);
    eel_obs::reset();
    {
        let _s = eel_obs::span("invisible");
    }
    eel_obs::counter("test.disabled.counter").incr();
    assert!(eel_obs::snapshot_spans().is_empty());
    assert_eq!(eel_obs::counter("test.disabled.counter").get(), 0);
}
