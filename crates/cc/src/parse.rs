//! Recursive-descent parser for Wisc.

use crate::ast::*;
use crate::lex::{lex, SpannedTok, Tok};
use crate::CcError;

/// Parses a Wisc program.
///
/// # Errors
///
/// Returns [`CcError`] with the offending line for lexical or syntactic
/// problems, including duplicate definitions.
pub fn parse(source: &str) -> Result<Program, CcError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, at: 0 };
    let program = p.program()?;
    // Duplicate checks.
    for (i, f) in program.functions.iter().enumerate() {
        if program.functions[..i].iter().any(|g| g.name == f.name) {
            return Err(CcError::syntax(
                0,
                format!("duplicate function {:?}", f.name),
            ));
        }
    }
    for (i, g) in program.globals.iter().enumerate() {
        if program.globals[..i].iter().any(|h| h.name == g.name) {
            return Err(CcError::syntax(0, format!("duplicate global {:?}", g.name)));
        }
    }
    Ok(program)
}

struct Parser {
    toks: Vec<SpannedTok>,
    at: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.at).map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|t| t.tok.clone());
        self.at += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CcError> {
        Err(CcError::syntax(self.line(), msg.into()))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {}", self.describe()))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "end of input".into(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CcError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.at = self.at.saturating_sub(1);
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn num(&mut self) -> Result<i32, CcError> {
        let neg = self.eat_punct("-");
        match self.bump() {
            Some(Tok::Num(n)) => Ok(if neg { n.wrapping_neg() } else { n }),
            other => {
                self.at = self.at.saturating_sub(1);
                self.err(format!("expected number, found {other:?}"))
            }
        }
    }

    fn program(&mut self) -> Result<Program, CcError> {
        let mut program = Program::default();
        while self.peek().is_some() {
            if self.eat_kw("global") {
                let name = self.ident()?;
                let mut decl = GlobalDecl {
                    name,
                    count: 1,
                    init: 0,
                };
                if self.eat_punct("[") {
                    let n = self.num()?;
                    if n <= 0 {
                        return self.err("array size must be positive");
                    }
                    decl.count = n as u32;
                    self.expect_punct("]")?;
                } else if self.eat_punct("=") {
                    decl.init = self.num()?;
                }
                self.expect_punct(";")?;
                program.globals.push(decl);
            } else if self.eat_kw("fn") {
                program.functions.push(self.function()?);
            } else {
                return self.err(format!(
                    "expected `global` or `fn`, found {}",
                    self.describe()
                ));
            }
        }
        Ok(program)
    }

    fn function(&mut self) -> Result<Function, CcError> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.is_punct(")") {
            loop {
                params.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        if params.len() > 6 {
            return self.err("at most 6 parameters (they arrive in %o0-%o5)");
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CcError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CcError> {
        if self.eat_kw("var") {
            let name = self.ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Var(name, init));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                if matches!(self.peek(), Some(Tok::Ident(s)) if s == "if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = self.simple_stmt()?;
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = self.simple_stmt()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For(Box::new(init), cond, Box::new(step), body));
        }
        if self.eat_kw("switch") {
            self.expect_punct("(")?;
            let scrutinee = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut cases = Vec::new();
            let mut default = Vec::new();
            while !self.eat_punct("}") {
                if self.eat_kw("case") {
                    let value = self.num()?;
                    self.expect_punct(":")?;
                    cases.push((value, self.block()?));
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    default = self.block()?;
                } else {
                    return self.err(format!(
                        "expected `case` or `default`, found {}",
                        self.describe()
                    ));
                }
            }
            return Ok(Stmt::Switch(scrutinee, cases, default));
        }
        if self.eat_kw("return") {
            let value = if self.is_punct(";") {
                Expr::Num(0)
            } else {
                self.expr()?
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("print") {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Print(e));
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// Assignment or expression statement (used bare and in `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, CcError> {
        let start = self.at;
        let e = self.expr()?;
        if self.eat_punct("=") {
            let rhs = self.expr()?;
            let lv = match e {
                Expr::Var(n) => LValue::Var(n),
                Expr::Global(n) => LValue::Global(n),
                Expr::Index(n, i) => LValue::Index(n, *i),
                _ => {
                    self.at = start;
                    return self.err("invalid assignment target");
                }
            };
            return Ok(Stmt::Assign(lv, rhs));
        }
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, CcError> {
        self.binary(0)
    }

    /// Precedence-climbing over C-like levels.
    fn binary(&mut self, min_level: u8) -> Result<Expr, CcError> {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LogOr)],
            &[("&&", BinOp::LogAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        if min_level as usize >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_level + 1)?;
        'outer: loop {
            for (p, op) in LEVELS[min_level as usize] {
                if self.is_punct(p) {
                    self.at += 1;
                    let rhs = self.binary(min_level + 1)?;
                    lhs = Expr::Bin(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            let name = self.ident()?;
            return Ok(Expr::AddrOf(name));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("(") {
            // Either a parenthesized expression or an indirect call
            // `(*e)(args)`.
            if self.eat_punct("*") {
                let target = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct("(")?;
                let args = self.args()?;
                return Ok(Expr::CallPtr(Box::new(target), args));
            }
            let inner = self.expr()?;
            self.expect_punct(")")?;
            return Ok(inner);
        }
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(name)) => {
                if self.eat_punct("(") {
                    let args = self.args()?;
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(index)))
                } else {
                    // Var vs Global is resolved during codegen (scope
                    // dependent); the parser emits Var and codegen rewrites.
                    Ok(Expr::Var(name))
                }
            }
            other => {
                self.at = self.at.saturating_sub(1);
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, CcError> {
        let mut args = Vec::new();
        if !self.is_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        if args.len() > 6 {
            return self.err("at most 6 arguments");
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_representative_program() {
        let p = parse(
            r#"
            global counter;
            global table[16];
            global seed = 42;

            fn add(a, b) { return a + b; }

            fn main() {
                var i;
                var total = 0;
                for (i = 0; i < 10; i = i + 1) {
                    total = total + add(i, seed);
                    table[i] = total;
                }
                while (total > 100) {
                    total = total - 7;
                    if (total % 2 == 0) { continue; }
                    if (total < 50) { break; }
                }
                switch (total % 4) {
                    case 0: { counter = counter + 1; }
                    case 1: { counter = counter + 2; }
                    default: { counter = 0; }
                }
                print(total);
                return (*&add)(total, 1);
            }
        "#,
        )
        .unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[2].init, 42);
        assert_eq!(p.globals[1].count, 16);
        assert_eq!(p.functions.len(), 2);
        let main = p.function("main").unwrap();
        assert!(main.body.len() >= 6);
    }

    #[test]
    fn precedence() {
        let p = parse("fn f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::Bin(BinOp::LogAnd, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Eq, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let p = parse(
            "fn f(x) { if (x) { return 1; } else if (x - 1) { return 2; } else { return 3; } }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::If(_, _, els) => assert!(matches!(els[0], Stmt::If(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("fn f( {").is_err());
        assert!(parse("fn f() { 1 = 2; }").is_err());
        assert!(parse("fn f() { return 1 }").is_err());
        assert!(parse("fn f(a,b,c,d,e,f,g) { }").is_err());
        assert!(parse("global g[0];").is_err());
        assert!(parse("fn f() {} fn f() {}").is_err());
        assert!(parse("global x; global x;").is_err());
        assert!(parse("blah").is_err());
    }

    #[test]
    fn switch_negative_case_values_parse() {
        let p = parse("fn f(x) { switch (x) { case -1: { return 0; } default: { return 1; } } }")
            .unwrap();
        match &p.functions[0].body[0] {
            Stmt::Switch(_, cases, _) => assert_eq!(cases[0].0, -1),
            other => panic!("{other:?}"),
        }
    }
}
